//! A fixed-capacity bitset tuned for δ-cluster membership tracking.
//!
//! Clusters are identified by a subset of row indices and a subset of column
//! indices. Membership toggles, cardinality queries, and intersection counts
//! are the hot operations during FLOC's gain evaluation, so the
//! representation is a flat `Vec<u64>` with word-level popcounts.

use serde::{Deserialize, Serialize};
use std::fmt;

const WORD_BITS: usize = 64;

/// A set of `usize` indices drawn from a fixed universe `0..capacity`.
///
/// Unlike `std::collections::HashSet<usize>`, all operations are branch-light
/// word manipulations and iteration yields indices in ascending order, which
/// keeps the downstream residue scans cache-friendly.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
            len: 0,
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        // Clear the tail bits beyond `capacity`.
        let tail = capacity % WORD_BITS;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        s.len = capacity;
        s
    }

    /// Builds a set from an iterator of indices. Indices must be `< capacity`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, indices: I) -> Self {
        let mut s = Self::new(capacity);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The size of the universe this set draws from.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of indices currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set holds no indices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "index {index} out of capacity {}",
            self.capacity
        );
        self.words[index / WORD_BITS] & (1u64 << (index % WORD_BITS)) != 0
    }

    /// Inserts `index`; returns true if it was not already present.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "index {index} out of capacity {}",
            self.capacity
        );
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `index`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "index {index} out of capacity {}",
            self.capacity
        );
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Flips membership of `index`; returns true if the index is present
    /// *after* the toggle.
    #[inline]
    pub fn toggle(&mut self, index: usize) -> bool {
        if self.contains(index) {
            self.remove(index);
            false
        } else {
            self.insert(index);
            true
        }
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Number of indices present in both `self` and `other`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of indices present in `self` or `other` (or both).
    pub fn union_len(&self, other: &BitSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut len = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// True if every index of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// The raw backing words, little-endian bit order (bit `i` of word
    /// `i / 64` ⇔ index `i`). Exposed so hot loops can intersect a set with
    /// other word-aligned masks (e.g. [`crate::DataMatrix`] row masks)
    /// without per-index `contains` calls.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the indices into a `Vec` (ascending).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Reconstructs a set from its raw backing words (the inverse of
    /// [`Self::words`]); used when decoding word-packed masks from disk.
    ///
    /// # Errors
    /// Returns a description of the defect if the word count does not match
    /// the capacity or a bit beyond `capacity` is set — decoders turn this
    /// into their own typed corruption error.
    pub fn from_raw_parts(capacity: usize, words: Vec<u64>) -> Result<Self, String> {
        if words.len() != capacity.div_ceil(WORD_BITS) {
            return Err(format!(
                "bitset word count {} does not match capacity {capacity}",
                words.len()
            ));
        }
        let tail = capacity % WORD_BITS;
        if tail != 0 {
            if let Some(&last) = words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return Err(format!("bitset has bits set beyond capacity {capacity}"));
                }
            }
        }
        let len = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(BitSet {
            words,
            capacity,
            len,
        })
    }

    /// Widens the universe to `new_capacity`, keeping every present index.
    /// Used by row appends, which extend a matrix's specification mask.
    ///
    /// # Panics
    /// Panics if `new_capacity < capacity` — a bitset never shrinks.
    pub fn grow(&mut self, new_capacity: usize) {
        assert!(
            new_capacity >= self.capacity,
            "cannot shrink bitset from {} to {new_capacity}",
            self.capacity
        );
        self.words.resize(new_capacity.div_ceil(WORD_BITS), 0);
        self.capacity = new_capacity;
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending-order iterator over the indices of a [`BitSet`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the maximum index (or 0).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let capacity = indices.iter().max().map_or(0, |m| m + 1);
        BitSet::from_indices(capacity, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s = BitSet::new(100);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert!(!s.contains(99));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 129]);
        assert!(s.remove(63));
        assert!(!s.remove(63), "double remove reports false");
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![0, 64, 129]);
    }

    #[test]
    fn toggle_flips_membership() {
        let mut s = BitSet::new(10);
        assert!(s.toggle(3), "toggle into the set returns true");
        assert!(s.contains(3));
        assert!(!s.toggle(3), "toggle out of the set returns false");
        assert!(!s.contains(3));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn full_set_has_exact_tail() {
        for cap in [1, 63, 64, 65, 128, 130] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "capacity {cap}");
            assert_eq!(s.iter().count(), cap);
            assert!(s.contains(cap - 1));
        }
    }

    #[test]
    fn full_set_zero_capacity() {
        let s = BitSet::full(0);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn intersection_and_union_len() {
        let a = BitSet::from_indices(200, [1, 5, 70, 150]);
        let b = BitSet::from_indices(200, [5, 70, 199]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(b.intersection_len(&a), 2);
        assert_eq!(a.union_len(&b), 5);
    }

    #[test]
    fn union_with_updates_len() {
        let mut a = BitSet::from_indices(100, [1, 2, 3]);
        let b = BitSet::from_indices(100, [3, 4]);
        a.union_with(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn subset_relation() {
        let a = BitSet::from_indices(100, [2, 50]);
        let b = BitSet::from_indices(100, [2, 50, 99]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(
            BitSet::new(100).is_subset(&a),
            "empty set is subset of anything"
        );
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::from_indices(64, [0, 1, 63]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let s: BitSet = [3usize, 9, 4].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![3, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn contains_out_of_range_panics() {
        let s = BitSet::new(10);
        let _ = s.contains(10);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn intersection_capacity_mismatch_panics() {
        let a = BitSet::new(10);
        let b = BitSet::new(11);
        let _ = a.intersection_len(&b);
    }

    #[test]
    fn debug_formatting_lists_indices() {
        let s = BitSet::from_indices(10, [1, 4]);
        assert_eq!(format!("{s:?}"), "{1, 4}");
    }
}
