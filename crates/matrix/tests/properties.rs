//! Property-based tests for the matrix substrate.

use dc_matrix::{bitset::BitSet, dense::DataMatrix, io, pearson, stats, transform};
use proptest::prelude::*;
use std::collections::HashSet;

/// A small arbitrary matrix with optional entries.
fn arb_matrix() -> impl Strategy<Value = DataMatrix> {
    (1usize..12, 1usize..12).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::option::weighted(0.8, -1000.0..1000.0f64),
            rows * cols,
        )
        .prop_map(move |data| DataMatrix::builder(rows, cols).from_options(data))
    })
}

proptest! {
    // ---- BitSet vs a HashSet model ----------------------------------

    #[test]
    fn bitset_behaves_like_hashset(ops in proptest::collection::vec((0usize..64, 0u8..3), 0..200)) {
        let mut bs = BitSet::new(64);
        let mut hs: HashSet<usize> = HashSet::new();
        for (idx, op) in ops {
            match op {
                0 => {
                    prop_assert_eq!(bs.insert(idx), hs.insert(idx));
                }
                1 => {
                    prop_assert_eq!(bs.remove(idx), hs.remove(&idx));
                }
                _ => {
                    prop_assert_eq!(bs.contains(idx), hs.contains(&idx));
                }
            }
            prop_assert_eq!(bs.len(), hs.len());
        }
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_hs.sort_unstable();
        from_bs.sort_unstable();
        prop_assert_eq!(from_bs, from_hs);
    }

    #[test]
    fn bitset_set_algebra(a in proptest::collection::hash_set(0usize..128, 0..40),
                          b in proptest::collection::hash_set(0usize..128, 0..40)) {
        let sa = BitSet::from_indices(128, a.iter().copied());
        let sb = BitSet::from_indices(128, b.iter().copied());
        prop_assert_eq!(sa.intersection_len(&sb), a.intersection(&b).count());
        prop_assert_eq!(sa.union_len(&sb), a.union(&b).count());
        let mut u = sa.clone();
        u.union_with(&sb);
        prop_assert_eq!(u.len(), a.union(&b).count());
        prop_assert_eq!(sa.is_subset(&u), true);
    }

    // ---- DataMatrix invariants --------------------------------------

    #[test]
    fn specified_count_matches_entries(m in arb_matrix()) {
        prop_assert_eq!(m.specified_count(), m.entries().count());
        let per_row: usize = (0..m.rows()).map(|r| m.row_specified_count(r)).sum();
        let per_col: usize = (0..m.cols()).map(|c| m.col_specified_count(c)).sum();
        prop_assert_eq!(per_row, m.specified_count());
        prop_assert_eq!(per_col, m.specified_count());
    }

    #[test]
    fn set_then_unset_is_identity(m in arb_matrix(), r in 0usize..12, c in 0usize..12, v in -10.0..10.0f64) {
        let r = r % m.rows();
        let c = c % m.cols();
        let mut m2 = m.clone();
        let before = m2.get(r, c);
        m2.set(r, c, v);
        prop_assert_eq!(m2.get(r, c), Some(v));
        match before {
            Some(old) => { m2.set(r, c, old); }
            None => { m2.unset(r, c); }
        }
        prop_assert_eq!(m2, m);
    }

    // ---- Statistics --------------------------------------------------

    #[test]
    fn summary_matches_naive(values in proptest::collection::vec(-1e6..1e6f64, 1..100)) {
        let s = stats::Summary::from_values(values.iter().copied());
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((s.mean - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance - var).abs() <= 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.count, values.len());
        prop_assert!(s.min <= s.max);
    }

    // ---- Transforms ---------------------------------------------------

    #[test]
    fn centering_is_idempotent(m in arb_matrix()) {
        let once = transform::center_rows(&m);
        let twice = transform::center_rows(&once);
        for (r, c, v) in once.entries() {
            let w = twice.get(r, c).unwrap();
            prop_assert!((v - w).abs() < 1e-9, "({r},{c}): {v} vs {w}");
        }
    }

    #[test]
    fn rescale_bounds_hold(m in arb_matrix()) {
        let r = transform::rescale(&m, 0.0, 1.0);
        for (_, _, v) in r.entries() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v), "value {v}");
        }
        prop_assert_eq!(r.specified_count(), m.specified_count());
    }

    // ---- Pearson ------------------------------------------------------

    #[test]
    fn pearson_is_bounded_and_symmetric(
        a in proptest::collection::vec(-100.0..100.0f64, 3..30),
        b in proptest::collection::vec(-100.0..100.0f64, 3..30),
    ) {
        let n = a.len().min(b.len());
        if let Some(r) = pearson::pearson_r(&a[..n], &b[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
            let r2 = pearson::pearson_r(&b[..n], &a[..n]).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    #[test]
    fn pearson_shift_and_scale_invariant(
        a in proptest::collection::vec(-100.0..100.0f64, 3..20),
        shift in -50.0..50.0f64,
        scale in 0.1..10.0f64,
    ) {
        let b: Vec<f64> = a.iter().map(|&x| x * scale + shift).collect();
        if let Some(r) = pearson::pearson_r(&a, &b) {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {r}");
        }
    }

    // ---- IO roundtrip -------------------------------------------------

    #[test]
    fn dense_io_roundtrip(m in arb_matrix()) {
        let fmt = io::DenseFormat::default();
        let mut buf = Vec::new();
        io::write_dense(&m, &mut buf, &fmt).unwrap();
        let back = io::read_dense(&buf[..], &fmt).unwrap();
        prop_assert_eq!(back.rows(), m.rows());
        prop_assert_eq!(back.cols(), m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                match (m.get(r, c), back.get(r, c)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                    (a, b) => prop_assert!(false, "({r},{c}): {a:?} vs {b:?}"),
                }
            }
        }
    }
}
