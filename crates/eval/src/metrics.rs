//! Recall and precision of a discovered clustering against ground truth
//! (§6.2.2).

use crate::entryset::entry_union;
use dc_floc::DeltaCluster;
use dc_matrix::DataMatrix;
use serde::{Deserialize, Serialize};

/// Entry-level quality of a clustering against embedded ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quality {
    /// `|U ∩ V| / |U|` — how much of the embedded structure was found.
    pub recall: f64,
    /// `|U ∩ V| / |V|` — how much of what was found is embedded structure.
    pub precision: f64,
    /// `|U ∩ V|` in entries.
    pub intersection: usize,
    /// `|U|` — embedded entries.
    pub truth_entries: usize,
    /// `|V|` — discovered entries.
    pub found_entries: usize,
}

impl Quality {
    /// Harmonic mean of recall and precision (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let denom = self.recall + self.precision;
        if denom == 0.0 {
            0.0
        } else {
            2.0 * self.recall * self.precision / denom
        }
    }
}

/// Computes entry-level recall/precision of `found` against `truth`.
///
/// Conventions for empty sides: with no truth entries recall is 1 (nothing
/// to find); with no found entries precision is 1 (nothing wrong was
/// reported).
pub fn quality(matrix: &DataMatrix, truth: &[DeltaCluster], found: &[DeltaCluster]) -> Quality {
    let u = entry_union(matrix, truth);
    let v = entry_union(matrix, found);
    let intersection = u.intersection_len(&v);
    Quality {
        recall: if u.is_empty() {
            1.0
        } else {
            intersection as f64 / u.len() as f64
        },
        precision: if v.is_empty() {
            1.0
        } else {
            intersection as f64 / v.len() as f64
        },
        intersection,
        truth_entries: u.len(),
        found_entries: v.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> DataMatrix {
        DataMatrix::builder(4, 4).from_rows((0..16).map(|x| x as f64).collect())
    }

    #[test]
    fn perfect_recovery() {
        let m = matrix();
        let truth = vec![DeltaCluster::from_indices(4, 4, [0, 1], [0, 1])];
        let q = quality(&m, &truth, &truth);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.f1(), 1.0);
        assert_eq!(q.intersection, 4);
    }

    #[test]
    fn partial_overlap() {
        let m = matrix();
        let truth = vec![DeltaCluster::from_indices(4, 4, [0, 1], [0, 1])]; // 4 cells
        let found = vec![DeltaCluster::from_indices(4, 4, [1, 2], [0, 1])]; // 4 cells, 2 shared
        let q = quality(&m, &truth, &found);
        assert_eq!(q.recall, 0.5);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.intersection, 2);
        assert!((q.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_finds_zero() {
        let m = matrix();
        let truth = vec![DeltaCluster::from_indices(4, 4, [0], [0])];
        let found = vec![DeltaCluster::from_indices(4, 4, [3], [3])];
        let q = quality(&m, &truth, &found);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.f1(), 0.0);
    }

    #[test]
    fn overlapping_found_clusters_counted_once() {
        let m = matrix();
        let truth = vec![DeltaCluster::from_indices(4, 4, [0, 1], [0, 1])];
        // Two identical found clusters: union is still 4 cells.
        let found = vec![
            DeltaCluster::from_indices(4, 4, [0, 1], [0, 1]),
            DeltaCluster::from_indices(4, 4, [0, 1], [0, 1]),
        ];
        let q = quality(&m, &truth, &found);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.found_entries, 4);
    }

    #[test]
    fn empty_side_conventions() {
        let m = matrix();
        let c = vec![DeltaCluster::from_indices(4, 4, [0], [0, 1])];
        let q = quality(&m, &[], &c);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.precision, 0.0);
        let q = quality(&m, &c, &[]);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.precision, 1.0);
    }

    #[test]
    fn missing_entries_do_not_count() {
        let mut m = matrix();
        m.unset(0, 0);
        let truth = vec![DeltaCluster::from_indices(4, 4, [0], [0, 1])];
        let found = truth.clone();
        let q = quality(&m, &truth, &found);
        assert_eq!(q.truth_entries, 1, "(0,0) is missing");
        assert_eq!(q.recall, 1.0);
    }
}
