//! Residue distributions across a clustering.
//!
//! Average residue (the FLOC objective) can hide a long tail of bad
//! clusters. This module summarizes the per-cluster residue distribution —
//! percentiles plus a fixed-width histogram — for experiment reports and
//! regression tracking.

use dc_floc::{cluster_residue, DeltaCluster, ResidueMean};
use dc_matrix::DataMatrix;
use serde::{Deserialize, Serialize};

/// Distribution summary of per-cluster residues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidueDistribution {
    /// Number of clusters summarized.
    pub count: usize,
    /// Minimum residue.
    pub min: f64,
    /// Median residue.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum residue.
    pub max: f64,
    /// Mean residue (the FLOC objective).
    pub mean: f64,
    /// Histogram bucket counts over `[min, max]` (empty when `count == 0`
    /// or all residues are equal).
    pub histogram: Vec<usize>,
}

/// Linear-interpolation percentile of a sorted slice (`q` in `[0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Summarizes a set of residue values with `buckets` histogram bins.
pub fn summarize_residues(residues: &[f64], buckets: usize) -> ResidueDistribution {
    if residues.is_empty() {
        return ResidueDistribution {
            count: 0,
            min: 0.0,
            median: 0.0,
            p90: 0.0,
            max: 0.0,
            mean: 0.0,
            histogram: Vec::new(),
        };
    }
    let mut sorted = residues.to_vec();
    sorted.sort_by(f64::total_cmp);
    let min = sorted[0];
    let max = *sorted.last().unwrap();
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let histogram = if buckets == 0 || max <= min {
        Vec::new()
    } else {
        let width = (max - min) / buckets as f64;
        let mut h = vec![0usize; buckets];
        for &r in &sorted {
            let idx = (((r - min) / width) as usize).min(buckets - 1);
            h[idx] += 1;
        }
        h
    };
    ResidueDistribution {
        count: sorted.len(),
        min,
        median: percentile(&sorted, 0.5),
        p90: percentile(&sorted, 0.9),
        max,
        mean,
        histogram,
    }
}

/// Computes each cluster's arithmetic residue and summarizes the
/// distribution.
pub fn clustering_distribution(
    matrix: &DataMatrix,
    clusters: &[DeltaCluster],
    buckets: usize,
) -> ResidueDistribution {
    let residues: Vec<f64> = clusters
        .iter()
        .map(|c| cluster_residue(matrix, c, ResidueMean::Arithmetic))
        .collect();
    summarize_residues(&residues, buckets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_distribution() {
        let d = summarize_residues(&[], 10);
        assert_eq!(d.count, 0);
        assert!(d.histogram.is_empty());
    }

    #[test]
    fn single_value() {
        let d = summarize_residues(&[3.0], 4);
        assert_eq!(d.count, 1);
        assert_eq!(d.min, 3.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.p90, 3.0);
        assert_eq!(d.max, 3.0);
        assert!(d.histogram.is_empty(), "degenerate range has no histogram");
    }

    #[test]
    fn known_percentiles() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let d = summarize_residues(&values, 5);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.mean, 3.0);
        assert!((d.p90 - 4.6).abs() < 1e-12, "p90 {}", d.p90);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.histogram.iter().sum::<usize>(), 5);
    }

    #[test]
    fn histogram_buckets_cover_everything() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = summarize_residues(&values, 10);
        assert_eq!(d.histogram.len(), 10);
        assert_eq!(d.histogram.iter().sum::<usize>(), 100);
        // Uniform data → roughly uniform buckets.
        for &b in &d.histogram {
            assert!((5..=15).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn unsorted_input_is_handled() {
        let d = summarize_residues(&[5.0, 1.0, 3.0], 2);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.median, 3.0);
    }

    #[test]
    fn clustering_distribution_uses_real_residues() {
        // One perfect cluster, one noisy cluster.
        let m = DataMatrix::builder(4, 4).from_rows(vec![
            1.0, 2.0, 90.0, 7.0, //
            2.0, 3.0, 4.0, 80.0, //
            10.0, 11.0, 50.0, 2.0, //
            0.0, 33.0, 1.0, 9.0,
        ]);
        let perfect = DeltaCluster::from_indices(4, 4, [0, 1, 2], [0, 1]);
        let noisy = DeltaCluster::from_indices(4, 4, 0..4, 0..4);
        let d = clustering_distribution(&m, &[perfect, noisy], 2);
        assert_eq!(d.count, 2);
        assert!(d.min < 1e-9, "perfect cluster min {}", d.min);
        assert!(d.max > 5.0, "noisy cluster max {}", d.max);
        assert!((d.mean - (d.min + d.max) / 2.0).abs() < 1e-9);
    }
}
