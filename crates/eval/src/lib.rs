//! # dc-eval
//!
//! Evaluation metrics for biclusterings, matching §6 of the δ-cluster
//! paper:
//!
//! * [`entryset`] — clusters as bitsets of specified cells.
//! * [`metrics`] — entry-level recall and precision against embedded ground
//!   truth (the Table 4/5 quality numbers).
//! * [`matching`] — greedy one-to-one cluster matching for finer-grained
//!   diagnostics.
//! * [`diameter`] — the bounding-box diameter statistic of Table 1.
//! * [`report`] — fixed-width text tables and JSON export used by every
//!   experiment binary.

pub mod diameter;
pub mod entryset;
pub mod matching;
pub mod metrics;
pub mod report;
pub mod residue_stats;

pub use diameter::{diameter, diameter_l1};
pub use entryset::{entry_set, entry_union};
pub use matching::{match_clusters, match_summary, recovery_rate, ClusterMatch, MatchSummary};
pub use metrics::{quality, Quality};
pub use report::Table;
pub use residue_stats::{clustering_distribution, summarize_residues, ResidueDistribution};
