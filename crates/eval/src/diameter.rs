//! Cluster diameter — the Table 1 statistic.
//!
//! §6.1.1: "A viewer's rating can be regarded as a point in high dimension
//! space. A δ-cluster is a set of such points. The diameter of a cluster is
//! defined as the diameter of the minimum bounding box for the cluster."
//! We take the bounding box over the cluster's own attributes (each
//! attribute's specified-value range among the cluster's objects) and
//! report its diagonal; an L1 variant (sum of ranges) is also provided.
//! The point of the statistic is that δ-clusters are *physically huge* —
//! traditional distance-based clustering would never group these points —
//! while their residue stays small.

use dc_floc::DeltaCluster;
use dc_matrix::DataMatrix;

/// Per-attribute specified-value ranges of the cluster's objects, aligned
/// with the cluster's columns in ascending order. Attributes with fewer
/// than one specified value contribute a zero range.
pub fn attribute_ranges(matrix: &DataMatrix, cluster: &DeltaCluster) -> Vec<f64> {
    cluster
        .cols
        .iter()
        .map(|c| {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for r in cluster.rows.iter() {
                if let Some(v) = matrix.get(r, c) {
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            if min.is_finite() {
                max - min
            } else {
                0.0
            }
        })
        .collect()
}

/// Euclidean diameter: the diagonal of the minimum bounding box,
/// `sqrt(Σ range_j²)`.
pub fn diameter(matrix: &DataMatrix, cluster: &DeltaCluster) -> f64 {
    attribute_ranges(matrix, cluster)
        .iter()
        .map(|r| r * r)
        .sum::<f64>()
        .sqrt()
}

/// L1 diameter: the sum of per-attribute ranges.
pub fn diameter_l1(matrix: &DataMatrix, cluster: &DeltaCluster) -> f64 {
    attribute_ranges(matrix, cluster).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_diameter() {
        let m = DataMatrix::builder(3, 2).from_rows(vec![1.0, 10.0, 4.0, 10.0, 1.0, 16.0]);
        let c = DeltaCluster::from_indices(3, 2, 0..3, 0..2);
        assert_eq!(attribute_ranges(&m, &c), vec![3.0, 6.0]);
        assert!((diameter(&m, &c) - 45.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(diameter_l1(&m, &c), 9.0);
    }

    #[test]
    fn diameter_ignores_columns_outside_cluster() {
        let m = DataMatrix::builder(2, 3).from_rows(vec![0.0, 0.0, 100.0, 5.0, 0.0, -100.0]);
        let c = DeltaCluster::from_indices(2, 3, 0..2, [0, 1]);
        assert_eq!(diameter_l1(&m, &c), 5.0, "column 2's huge range excluded");
    }

    #[test]
    fn missing_values_skipped() {
        let mut m = DataMatrix::builder(3, 1).from_rows(vec![1.0, 50.0, 3.0]);
        m.unset(1, 0);
        let c = DeltaCluster::from_indices(3, 1, 0..3, [0]);
        assert_eq!(attribute_ranges(&m, &c), vec![2.0]);
    }

    #[test]
    fn single_point_cluster_has_zero_diameter() {
        let m = DataMatrix::builder(2, 2).from_rows(vec![1.0, 2.0, 3.0, 4.0]);
        let c = DeltaCluster::from_indices(2, 2, [0], [0, 1]);
        assert_eq!(diameter(&m, &c), 0.0);
    }

    #[test]
    fn all_missing_column_contributes_zero() {
        let mut m = DataMatrix::builder(2, 2).from_rows(vec![1.0, 2.0, 9.0, 4.0]);
        m.unset(0, 1);
        m.unset(1, 1);
        let c = DeltaCluster::from_indices(2, 2, 0..2, 0..2);
        assert_eq!(attribute_ranges(&m, &c), vec![8.0, 0.0]);
    }

    #[test]
    fn coherent_but_distant_points_have_large_diameter_small_residue() {
        // The Figure 1 vectors: perfectly coherent yet far apart — the
        // phenomenon Table 1's diameter column demonstrates.
        let m = DataMatrix::builder(3, 5).from_rows(vec![
            1.0, 5.0, 23.0, 12.0, 20.0, 11.0, 15.0, 33.0, 22.0, 30.0, 111.0, 115.0, 133.0, 122.0,
            130.0,
        ]);
        let c = DeltaCluster::from_indices(3, 5, 0..3, 0..5);
        assert!(diameter(&m, &c) > 200.0, "diameter {}", diameter(&m, &c));
        let residue = dc_floc::cluster_residue(&m, &c, dc_floc::ResidueMean::Arithmetic);
        assert!(residue < 1e-9);
    }
}
