//! Entry sets: clusters as sets of specified matrix cells.
//!
//! The paper's quality metrics (§6.2.2) are defined on entries: `U` is the
//! set of entries in the embedded clusters, `V` the set of entries in the
//! discovered ones, recall is `|U∩V|/|U|` and precision `|U∩V|/|V|`. An
//! entry set is represented as a bitset over the matrix's cells, making
//! intersection/union counting a handful of popcounts.

use dc_floc::DeltaCluster;
use dc_matrix::{BitSet, DataMatrix};

/// The set of *specified* cells covered by a cluster, as a bitset over
/// `rows × cols` cell indices (`row * cols + col`).
pub fn entry_set(matrix: &DataMatrix, cluster: &DeltaCluster) -> BitSet {
    let mut set = BitSet::new(matrix.cells());
    let cols: Vec<usize> = cluster.cols.iter().collect();
    for r in cluster.rows.iter() {
        for &c in &cols {
            if matrix.is_specified(r, c) {
                set.insert(r * matrix.cols() + c);
            }
        }
    }
    set
}

/// The union of the entry sets of a clustering.
pub fn entry_union(matrix: &DataMatrix, clusters: &[DeltaCluster]) -> BitSet {
    let mut union = BitSet::new(matrix.cells());
    for c in clusters {
        union.union_with(&entry_set(matrix, c));
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> DataMatrix {
        let mut m = DataMatrix::builder(3, 3).from_rows((0..9).map(|x| x as f64).collect());
        m.unset(1, 1);
        m
    }

    #[test]
    fn entry_set_skips_missing() {
        let m = matrix();
        let c = DeltaCluster::from_indices(3, 3, [0, 1], [0, 1]);
        let s = entry_set(&m, &c);
        // Cells (0,0), (0,1), (1,0); (1,1) is missing.
        assert_eq!(s.len(), 3);
        assert!(s.contains(0));
        assert!(s.contains(1));
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn union_counts_overlap_once() {
        let m = matrix();
        let a = DeltaCluster::from_indices(3, 3, [0, 1], [0, 1]);
        let b = DeltaCluster::from_indices(3, 3, [0], [0, 1, 2]);
        let u = entry_union(&m, &[a.clone(), b.clone()]);
        // a covers 3 cells (one missing), b covers 3; overlap = row 0 cols
        // {0,1} = 2 cells → union 4.
        assert_eq!(u.len(), 4);
        // Union of a single cluster is its own set.
        assert_eq!(entry_union(&m, std::slice::from_ref(&a)), entry_set(&m, &a));
    }

    #[test]
    fn empty_clustering_has_empty_union() {
        let m = matrix();
        assert_eq!(entry_union(&m, &[]).len(), 0);
    }
}
