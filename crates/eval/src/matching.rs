//! Per-cluster matching between a discovered clustering and ground truth.
//!
//! Aggregate recall/precision (see [`crate::metrics`]) can hide failure
//! modes — one giant discovered cluster swallowing everything scores decent
//! recall. Greedy one-to-one matching by entry overlap gives a
//! finer-grained view: which embedded cluster was found by which discovered
//! cluster, and how well.

use crate::entryset::entry_set;
use dc_floc::DeltaCluster;
use dc_matrix::DataMatrix;
use serde::{Deserialize, Serialize};

/// The match found for one ground-truth cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterMatch {
    /// Index into the ground-truth clustering.
    pub truth_index: usize,
    /// Index into the discovered clustering, if any cluster overlapped.
    pub found_index: Option<usize>,
    /// Shared entries with the matched cluster (0 if unmatched).
    pub shared_entries: usize,
    /// Jaccard similarity of the entry sets (0 if unmatched).
    pub jaccard: f64,
}

/// Greedy one-to-one matching: repeatedly pair the (truth, found) pair with
/// the largest entry overlap until no positive overlap remains. Each
/// cluster participates in at most one match.
pub fn match_clusters(
    matrix: &DataMatrix,
    truth: &[DeltaCluster],
    found: &[DeltaCluster],
) -> Vec<ClusterMatch> {
    let truth_sets: Vec<_> = truth.iter().map(|c| entry_set(matrix, c)).collect();
    let found_sets: Vec<_> = found.iter().map(|c| entry_set(matrix, c)).collect();

    // All positive-overlap pairs, best first.
    let mut pairs: Vec<(usize, usize, usize)> = Vec::new();
    for (t, ts) in truth_sets.iter().enumerate() {
        for (f, fs) in found_sets.iter().enumerate() {
            let shared = ts.intersection_len(fs);
            if shared > 0 {
                pairs.push((t, f, shared));
            }
        }
    }
    pairs.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));

    let mut truth_used = vec![false; truth.len()];
    let mut found_used = vec![false; found.len()];
    let mut matches: Vec<ClusterMatch> = truth
        .iter()
        .enumerate()
        .map(|(i, _)| ClusterMatch {
            truth_index: i,
            found_index: None,
            shared_entries: 0,
            jaccard: 0.0,
        })
        .collect();
    for (t, f, shared) in pairs {
        if truth_used[t] || found_used[f] {
            continue;
        }
        truth_used[t] = true;
        found_used[f] = true;
        let union = truth_sets[t].union_len(&found_sets[f]);
        matches[t] = ClusterMatch {
            truth_index: t,
            found_index: Some(f),
            shared_entries: shared,
            jaccard: if union == 0 {
                0.0
            } else {
                shared as f64 / union as f64
            },
        };
    }
    matches
}

/// Fraction of ground-truth clusters matched with Jaccard at least
/// `threshold`.
pub fn recovery_rate(matches: &[ClusterMatch], threshold: f64) -> f64 {
    if matches.is_empty() {
        return 1.0;
    }
    matches.iter().filter(|m| m.jaccard >= threshold).count() as f64 / matches.len() as f64
}

/// Cluster-level aggregate of a greedy matching, safe on degenerate runs.
///
/// Every ratio is a *defined* number for every input: a clustering with
/// zero found clusters (a baseline that bailed out) or zero reference
/// clusters scores 0.0, never NaN from a 0/0 division. This is the
/// cluster-counting complement to the entry-level [`crate::quality`]
/// conventions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchSummary {
    /// Ground-truth clusters considered.
    pub truth_clusters: usize,
    /// Discovered clusters considered.
    pub found_clusters: usize,
    /// Pairs matched with Jaccard at least the requested threshold.
    pub matched: usize,
    /// `matched / truth_clusters` — 0.0 when there is no truth.
    pub cluster_recall: f64,
    /// `matched / found_clusters` — 0.0 when nothing was found.
    pub cluster_precision: f64,
    /// Mean Jaccard over all truth clusters (unmatched count as 0) —
    /// 0.0 when there is no truth.
    pub mean_jaccard: f64,
}

/// Summarizes a [`match_clusters`] result into defined, NaN-free ratios.
///
/// `found_clusters` is the size of the discovered clustering the matches
/// were computed against (it cannot be recovered from `matches`, which is
/// indexed by truth).
pub fn match_summary(
    matches: &[ClusterMatch],
    found_clusters: usize,
    threshold: f64,
) -> MatchSummary {
    let matched = matches
        .iter()
        .filter(|m| m.found_index.is_some() && m.jaccard >= threshold)
        .count();
    let ratio = |num: usize, denom: usize| {
        if denom == 0 {
            0.0
        } else {
            num as f64 / denom as f64
        }
    };
    let mean_jaccard = if matches.is_empty() {
        0.0
    } else {
        matches.iter().map(|m| m.jaccard).sum::<f64>() / matches.len() as f64
    };
    MatchSummary {
        truth_clusters: matches.len(),
        found_clusters,
        matched,
        cluster_recall: ratio(matched, matches.len()),
        cluster_precision: ratio(matched, found_clusters),
        mean_jaccard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> DataMatrix {
        DataMatrix::builder(6, 6).from_rows((0..36).map(|x| x as f64).collect())
    }

    #[test]
    fn exact_recovery_matches_everything() {
        let m = matrix();
        let truth = vec![
            DeltaCluster::from_indices(6, 6, [0, 1], [0, 1]),
            DeltaCluster::from_indices(6, 6, [3, 4], [3, 4]),
        ];
        let matches = match_clusters(&m, &truth, &truth);
        for (i, mt) in matches.iter().enumerate() {
            assert_eq!(mt.found_index, Some(i));
            assert_eq!(mt.jaccard, 1.0);
        }
        assert_eq!(recovery_rate(&matches, 0.99), 1.0);
    }

    #[test]
    fn greedy_prefers_largest_overlap() {
        let m = matrix();
        let truth = vec![DeltaCluster::from_indices(6, 6, [0, 1, 2], [0, 1, 2])]; // 9 cells
        let found = vec![
            DeltaCluster::from_indices(6, 6, [0], [0]), // 1 shared
            DeltaCluster::from_indices(6, 6, [0, 1], [0, 1, 2]), // 6 shared
        ];
        let matches = match_clusters(&m, &truth, &found);
        assert_eq!(matches[0].found_index, Some(1));
        assert_eq!(matches[0].shared_entries, 6);
        assert!((matches[0].jaccard - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn one_found_cluster_matches_only_one_truth() {
        let m = matrix();
        let truth = vec![
            DeltaCluster::from_indices(6, 6, [0, 1], [0, 1]),
            DeltaCluster::from_indices(6, 6, [1, 2], [0, 1]),
        ];
        // A single found cluster overlapping both truths.
        let found = vec![DeltaCluster::from_indices(6, 6, [0, 1, 2], [0, 1])];
        let matches = match_clusters(&m, &truth, &found);
        let matched: Vec<_> = matches.iter().filter(|m| m.found_index.is_some()).collect();
        assert_eq!(
            matched.len(),
            1,
            "one found cluster can match only one truth"
        );
    }

    #[test]
    fn disjoint_clusters_stay_unmatched() {
        let m = matrix();
        let truth = vec![DeltaCluster::from_indices(6, 6, [0], [0])];
        let found = vec![DeltaCluster::from_indices(6, 6, [5], [5])];
        let matches = match_clusters(&m, &truth, &found);
        assert_eq!(matches[0].found_index, None);
        assert_eq!(matches[0].jaccard, 0.0);
        assert_eq!(recovery_rate(&matches, 0.1), 0.0);
    }

    #[test]
    fn recovery_rate_thresholds() {
        let matches = vec![
            ClusterMatch {
                truth_index: 0,
                found_index: Some(0),
                shared_entries: 5,
                jaccard: 0.9,
            },
            ClusterMatch {
                truth_index: 1,
                found_index: Some(1),
                shared_entries: 2,
                jaccard: 0.3,
            },
        ];
        assert_eq!(recovery_rate(&matches, 0.5), 0.5);
        assert_eq!(recovery_rate(&matches, 0.2), 1.0);
        assert_eq!(recovery_rate(&[], 0.5), 1.0);
    }

    /// Every field of a summary must be a plain finite number.
    fn assert_defined(s: &MatchSummary) {
        for (name, v) in [
            ("cluster_recall", s.cluster_recall),
            ("cluster_precision", s.cluster_precision),
            ("mean_jaccard", s.mean_jaccard),
        ] {
            assert!(v.is_finite(), "{name} must be finite, got {v}");
        }
    }

    #[test]
    fn empty_found_clustering_summarizes_to_zero_not_nan() {
        let m = matrix();
        let truth = vec![DeltaCluster::from_indices(6, 6, [0, 1], [0, 1])];
        let matches = match_clusters(&m, &truth, &[]);
        let s = match_summary(&matches, 0, 0.5);
        assert_defined(&s);
        assert_eq!(s.found_clusters, 0);
        assert_eq!(s.matched, 0);
        assert_eq!(s.cluster_recall, 0.0);
        assert_eq!(s.cluster_precision, 0.0, "0/0 must be 0.0, not NaN");
        assert_eq!(s.mean_jaccard, 0.0);
    }

    #[test]
    fn empty_truth_clustering_summarizes_to_zero_not_nan() {
        let m = matrix();
        let found = vec![DeltaCluster::from_indices(6, 6, [0, 1], [0, 1])];
        let matches = match_clusters(&m, &[], &found);
        let s = match_summary(&matches, found.len(), 0.5);
        assert_defined(&s);
        assert_eq!(s.truth_clusters, 0);
        assert_eq!(s.cluster_recall, 0.0, "0/0 must be 0.0, not NaN");
        assert_eq!(s.cluster_precision, 0.0);
        assert_eq!(s.mean_jaccard, 0.0);
    }

    #[test]
    fn both_sides_empty_summarize_to_zero_not_nan() {
        let m = matrix();
        let matches = match_clusters(&m, &[], &[]);
        let s = match_summary(&matches, 0, 0.5);
        assert_defined(&s);
        assert_eq!(
            (s.cluster_recall, s.cluster_precision, s.mean_jaccard),
            (0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn match_summary_counts_threshold_survivors() {
        let m = matrix();
        let truth = vec![
            DeltaCluster::from_indices(6, 6, [0, 1], [0, 1]),
            DeltaCluster::from_indices(6, 6, [3, 4], [3, 4]),
        ];
        let found = vec![
            DeltaCluster::from_indices(6, 6, [0, 1], [0, 1]), // jaccard 1.0
            DeltaCluster::from_indices(6, 6, [3], [3]),       // jaccard 0.25
            DeltaCluster::from_indices(6, 6, [5], [5]),       // unmatched
        ];
        let matches = match_clusters(&m, &truth, &found);
        let s = match_summary(&matches, found.len(), 0.5);
        assert_defined(&s);
        assert_eq!(s.truth_clusters, 2);
        assert_eq!(s.found_clusters, 3);
        assert_eq!(s.matched, 1);
        assert_eq!(s.cluster_recall, 0.5);
        assert!((s.cluster_precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_jaccard - (1.0 + 0.25) / 2.0).abs() < 1e-12);
    }
}
