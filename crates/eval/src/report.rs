//! Plain-text tables and JSON export for the experiment harness.
//!
//! Every table/figure binary in `dc-bench` prints its rows through
//! [`Table`] (so EXPERIMENTS.md and the console agree) and dumps the raw
//! numbers as JSON for regeneration diffs.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with the given number of decimals (helper for table
/// cells).
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Serializes `value` as pretty JSON into `dir/name.json`, creating the
/// directory if needed. The write is atomic (temp + fsync + rename), so a
/// crash mid-experiment never leaves a truncated report behind a previous
/// good one. Returns the written path.
pub fn write_json<T: Serialize>(
    dir: &Path,
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    dc_serve::atomic_write(&path, json.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "23"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(2.0, 0), "2");
    }

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("dc_eval_report_test");
        let path = write_json(&dir, "sample", &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<i32> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
