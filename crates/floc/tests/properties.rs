//! Property-based tests for the δ-cluster model and FLOC machinery.

use dc_floc::{cluster_residue, residue, ClusterState, DeltaCluster, ResidueMean, Scratch};
use dc_matrix::DataMatrix;
use proptest::prelude::*;

/// Arbitrary small matrix with optional entries.
fn arb_matrix() -> impl Strategy<Value = DataMatrix> {
    (2usize..10, 2usize..10).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::option::weighted(0.85, -100.0..100.0f64),
            rows * cols,
        )
        .prop_map(move |data| DataMatrix::builder(rows, cols).from_options(data))
    })
}

/// Arbitrary non-empty cluster over an `m × n` universe.
fn arb_cluster(m: usize, n: usize) -> impl Strategy<Value = DeltaCluster> {
    (
        proptest::collection::hash_set(0..m, 1..=m),
        proptest::collection::hash_set(0..n, 1..=n),
    )
        .prop_map(move |(rows, cols)| DeltaCluster::from_indices(m, n, rows, cols))
}

fn arb_matrix_and_cluster() -> impl Strategy<Value = (DataMatrix, DeltaCluster)> {
    arb_matrix().prop_flat_map(|m| {
        let (rows, cols) = (m.rows(), m.cols());
        arb_cluster(rows, cols).prop_map(move |c| (m.clone(), c))
    })
}

proptest! {
    // ---- Residue invariants ------------------------------------------

    #[test]
    fn residue_is_non_negative((m, c) in arb_matrix_and_cluster()) {
        for mean in [ResidueMean::Arithmetic, ResidueMean::Squared] {
            let r = cluster_residue(&m, &c, mean);
            prop_assert!(r >= 0.0, "{mean:?}: {r}");
            prop_assert!(r.is_finite());
        }
    }

    #[test]
    fn residue_is_invariant_under_row_shifts(
        (m, c) in arb_matrix_and_cluster(),
        shift in -500.0..500.0f64,
        which in 0usize..10,
    ) {
        // Shifting all entries of one participating row by a constant must
        // not change the residue — the defining property of the model.
        // Exact invariance requires the cluster submatrix to be fully
        // specified: with missing entries the bases average over different
        // supports and the shift no longer cancels, so we restrict to that
        // case (the arithmetic of Definition 3.4 is only "perfect" there,
        // which is why Definition 3.1 bounds missing entries via α).
        let complete = c.rows.iter().all(|r| c.cols.iter().all(|col| m.is_specified(r, col)));
        prop_assume!(complete);
        let rows: Vec<usize> = c.rows.iter().collect();
        let row = rows[which % rows.len()];
        let mut shifted = m.clone();
        for col in 0..m.cols() {
            if let Some(v) = m.get(row, col) {
                shifted.set(row, col, v + shift);
            }
        }
        let before = cluster_residue(&m, &c, ResidueMean::Arithmetic);
        let after = cluster_residue(&shifted, &c, ResidueMean::Arithmetic);
        prop_assert!((before - after).abs() < 1e-6, "{before} vs {after}");
    }

    #[test]
    fn residue_is_invariant_under_global_shift((m, c) in arb_matrix_and_cluster(), shift in -500.0..500.0f64) {
        let mut shifted = m.clone();
        shifted.map_in_place(|v| v + shift);
        let before = cluster_residue(&m, &c, ResidueMean::Arithmetic);
        let after = cluster_residue(&shifted, &c, ResidueMean::Arithmetic);
        prop_assert!((before - after).abs() < 1e-6);
    }

    #[test]
    fn perfect_additive_cluster_has_zero_residue(
        row_biases in proptest::collection::vec(-50.0..50.0f64, 2..8),
        col_effects in proptest::collection::vec(-50.0..50.0f64, 2..8),
    ) {
        let rows = row_biases.len();
        let cols = col_effects.len();
        let mut m = DataMatrix::builder(rows, cols).build();
        for (r, rb) in row_biases.iter().enumerate() {
            for (c, ce) in col_effects.iter().enumerate() {
                m.set(r, c, rb + ce);
            }
        }
        let cluster = DeltaCluster::from_indices(rows, cols, 0..rows, 0..cols);
        prop_assert!(cluster_residue(&m, &cluster, ResidueMean::Arithmetic) < 1e-9);
    }

    // ---- Incremental state vs reference -------------------------------

    #[test]
    fn incremental_state_tracks_reference(
        (m, c) in arb_matrix_and_cluster(),
        toggles in proptest::collection::vec((proptest::bool::ANY, 0usize..10), 0..25),
    ) {
        let mut state = ClusterState::new(&m, &c);
        let mut scratch = Scratch::default();
        for (is_row, idx) in toggles {
            if is_row {
                state.toggle_row(&m, idx % m.rows());
            } else {
                state.toggle_col(&m, idx % m.cols());
            }
            let incr = state.residue(&m, ResidueMean::Arithmetic, &mut scratch);
            let oracle = cluster_residue(&m, &state.to_cluster(), ResidueMean::Arithmetic);
            prop_assert!((incr - oracle).abs() < 1e-7, "incr {incr} vs oracle {oracle}");
            prop_assert_eq!(state.volume(), state.to_cluster().volume(&m));
        }
    }

    #[test]
    fn virtual_toggles_match_actual((m, c) in arb_matrix_and_cluster(), idx in 0usize..10) {
        let state = ClusterState::new(&m, &c);
        let mut scratch = Scratch::default();
        let row = idx % m.rows();
        let col = idx % m.cols();
        for mean in [ResidueMean::Arithmetic, ResidueMean::Squared] {
            let virt = state.residue_if_row_toggled(&m, row, mean, &mut scratch);
            let mut actual = state.clone();
            actual.toggle_row(&m, row);
            let real = actual.residue(&m, mean, &mut scratch);
            prop_assert!((virt - real).abs() < 1e-7, "row {row} {mean:?}: {virt} vs {real}");

            let virt = state.residue_if_col_toggled(&m, col, mean, &mut scratch);
            let mut actual = state.clone();
            actual.toggle_col(&m, col);
            let real = actual.residue(&m, mean, &mut scratch);
            prop_assert!((virt - real).abs() < 1e-7, "col {col} {mean:?}: {virt} vs {real}");
        }
    }

    #[test]
    fn double_toggle_is_identity((m, c) in arb_matrix_and_cluster(), idx in 0usize..10) {
        let state = ClusterState::new(&m, &c);
        let mut scratch = Scratch::default();
        let before = state.residue(&m, ResidueMean::Arithmetic, &mut scratch);
        let mut toggled = state.clone();
        let row = idx % m.rows();
        toggled.toggle_row(&m, row);
        toggled.toggle_row(&m, row);
        let after = toggled.residue(&m, ResidueMean::Arithmetic, &mut scratch);
        prop_assert!((before - after).abs() < 1e-7);
        prop_assert_eq!(toggled.volume(), state.volume());
        prop_assert_eq!(&toggled.rows, &state.rows);
    }

    // ---- Occupancy -----------------------------------------------------

    #[test]
    fn occupancy_violations_match_definition((m, c) in arb_matrix_and_cluster(), alpha in 0.0..1.0f64) {
        let state = ClusterState::new(&m, &c);
        let violations = state.occupancy_violations(alpha);
        prop_assert_eq!(violations == 0, c.satisfies_occupancy(&m, alpha));
    }

    // ---- Bases ----------------------------------------------------------

    #[test]
    fn bases_average_to_cluster_base((m, c) in arb_matrix_and_cluster()) {
        let b = residue::bases(&m, &c);
        if b.volume > 0 {
            // The volume-weighted mean of row bases equals the cluster base.
            let mut weighted = 0.0;
            let mut weight = 0.0;
            for (i, &row) in b.rows.iter().enumerate() {
                let cnt = c.cols.iter().filter(|&col| m.is_specified(row, col)).count() as f64;
                weighted += b.row_bases[i] * cnt;
                weight += cnt;
            }
            if weight > 0.0 {
                prop_assert!((weighted / weight - b.cluster_base).abs() < 1e-7);
            }
        }
    }
}

// ---- Checkpoint / resume -------------------------------------------------

use dc_floc::{floc_observed, floc_resume, FlocCheckpoint, FlocConfig, GainEngineKind};

/// A denser random matrix suitable for actually running FLOC end to end
/// (the residue machinery needs enough specified cells to make progress).
fn arb_mining_matrix() -> impl Strategy<Value = DataMatrix> {
    (8usize..20, 6usize..14).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::option::weighted(0.92, -50.0..50.0f64),
            rows * cols,
        )
        .prop_map(move |data| DataMatrix::builder(rows, cols).from_options(data))
    })
}

proptest! {
    /// The tentpole robustness property: resuming from the snapshot taken
    /// after ANY iteration of ANY run reproduces the uninterrupted result
    /// bit for bit — same clusters, same residues, same trace.
    #[test]
    fn resume_from_every_checkpoint_matches_the_uninterrupted_run(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
        k in 2usize..4,
    ) {
        let config = FlocConfig::builder(k).alpha(0.5).seed(seed).build();
        let mut snapshots: Vec<FlocCheckpoint> = Vec::new();
        let mut obs = |c: &FlocCheckpoint| snapshots.push(c.clone());
        let full = floc_observed(&m, &config, Some(&mut obs)).unwrap();
        prop_assert!(!snapshots.is_empty());

        // Every non-terminal snapshot must resume to the identical result;
        // the terminal one must short-circuit to the same answer too.
        for ckpt in &snapshots {
            let resumed = floc_resume(&m, ckpt, &config, None).unwrap();
            prop_assert_eq!(&resumed.clusters, &full.clusters);
            prop_assert_eq!(&resumed.residues, &full.residues);
            prop_assert_eq!(resumed.avg_residue, full.avg_residue);
            prop_assert_eq!(resumed.iterations, full.iterations);
            prop_assert_eq!(resumed.stop_reason, full.stop_reason);
            prop_assert_eq!(&resumed.trace, &full.trace);
        }
    }

    /// A checkpoint survives a JSON round trip unchanged — the in-memory
    /// state, not just the binary codec, is fully serializable.
    #[test]
    fn checkpoint_json_round_trip_is_lossless(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
    ) {
        let config = FlocConfig::builder(2).alpha(0.5).seed(seed).build();
        let mut snapshots: Vec<FlocCheckpoint> = Vec::new();
        let mut obs = |c: &FlocCheckpoint| snapshots.push(c.clone());
        floc_observed(&m, &config, Some(&mut obs)).unwrap();
        for ckpt in &snapshots {
            let json = serde_json::to_string(ckpt).unwrap();
            let back: FlocCheckpoint = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, ckpt);
        }
    }
}

// ---- Gain engines ---------------------------------------------------------

use dc_floc::{IncrementalEngine, Target};

proptest! {
    /// The incremental engine answers every virtual-toggle query with the
    /// same residue as the exact scanner, for both aggregation means.
    #[test]
    fn incremental_engine_matches_exact_gains(
        (m, c) in arb_matrix_and_cluster(),
    ) {
        let state = ClusterState::new(&m, &c);
        let mut scratch = Scratch::default();
        for mean in [ResidueMean::Arithmetic, ResidueMean::Squared] {
            let engine = IncrementalEngine::build(&m, std::slice::from_ref(&state), mean);
            for r in 0..m.rows() {
                let exact = state.residue_if_row_toggled(&m, r, mean, &mut scratch);
                let incr = engine.toggled_residue(0, Target::Row(r), &state, &m);
                prop_assert!(
                    (incr - exact).abs() <= 1e-9 * (1.0 + exact.abs()),
                    "row {r} {mean:?}: incremental {incr} vs exact {exact}"
                );
            }
            for col in 0..m.cols() {
                let exact = state.residue_if_col_toggled(&m, col, mean, &mut scratch);
                let incr = engine.toggled_residue(0, Target::Col(col), &state, &m);
                prop_assert!(
                    (incr - exact).abs() <= 1e-9 * (1.0 + exact.abs()),
                    "col {col} {mean:?}: incremental {incr} vs exact {exact}"
                );
            }
        }
    }

    /// Full runs under the two engines choose the same actions and land on
    /// the same final clustering. (The engines agree to ~1e-12 on every
    /// gain, so the argmax — and hence the whole trajectory — coincides on
    /// anything but pathological exact ties.)
    #[test]
    fn engines_produce_identical_runs(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
        k in 2usize..4,
    ) {
        let exact_cfg = FlocConfig::builder(k)
            .alpha(0.5)
            .seed(seed)
            .gain_engine(GainEngineKind::Exact)
            .build();
        let incr_cfg = FlocConfig::builder(k)
            .alpha(0.5)
            .seed(seed)
            .gain_engine(GainEngineKind::Incremental)
            .build();
        let exact = dc_floc::floc(&m, &exact_cfg).unwrap();
        let incr = dc_floc::floc(&m, &incr_cfg).unwrap();
        prop_assert_eq!(&incr.clusters, &exact.clusters);
        // Final residues come from the canonical exact scan in both runs,
        // so identical clusterings imply bit-identical residues.
        prop_assert_eq!(&incr.residues, &exact.residues);
        prop_assert_eq!(incr.iterations, exact.iterations);
        prop_assert_eq!(incr.stop_reason, exact.stop_reason);
    }

    /// PR 2's checkpoint/resume bit-identity holds under the incremental
    /// engine too: resuming any snapshot reproduces the uninterrupted run.
    #[test]
    fn resume_is_bit_identical_under_the_incremental_engine(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
    ) {
        let config = FlocConfig::builder(2)
            .alpha(0.5)
            .seed(seed)
            .gain_engine(GainEngineKind::Incremental)
            .build();
        let mut snapshots: Vec<FlocCheckpoint> = Vec::new();
        let mut obs = |c: &FlocCheckpoint| snapshots.push(c.clone());
        let full = floc_observed(&m, &config, Some(&mut obs)).unwrap();
        for ckpt in &snapshots {
            let resumed = floc_resume(&m, ckpt, &config, None).unwrap();
            prop_assert_eq!(&resumed.clusters, &full.clusters);
            prop_assert_eq!(&resumed.residues, &full.residues);
            prop_assert_eq!(resumed.avg_residue, full.avg_residue);
            prop_assert_eq!(&resumed.trace, &full.trace);
        }
    }
}

// ---- Observability ---------------------------------------------------------

use dc_floc::{floc_resume_with, floc_with};
use dc_obs::{Event, JsonSink, MemorySink, NullSink, Obs, Sink};
use std::sync::{Arc, Mutex};

/// Collects every `floc.checkpoint` attachment — the dc-obs analogue of
/// the legacy `floc_observed` closure.
#[derive(Clone, Default)]
struct CkptCollector(Arc<Mutex<Vec<FlocCheckpoint>>>);

impl Sink for CkptCollector {
    fn emit(&self, event: &Event<'_>) {
        if event.name != "floc.checkpoint" {
            return;
        }
        if let Some(c) = event
            .attachment
            .and_then(|a| a.downcast_ref::<FlocCheckpoint>())
        {
            self.0.lock().unwrap().push(c.clone());
        }
    }
}

fn f64_bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// The observability determinism contract: mining under ANY sink —
    /// no handle, a disabled handle, a swallowing sink, a JSON renderer,
    /// an in-memory recorder — returns a bit-identical [`FlocResult`].
    #[test]
    fn mining_is_bit_identical_under_any_sink(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
        k in 2usize..4,
    ) {
        let config = FlocConfig::builder(k).alpha(0.5).seed(seed).build();
        let plain = dc_floc::floc(&m, &config).unwrap();
        let memory = MemorySink::new();
        let observed = [
            floc_with(&m, &config, &Obs::null()).unwrap(),
            floc_with(&m, &config, &Obs::new(NullSink)).unwrap(),
            floc_with(&m, &config, &Obs::new(JsonSink::new(std::io::sink()))).unwrap(),
            floc_with(&m, &config, &Obs::new(memory.clone())).unwrap(),
        ];
        for r in &observed {
            prop_assert_eq!(&r.clusters, &plain.clusters);
            prop_assert_eq!(f64_bits(&r.residues), f64_bits(&plain.residues));
            prop_assert_eq!(r.avg_residue.to_bits(), plain.avg_residue.to_bits());
            prop_assert_eq!(r.iterations, plain.iterations);
            prop_assert_eq!(r.stop_reason, plain.stop_reason);
            prop_assert_eq!(&r.trace, &plain.trace);
        }
        // The recorder saw exactly one iteration event per phase-2
        // iteration and exactly one terminal event.
        prop_assert_eq!(memory.named("floc.iteration").len(), plain.iterations);
        prop_assert_eq!(memory.named("floc.done").len(), 1);
    }

    /// The checkpoint stream exposed through event attachments matches the
    /// legacy closure observer snapshot for snapshot, and resuming any of
    /// those snapshots under yet another sink stays bit-identical.
    #[test]
    fn sink_checkpoints_match_closure_observer_and_resume_bit_identically(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
    ) {
        let config = FlocConfig::builder(2).alpha(0.5).seed(seed).build();
        let mut closure_seen: Vec<FlocCheckpoint> = Vec::new();
        let mut obs_fn = |c: &FlocCheckpoint| closure_seen.push(c.clone());
        let full = floc_observed(&m, &config, Some(&mut obs_fn)).unwrap();

        let collector = CkptCollector::default();
        let sunk = floc_with(&m, &config, &Obs::new(collector.clone())).unwrap();
        let sink_seen = collector.0.lock().unwrap().clone();
        prop_assert_eq!(&sink_seen, &closure_seen);
        prop_assert_eq!(&sunk.clusters, &full.clusters);

        for ckpt in &sink_seen {
            let resumed =
                floc_resume_with(&m, ckpt, &config, &Obs::new(MemorySink::new())).unwrap();
            prop_assert_eq!(&resumed.clusters, &full.clusters);
            prop_assert_eq!(resumed.avg_residue.to_bits(), full.avg_residue.to_bits());
            prop_assert_eq!(f64_bits(&resumed.residues), f64_bits(&full.residues));
            prop_assert_eq!(&resumed.trace, &full.trace);
        }
    }
}

// ---- Thread-count determinism ---------------------------------------------

use dc_floc::Parallelism;

proptest! {
    /// Gain evaluation and engine rebuilds fan out across threads, but the
    /// search is bit-identical for every thread count: per-target argmax
    /// scans clusters in index order on whichever worker owns the target
    /// (ties break toward the lowest cluster index), and each cluster's
    /// indexes are an independent build. Pin it for both engines across
    /// threads ∈ {1, 2, 4, 8}.
    #[test]
    fn runs_are_bit_identical_across_thread_counts(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
        k in 2usize..4,
    ) {
        for engine in [GainEngineKind::Exact, GainEngineKind::Incremental] {
            let base = FlocConfig::builder(k)
                .alpha(0.5)
                .seed(seed)
                .gain_engine(engine)
                .threads(1)
                .build();
            let reference = dc_floc::floc(&m, &base).unwrap();
            for threads in [2usize, 4, 8] {
                let mut cfg = base.clone();
                cfg.parallelism = Parallelism::new(threads, 1);
                let r = dc_floc::floc(&m, &cfg).unwrap();
                prop_assert_eq!(&r.clusters, &reference.clusters, "{:?} x{}", engine, threads);
                prop_assert_eq!(f64_bits(&r.residues), f64_bits(&reference.residues));
                prop_assert_eq!(r.avg_residue.to_bits(), reference.avg_residue.to_bits());
                prop_assert_eq!(r.iterations, reference.iterations);
                prop_assert_eq!(&r.trace, &reference.trace);
            }
        }
    }

    /// Checkpoints taken mid-run under one thread count resume bit-identically
    /// under any other: parallelism is runtime plumbing, not search identity,
    /// so a 1-thread run's snapshot finishes to the same answer on 8 threads
    /// (and vice versa), for both gain engines.
    #[test]
    fn resume_is_bit_identical_across_thread_counts(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
    ) {
        for engine in [GainEngineKind::Exact, GainEngineKind::Incremental] {
            let base = FlocConfig::builder(2)
                .alpha(0.5)
                .seed(seed)
                .gain_engine(engine)
                .threads(1)
                .build();
            let mut snapshots: Vec<FlocCheckpoint> = Vec::new();
            let mut obs = |c: &FlocCheckpoint| snapshots.push(c.clone());
            let full = floc_observed(&m, &base, Some(&mut obs)).unwrap();
            for ckpt in &snapshots {
                for threads in [2usize, 4, 8] {
                    let mut cfg = base.clone();
                    cfg.parallelism = Parallelism::new(threads, 1);
                    let resumed = floc_resume(&m, ckpt, &cfg, None).unwrap();
                    prop_assert_eq!(&resumed.clusters, &full.clusters, "{:?} x{}", engine, threads);
                    prop_assert_eq!(f64_bits(&resumed.residues), f64_bits(&full.residues));
                    prop_assert_eq!(resumed.avg_residue.to_bits(), full.avg_residue.to_bits());
                    prop_assert_eq!(resumed.iterations, full.iterations);
                    prop_assert_eq!(&resumed.trace, &full.trace);
                }
            }
        }
    }
}

// ---- f32 storage ------------------------------------------------------------

use dc_matrix::ValueStorage;

proptest! {
    /// An f32-storage matrix drives the exact same search as the f64 matrix
    /// holding the same (narrowed) values: reads widen bit-exactly and all
    /// accumulation stays in f64, so clusters, residues, and traces are
    /// bit-identical — the contract that makes the half-width storage safe
    /// to enable at mining scale.
    #[test]
    fn f32_mining_matches_the_widened_f64_twin(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
        k in 2usize..4,
    ) {
        let narrow = m.with_storage(ValueStorage::F32).unwrap();
        let twin = narrow.with_storage(ValueStorage::F64).unwrap();
        prop_assert_eq!(narrow.fingerprint(), twin.fingerprint());
        for engine in [GainEngineKind::Exact, GainEngineKind::Incremental] {
            let config = FlocConfig::builder(k)
                .alpha(0.5)
                .seed(seed)
                .gain_engine(engine)
                .build();
            let a = dc_floc::floc(&narrow, &config).unwrap();
            let b = dc_floc::floc(&twin, &config).unwrap();
            prop_assert_eq!(&a.clusters, &b.clusters, "{:?}", engine);
            prop_assert_eq!(f64_bits(&a.residues), f64_bits(&b.residues));
            prop_assert_eq!(a.avg_residue.to_bits(), b.avg_residue.to_bits());
            prop_assert_eq!(a.iterations, b.iterations);
            prop_assert_eq!(&a.trace, &b.trace);
        }
    }
}

// ---- Storage backends ----------------------------------------------------
//
// The out-of-core contract: a paged matrix mines BIT-identically to its
// in-memory twin for any block geometry — every chunk size, every cache
// cap, both gain engines, and through checkpoint/resume. Residue folds
// carry the running accumulator into each chunk, so float addition order
// never depends on where block boundaries fall.

/// Writes `m` into a fresh paged directory with the given geometry and
/// reopens nothing — the returned matrix reads through a cache bounded at
/// `cache_blocks` resident blocks.
fn paged_twin_with(
    m: &DataMatrix,
    tag: &str,
    chunk_rows: usize,
    cache_blocks: Option<usize>,
) -> DataMatrix {
    let dir = std::env::temp_dir().join(format!(
        "dc-floc-prop-{tag}-{}-c{chunk_rows}-b{}",
        std::process::id(),
        cache_blocks.map_or(0, |c| c)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let data: Vec<Option<f64>> = (0..m.rows() * m.cols())
        .map(|cell| m.get(cell / m.cols(), cell % m.cols()))
        .collect();
    DataMatrix::builder(m.rows(), m.cols())
        .paged(dir)
        .chunk_rows(chunk_rows)
        .cache_blocks(cache_blocks)
        .from_options(data)
        .unwrap()
}

proptest! {
    /// The acceptance sweep: chunk sizes {1, 7, 64} × cache caps
    /// {1, 4, unbounded} × both gain engines, with a mid-run
    /// checkpoint/resume on the paged matrix thrown in.
    #[test]
    fn paged_mining_is_bit_identical_for_every_geometry(
        m in arb_mining_matrix(),
        seed in 0u64..1_000_000,
    ) {
        for engine in [GainEngineKind::Exact, GainEngineKind::Incremental] {
            let config = FlocConfig::builder(2)
                .alpha(0.5)
                .seed(seed)
                .gain_engine(engine)
                .build();
            let mut snapshots: Vec<FlocCheckpoint> = Vec::new();
            let mut obs = |c: &FlocCheckpoint| snapshots.push(c.clone());
            let full = floc_observed(&m, &config, Some(&mut obs)).unwrap();

            for chunk_rows in [1usize, 7, 64] {
                for cache_blocks in [Some(1), Some(4), None] {
                    let tag = format!("{engine:?}");
                    let paged = paged_twin_with(&m, &tag, chunk_rows, cache_blocks);
                    prop_assert_eq!(paged.fingerprint(), m.fingerprint());

                    let run = floc_observed(&paged, &config, None).unwrap();
                    prop_assert_eq!(
                        &run.clusters, &full.clusters,
                        "chunk={} cache={:?} engine={:?}", chunk_rows, cache_blocks, engine
                    );
                    prop_assert_eq!(f64_bits(&run.residues), f64_bits(&full.residues));
                    prop_assert_eq!(run.avg_residue.to_bits(), full.avg_residue.to_bits());
                    prop_assert_eq!(run.iterations, full.iterations);
                    prop_assert_eq!(&run.trace, &full.trace);

                    // Resume a mid-run snapshot (taken on the MEMORY run)
                    // against the PAGED matrix: the trajectory must splice
                    // seamlessly — checkpoints are backend-agnostic.
                    let ckpt = &snapshots[snapshots.len() / 2];
                    let resumed = floc_resume(&paged, ckpt, &config, None).unwrap();
                    prop_assert_eq!(&resumed.clusters, &full.clusters);
                    prop_assert_eq!(f64_bits(&resumed.residues), f64_bits(&full.residues));
                    prop_assert_eq!(&resumed.trace, &full.trace);

                    if let Some(dir) = paged.paged_dir() {
                        let dir = dir.to_path_buf();
                        drop(paged);
                        let _ = std::fs::remove_dir_all(dir);
                    }
                }
            }
        }
    }
}
