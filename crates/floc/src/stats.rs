//! Incrementally-maintained cluster statistics — FLOC's hot path.
//!
//! Evaluating the gain of `Action(x, c)` requires the residue of cluster `c`
//! with row/column `x` toggled. Recomputing bases from scratch costs
//! `O(|I|·|J|)` *before* the residue scan even starts. [`ClusterState`] keeps
//! per-row and per-column sums and specified-entry counts so that:
//!
//! * all bases are available in `O(|I| + |J|)`;
//! * a *virtual toggle* (what-if evaluation) costs one `O(|I|·|J|)` residue
//!   scan with no allocation (scratch buffers are reused);
//! * an *actual toggle* updates the sufficient statistics in
//!   `O(|I| + |J|)`.
//!
//! Correctness is pinned to the from-scratch reference in
//! [`crate::residue`] by unit and property tests.

use crate::cluster::DeltaCluster;
use crate::residue::ResidueMean;
use dc_matrix::{BitSet, DataMatrix};

/// Reusable scratch buffers for virtual-toggle residue evaluation.
///
/// One instance per FLOC driver; avoids `O(|I| + |J|)` allocations on every
/// one of the `(N+M)·k` gain evaluations per iteration.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Column bases, dense-indexed by matrix column (entries outside the
    /// cluster's columns are never read).
    col_base: Vec<f64>,
    /// Reusable "cluster columns minus the toggled one" set for the
    /// col-toggle scan, so the residue kernel can run with the toggled
    /// column filtered out at word level instead of per-entry.
    cols_minus: Option<dc_matrix::BitSet>,
}

impl Scratch {
    /// Clears and zero-fills the dense column-base buffer.
    fn reset_col_base(&mut self, cols: usize) {
        self.col_base.clear();
        self.col_base.resize(cols, 0.0);
    }
}

/// A cluster plus its sufficient statistics over a fixed matrix.
///
/// Invariants (checked in tests against the reference implementation):
/// * `row_sum[i]` / `row_cnt[i]` are the sum/count of specified entries of
///   row `i` over columns in `cols`, for every `i ∈ rows` (stale otherwise);
/// * `col_sum[j]` / `col_cnt[j]` likewise for `j ∈ cols`;
/// * `total` and `volume` aggregate all specified entries of the submatrix.
#[derive(Debug, Clone)]
pub struct ClusterState {
    /// Participating rows.
    pub rows: BitSet,
    /// Participating columns.
    pub cols: BitSet,
    row_sum: Vec<f64>,
    row_cnt: Vec<u32>,
    col_sum: Vec<f64>,
    col_cnt: Vec<u32>,
    total: f64,
    volume: usize,
}

impl ClusterState {
    /// Builds the state for `cluster` over `matrix`, computing all sums.
    pub fn new(matrix: &DataMatrix, cluster: &DeltaCluster) -> Self {
        let mut s = ClusterState {
            rows: BitSet::new(matrix.rows()),
            cols: cluster.cols.clone(),
            row_sum: vec![0.0; matrix.rows()],
            row_cnt: vec![0; matrix.rows()],
            col_sum: vec![0.0; matrix.cols()],
            col_cnt: vec![0; matrix.cols()],
            total: 0.0,
            volume: 0,
        };
        // Initialize column stats lazily by inserting rows one at a time.
        for r in cluster.rows.iter() {
            s.insert_row(matrix, r);
        }
        s
    }

    /// An empty cluster over the matrix universe.
    pub fn empty(matrix: &DataMatrix) -> Self {
        ClusterState::new(matrix, &DeltaCluster::empty(matrix.rows(), matrix.cols()))
    }

    /// The plain descriptor for this state.
    pub fn to_cluster(&self) -> DeltaCluster {
        DeltaCluster {
            rows: self.rows.clone(),
            cols: self.cols.clone(),
        }
    }

    /// Number of specified entries in the cluster submatrix.
    #[inline]
    pub fn volume(&self) -> usize {
        self.volume
    }

    /// Specified-entry count of row `row` within the cluster's columns.
    /// Only meaningful for participating rows.
    #[inline]
    pub fn row_specified(&self, row: usize) -> u32 {
        self.row_cnt[row]
    }

    /// Specified-entry count of column `col` within the cluster's rows.
    #[inline]
    pub fn col_specified(&self, col: usize) -> u32 {
        self.col_cnt[col]
    }

    /// Sum of specified entries of row `row` within the cluster's columns.
    /// Only meaningful for participating rows.
    #[inline]
    pub fn row_sum(&self, row: usize) -> f64 {
        self.row_sum[row]
    }

    /// Sum of specified entries of column `col` within the cluster's rows.
    #[inline]
    pub fn col_sum(&self, col: usize) -> f64 {
        self.col_sum[col]
    }

    /// Sum of all specified entries in the cluster submatrix.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The cluster base `d_IJ` (0.0 for an empty cluster).
    #[inline]
    pub fn base(&self) -> f64 {
        if self.volume == 0 {
            0.0
        } else {
            self.total / self.volume as f64
        }
    }

    fn insert_row(&mut self, matrix: &DataMatrix, row: usize) {
        debug_assert!(!self.rows.contains(row));
        let mut sum = 0.0;
        let mut cnt = 0u32;
        for (c, v) in matrix.row_specified_in(row, &self.cols) {
            sum += v;
            cnt += 1;
            self.col_sum[c] += v;
            self.col_cnt[c] += 1;
        }
        self.row_sum[row] = sum;
        self.row_cnt[row] = cnt;
        self.total += sum;
        self.volume += cnt as usize;
        self.rows.insert(row);
    }

    fn remove_row(&mut self, matrix: &DataMatrix, row: usize) {
        debug_assert!(self.rows.contains(row));
        for (c, v) in matrix.row_specified_in(row, &self.cols) {
            self.col_sum[c] -= v;
            self.col_cnt[c] -= 1;
        }
        self.total -= self.row_sum[row];
        self.volume -= self.row_cnt[row] as usize;
        self.row_sum[row] = 0.0;
        self.row_cnt[row] = 0;
        self.rows.remove(row);
    }

    fn insert_col(&mut self, matrix: &DataMatrix, col: usize) {
        debug_assert!(!self.cols.contains(col));
        let mut sum = 0.0;
        let mut cnt = 0u32;
        for (r, v) in matrix.col_specified_in(col, &self.rows) {
            sum += v;
            cnt += 1;
            self.row_sum[r] += v;
            self.row_cnt[r] += 1;
        }
        self.col_sum[col] = sum;
        self.col_cnt[col] = cnt;
        self.total += sum;
        self.volume += cnt as usize;
        self.cols.insert(col);
    }

    fn remove_col(&mut self, matrix: &DataMatrix, col: usize) {
        debug_assert!(self.cols.contains(col));
        for (r, v) in matrix.col_specified_in(col, &self.rows) {
            self.row_sum[r] -= v;
            self.row_cnt[r] -= 1;
        }
        self.total -= self.col_sum[col];
        self.volume -= self.col_cnt[col] as usize;
        self.col_sum[col] = 0.0;
        self.col_cnt[col] = 0;
        self.cols.remove(col);
    }

    /// Repairs the sufficient statistics after one matrix cell changed from
    /// `old` to `new` (`None` = unspecified). `O(1)`; a no-op when the cell
    /// lies outside the cluster submatrix. The online miner calls this for
    /// every stream event so cluster residues stay exact on a mutating
    /// matrix without an `O(|I|·|J|)` rebuild.
    ///
    /// The caller must invoke it *after* mutating the matrix, passing the
    /// values the cell held before and after.
    pub fn cell_changed(&mut self, row: usize, col: usize, old: Option<f64>, new: Option<f64>) {
        if !self.rows.contains(row) || !self.cols.contains(col) {
            return;
        }
        if let Some(v) = old {
            self.row_sum[row] -= v;
            self.row_cnt[row] -= 1;
            self.col_sum[col] -= v;
            self.col_cnt[col] -= 1;
            self.total -= v;
            self.volume -= 1;
        }
        if let Some(v) = new {
            self.row_sum[row] += v;
            self.row_cnt[row] += 1;
            self.col_sum[col] += v;
            self.col_cnt[col] += 1;
            self.total += v;
            self.volume += 1;
        }
    }

    /// Toggles membership of `row`: inserts if absent, removes if present.
    /// `O(|J|)`.
    pub fn toggle_row(&mut self, matrix: &DataMatrix, row: usize) {
        if self.rows.contains(row) {
            self.remove_row(matrix, row);
        } else {
            self.insert_row(matrix, row);
        }
    }

    /// Toggles membership of `col`. `O(|I|)`.
    pub fn toggle_col(&mut self, matrix: &DataMatrix, col: usize) {
        if self.cols.contains(col) {
            self.remove_col(matrix, col);
        } else {
            self.insert_col(matrix, col);
        }
    }

    /// Current cluster residue (Definition 3.5) using the maintained sums.
    /// One `O(|I|·|J|)` scan; bases come from the cached statistics.
    pub fn residue(&self, matrix: &DataMatrix, mean: ResidueMean, scratch: &mut Scratch) -> f64 {
        if self.volume == 0 {
            return 0.0;
        }
        let base = self.base();
        scratch.reset_col_base(matrix.cols());
        for c in self.cols.iter() {
            scratch.col_base[c] = if self.col_cnt[c] == 0 {
                base
            } else {
                self.col_sum[c] / self.col_cnt[c] as f64
            };
        }

        // Word-block kernel; bit-identical to folding row_specified_in
        // (non-member lanes accumulate exactly ±0.0).
        let squared = matches!(mean, ResidueMean::Squared);
        let mut sum = 0.0;
        for r in self.rows.iter() {
            let row_base = if self.row_cnt[r] == 0 {
                base
            } else {
                self.row_sum[r] / self.row_cnt[r] as f64
            };
            sum += matrix.row_residue_in(r, &self.cols, row_base, &scratch.col_base, base, squared);
        }
        sum / self.volume as f64
    }

    /// Residue the cluster *would* have if `row`'s membership were toggled.
    /// Does not mutate; one `O(|I′|·|J|)` scan plus `O(|I|+|J|)` setup.
    pub fn residue_if_row_toggled(
        &self,
        matrix: &DataMatrix,
        row: usize,
        mean: ResidueMean,
        scratch: &mut Scratch,
    ) -> f64 {
        let adding = !self.rows.contains(row);
        let sign = if adding { 1.0 } else { -1.0 };
        let values = matrix.row_values(row);

        // Row sum/count of the toggled row over J (word-block kernel).
        let (t_sum, t_cnt) = if adding {
            matrix.row_stats_in(row, &self.cols)
        } else {
            (self.row_sum[row], self.row_cnt[row])
        };

        let new_volume = (self.volume as i64 + sign as i64 * t_cnt as i64) as usize;
        if new_volume == 0 {
            return 0.0;
        }
        let new_total = self.total + sign * t_sum;
        let base = new_total / new_volume as f64;

        // Column bases after the toggle.
        scratch.reset_col_base(matrix.cols());
        for c in self.cols.iter() {
            let (mut s, mut n) = (self.col_sum[c], self.col_cnt[c] as i64);
            if matrix.is_specified(row, c) {
                s += sign * values[c];
                n += sign as i64;
            }
            scratch.col_base[c] = if n <= 0 { base } else { s / n as f64 };
        }

        // Scan rows of the toggled cluster with the word-block residue
        // kernel. Row bases for rows other than `row` are unchanged;
        // `row`'s base comes from (t_sum, t_cnt).
        let squared = matches!(mean, ResidueMean::Squared);
        let mut sum = 0.0;
        for r in self.rows.iter() {
            if r == row {
                continue; // removed (or will be handled below when adding)
            }
            let row_base = if self.row_cnt[r] == 0 {
                base
            } else {
                self.row_sum[r] / self.row_cnt[r] as f64
            };
            sum += matrix.row_residue_in(r, &self.cols, row_base, &scratch.col_base, base, squared);
        }
        if adding {
            let row_base = if t_cnt == 0 {
                base
            } else {
                t_sum / t_cnt as f64
            };
            sum +=
                matrix.row_residue_in(row, &self.cols, row_base, &scratch.col_base, base, squared);
        }
        sum / new_volume as f64
    }

    /// Residue the cluster *would* have if `col`'s membership were toggled.
    pub fn residue_if_col_toggled(
        &self,
        matrix: &DataMatrix,
        col: usize,
        mean: ResidueMean,
        scratch: &mut Scratch,
    ) -> f64 {
        let adding = !self.cols.contains(col);
        let sign = if adding { 1.0 } else { -1.0 };

        // Column sum/count of the toggled column over I (word-block kernel).
        let (t_sum, t_cnt) = if adding {
            matrix.col_stats_in(col, &self.rows)
        } else {
            (self.col_sum[col], self.col_cnt[col])
        };

        let new_volume = (self.volume as i64 + sign as i64 * t_cnt as i64) as usize;
        if new_volume == 0 {
            return 0.0;
        }
        let new_total = self.total + sign * t_sum;
        let base = new_total / new_volume as f64;

        // Bases of the untoggled columns (the toggled one, if added, is
        // handled per row below to keep the scan order stable).
        scratch.reset_col_base(matrix.cols());
        let Scratch {
            col_base,
            cols_minus,
        } = scratch;
        for c in self.cols.iter() {
            if c == col {
                continue;
            }
            col_base[c] = if self.col_cnt[c] == 0 {
                base
            } else {
                self.col_sum[c] / self.col_cnt[c] as f64
            };
        }
        let toggled_base = if t_cnt == 0 {
            base
        } else {
            t_sum / t_cnt as f64
        };

        // Column set each row's kernel scan runs over: when removing, the
        // toggled column is filtered out at word level (same lanes the old
        // per-entry `if c == col` skip selected); when adding it is not a
        // member yet and its cell is appended per row below.
        let cols_for_scan: &dc_matrix::BitSet = if adding {
            &self.cols
        } else {
            let buf = cols_minus.get_or_insert_with(|| self.cols.clone());
            buf.clone_from(&self.cols);
            buf.remove(col);
            buf
        };

        let squared = matches!(mean, ResidueMean::Squared);
        let mut sum = 0.0;
        for r in self.rows.iter() {
            // Row base after the toggle: adjust by the toggled column's cell.
            let (mut rs, mut rn) = (self.row_sum[r], self.row_cnt[r] as i64);
            let r_col_specified = matrix.is_specified(r, col);
            if r_col_specified {
                rs += sign * matrix.value_unchecked(r, col);
                rn += sign as i64;
            }
            let row_base = if rn <= 0 { base } else { rs / rn as f64 };
            sum += matrix.row_residue_in(r, cols_for_scan, row_base, col_base, base, squared);
            if adding && r_col_specified {
                let res = matrix.value_unchecked(r, col) - row_base - toggled_base + base;
                sum += mean.entry_term(res);
            }
        }
        sum / new_volume as f64
    }

    /// Number of occupancy violations (rows below `alpha·|J|` specified plus
    /// columns below `alpha·|I|`).
    pub fn occupancy_violations(&self, alpha: f64) -> usize {
        let nj = self.cols.len();
        let ni = self.rows.len();
        let mut v = 0;
        if nj > 0 {
            for r in self.rows.iter() {
                if (self.row_cnt[r] as f64) < alpha * nj as f64 - 1e-9 {
                    v += 1;
                }
            }
        }
        if ni > 0 {
            for c in self.cols.iter() {
                if (self.col_cnt[c] as f64) < alpha * ni as f64 - 1e-9 {
                    v += 1;
                }
            }
        }
        v
    }

    /// Occupancy violations the cluster would have after toggling `row`.
    pub fn occupancy_violations_if_row_toggled(
        &self,
        matrix: &DataMatrix,
        row: usize,
        alpha: f64,
    ) -> usize {
        let adding = !self.rows.contains(row);
        let ni = if adding {
            self.rows.len() + 1
        } else {
            self.rows.len() - 1
        };
        let nj = self.cols.len();
        let mut v = 0;
        if nj > 0 {
            // Other rows' occupancy is unchanged (same |J|, same counts).
            for r in self.rows.iter() {
                if r != row && (self.row_cnt[r] as f64) < alpha * nj as f64 - 1e-9 {
                    v += 1;
                }
            }
            if adding {
                let cnt = self
                    .cols
                    .iter()
                    .filter(|&c| matrix.is_specified(row, c))
                    .count();
                if (cnt as f64) < alpha * nj as f64 - 1e-9 {
                    v += 1;
                }
            }
        }
        if ni > 0 {
            for c in self.cols.iter() {
                let mut cnt = self.col_cnt[c] as i64;
                if matrix.is_specified(row, c) {
                    cnt += if adding { 1 } else { -1 };
                }
                if (cnt as f64) < alpha * ni as f64 - 1e-9 {
                    v += 1;
                }
            }
        }
        v
    }

    /// Occupancy violations the cluster would have after toggling `col`.
    pub fn occupancy_violations_if_col_toggled(
        &self,
        matrix: &DataMatrix,
        col: usize,
        alpha: f64,
    ) -> usize {
        let adding = !self.cols.contains(col);
        let nj = if adding {
            self.cols.len() + 1
        } else {
            self.cols.len() - 1
        };
        let ni = self.rows.len();
        let mut v = 0;
        if ni > 0 {
            for c in self.cols.iter() {
                if c != col && (self.col_cnt[c] as f64) < alpha * ni as f64 - 1e-9 {
                    v += 1;
                }
            }
            if adding {
                let cnt = self
                    .rows
                    .iter()
                    .filter(|&r| matrix.is_specified(r, col))
                    .count();
                if (cnt as f64) < alpha * ni as f64 - 1e-9 {
                    v += 1;
                }
            }
        }
        if nj > 0 {
            for r in self.rows.iter() {
                let mut cnt = self.row_cnt[r] as i64;
                if matrix.is_specified(r, col) {
                    cnt += if adding { 1 } else { -1 };
                }
                if (cnt as f64) < alpha * nj as f64 - 1e-9 {
                    v += 1;
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residue::{cluster_residue, ResidueMean};

    fn figure4b() -> DataMatrix {
        DataMatrix::builder(3, 3).from_rows(vec![
            401.0, 120.0, 298.0, 318.0, 37.0, 215.0, 322.0, 41.0, 219.0,
        ])
    }

    /// A 4×5 matrix with some missing entries for cross-checks.
    fn mixed() -> DataMatrix {
        DataMatrix::builder(4, 5).from_options(vec![
            Some(1.0),
            Some(2.0),
            None,
            Some(4.0),
            Some(5.0),
            Some(2.0),
            None,
            Some(4.0),
            Some(5.0),
            Some(6.0),
            Some(9.0),
            Some(3.0),
            Some(7.0),
            None,
            Some(1.0),
            None,
            Some(8.0),
            Some(2.0),
            Some(6.0),
            Some(4.0),
        ])
    }

    fn assert_matches_reference(m: &DataMatrix, st: &ClusterState) {
        let c = st.to_cluster();
        let mut scratch = Scratch::default();
        for mean in [ResidueMean::Arithmetic, ResidueMean::Squared] {
            let incr = st.residue(m, mean, &mut scratch);
            let refr = cluster_residue(m, &c, mean);
            assert!(
                (incr - refr).abs() < 1e-9,
                "incremental {incr} != reference {refr} ({mean:?}) for {c:?}"
            );
        }
        assert_eq!(st.volume(), c.volume(m), "volume mismatch for {c:?}");
    }

    #[test]
    fn fresh_state_matches_reference() {
        let m = mixed();
        let c = DeltaCluster::from_indices(4, 5, [0, 2, 3], [1, 2, 4]);
        let st = ClusterState::new(&m, &c);
        assert_matches_reference(&m, &st);
    }

    #[test]
    fn figure4b_state_has_zero_residue_and_paper_bases() {
        let m = figure4b();
        let st = ClusterState::new(&m, &DeltaCluster::from_indices(3, 3, 0..3, 0..3));
        assert!((st.base() - 219.0).abs() < 1e-9);
        let mut s = Scratch::default();
        assert!(st.residue(&m, ResidueMean::Arithmetic, &mut s).abs() < 1e-9);
    }

    #[test]
    fn toggles_keep_state_consistent() {
        let m = mixed();
        let mut st = ClusterState::new(&m, &DeltaCluster::from_indices(4, 5, [0, 1], [0, 1, 2]));
        // A deterministic walk of toggles, checking invariants at each step.
        let moves: Vec<(bool, usize)> = vec![
            (true, 2),  // add row 2
            (false, 3), // add col 3
            (true, 0),  // remove row 0
            (false, 1), // remove col 1
            (true, 0),  // re-add row 0
            (false, 4), // add col 4
            (true, 3),  // add row 3
            (false, 0), // remove col 0
        ];
        for (is_row, idx) in moves {
            if is_row {
                st.toggle_row(&m, idx);
            } else {
                st.toggle_col(&m, idx);
            }
            assert_matches_reference(&m, &st);
        }
    }

    #[test]
    fn virtual_row_toggle_matches_actual() {
        let m = mixed();
        let st = ClusterState::new(&m, &DeltaCluster::from_indices(4, 5, [0, 2], [0, 2, 4]));
        let mut scratch = Scratch::default();
        for row in 0..4 {
            for mean in [ResidueMean::Arithmetic, ResidueMean::Squared] {
                let virt = st.residue_if_row_toggled(&m, row, mean, &mut scratch);
                let mut actual = st.clone();
                actual.toggle_row(&m, row);
                let real = actual.residue(&m, mean, &mut scratch);
                assert!(
                    (virt - real).abs() < 1e-9,
                    "row {row} {mean:?}: virtual {virt} != actual {real}"
                );
            }
        }
    }

    #[test]
    fn virtual_col_toggle_matches_actual() {
        let m = mixed();
        let st = ClusterState::new(&m, &DeltaCluster::from_indices(4, 5, [1, 2, 3], [1, 3]));
        let mut scratch = Scratch::default();
        for col in 0..5 {
            for mean in [ResidueMean::Arithmetic, ResidueMean::Squared] {
                let virt = st.residue_if_col_toggled(&m, col, mean, &mut scratch);
                let mut actual = st.clone();
                actual.toggle_col(&m, col);
                let real = actual.residue(&m, mean, &mut scratch);
                assert!(
                    (virt - real).abs() < 1e-9,
                    "col {col} {mean:?}: virtual {virt} != actual {real}"
                );
            }
        }
    }

    #[test]
    fn empty_cluster_residue_is_zero() {
        let m = mixed();
        let st = ClusterState::empty(&m);
        let mut s = Scratch::default();
        assert_eq!(st.residue(&m, ResidueMean::Arithmetic, &mut s), 0.0);
        assert_eq!(st.volume(), 0);
        assert_eq!(st.base(), 0.0);
    }

    #[test]
    fn removing_last_row_yields_zero_volume() {
        let m = mixed();
        let mut st = ClusterState::new(&m, &DeltaCluster::from_indices(4, 5, [1], [0, 2]));
        let mut s = Scratch::default();
        let virt = st.residue_if_row_toggled(&m, 1, ResidueMean::Arithmetic, &mut s);
        assert_eq!(virt, 0.0);
        st.toggle_row(&m, 1);
        assert_eq!(st.volume(), 0);
    }

    #[test]
    fn occupancy_violation_counts() {
        // Figure 3(a): not a δ-cluster at α = 0.6.
        let m = DataMatrix::builder(3, 4).from_options(vec![
            Some(1.0),
            None,
            Some(3.0),
            None,
            None,
            Some(4.0),
            None,
            Some(5.0),
            Some(3.0),
            None,
            Some(4.0),
            None,
        ]);
        let st = ClusterState::new(&m, &DeltaCluster::from_indices(3, 4, 0..3, 0..4));
        assert!(st.occupancy_violations(0.6) > 0);
        assert_eq!(st.occupancy_violations(0.0), 0);
    }

    #[test]
    fn virtual_occupancy_matches_actual() {
        let m = mixed();
        let st = ClusterState::new(
            &m,
            &DeltaCluster::from_indices(4, 5, [0, 1, 2], [0, 1, 3, 4]),
        );
        let alpha = 0.7;
        for row in 0..4 {
            let virt = st.occupancy_violations_if_row_toggled(&m, row, alpha);
            let mut actual = st.clone();
            actual.toggle_row(&m, row);
            assert_eq!(virt, actual.occupancy_violations(alpha), "row {row}");
        }
        for col in 0..5 {
            let virt = st.occupancy_violations_if_col_toggled(&m, col, alpha);
            let mut actual = st.clone();
            actual.toggle_col(&m, col);
            assert_eq!(virt, actual.occupancy_violations(alpha), "col {col}");
        }
    }

    #[test]
    fn cell_changed_matches_a_rebuild() {
        let mut m = mixed();
        let cluster = DeltaCluster::from_indices(4, 5, [0, 2, 3], [1, 2, 4]);
        let mut st = ClusterState::new(&m, &cluster);

        // Every kind of single-cell mutation: update, delete, append —
        // inside and outside the cluster submatrix.
        let edits: Vec<(usize, usize, Option<f64>)> = vec![
            (0, 1, Some(9.5)), // update inside
            (2, 2, None),      // delete inside
            (0, 2, Some(3.0)), // append inside (was unspecified)
            (1, 1, Some(7.0)), // update outside (row 1 not in cluster)
            (2, 0, None),      // delete outside (col 0 not in cluster)
            (3, 4, Some(1.0)), // update inside
        ];
        for (r, c, new) in edits {
            let old = match new {
                Some(v) => {
                    let old = m.get(r, c);
                    m.set(r, c, v);
                    old
                }
                None => m.unset(r, c),
            };
            st.cell_changed(r, c, old, new);
            let rebuilt = ClusterState::new(&m, &st.to_cluster());
            assert_eq!(st.volume(), rebuilt.volume(), "volume after ({r},{c})");
            assert!((st.total() - rebuilt.total()).abs() < 1e-9);
            assert_matches_reference(&m, &st);
        }
    }

    #[test]
    fn per_dimension_specified_counts() {
        let m = mixed();
        let st = ClusterState::new(&m, &DeltaCluster::from_indices(4, 5, [0, 1], [1, 2]));
        // Row 0 has col1=2.0 specified, col2 missing → 1. Row 1: col1 missing, col2=4.0 → 1.
        assert_eq!(st.row_specified(0), 1);
        assert_eq!(st.row_specified(1), 1);
        assert_eq!(st.col_specified(1), 1);
        assert_eq!(st.col_specified(2), 1);
        assert_eq!(st.volume(), 2);
    }
}
