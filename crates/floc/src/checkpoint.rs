//! Checkpointable FLOC state.
//!
//! A [`FlocCheckpoint`] captures everything phase 2 needs to continue a run
//! bit-identically: the configuration, the incumbent best clustering, the
//! iteration counter, the RNG state, and the trace so far. The driver emits
//! one to its observer after every completed iteration (see
//! [`crate::algorithm::floc_observed`]); persistence (the `.dck` artifact)
//! lives in dc-serve so this crate stays IO-free.
//!
//! Bit-identical resume relies on the driver keeping its in-memory cluster
//! statistics *canonical* at every safe boundary: after each improving
//! iteration the incumbent states are rebuilt from their cluster
//! descriptors exactly the way a resume rebuilds them, so the
//! floating-point accumulation order — and therefore every later decision —
//! is the same whether or not the process restarted in between.

use crate::cluster::DeltaCluster;
use crate::config::FlocConfig;
use crate::history::{IterationTrace, StopReason};
use dc_matrix::DataMatrix;
use serde::{Deserialize, Serialize};

/// A complete snapshot of a FLOC run at an iteration boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlocCheckpoint {
    /// The configuration the run was started with. Runtime-only fields
    /// (interrupt wiring, time budget, the parallelism plan) are not part
    /// of the search identity and may differ on resume.
    pub config: FlocConfig,
    /// Shape of the matrix the run was mining.
    pub matrix_rows: usize,
    /// Columns of the matrix the run was mining.
    pub matrix_cols: usize,
    /// Specified-entry count of the matrix.
    pub matrix_specified: usize,
    /// Content fingerprint of the matrix ([`DataMatrix::fingerprint`]).
    pub matrix_fingerprint: u64,
    /// Completed phase-2 iterations.
    pub iterations: usize,
    /// Raw xoshiro256++ state at the next iteration boundary. Always
    /// exactly 4 words (a `Vec` because the vendored serde shim has no
    /// array deserialization).
    pub rng_state: Vec<u64>,
    /// The incumbent best clustering.
    pub clusters: Vec<DeltaCluster>,
    /// Residue of each incumbent cluster (canonical recomputation).
    pub residues: Vec<f64>,
    /// Average residue of the incumbent clustering.
    pub avg_residue: f64,
    /// Per-iteration trace up to this point.
    pub trace: Vec<IterationTrace>,
    /// `Some(reason)` when the run terminated (converged or hit the
    /// iteration cap) — resuming such a checkpoint returns immediately.
    /// `None` for resumable snapshots, including budget/interrupt stops.
    pub stop: Option<StopReason>,
}

/// Why a checkpoint cannot be resumed.
#[derive(Debug, Clone, PartialEq)]
pub enum ResumeError {
    /// The matrix handed to resume is not the one the checkpoint came from.
    MatrixMismatch {
        /// Which property differed (`"rows"`, `"cols"`, `"specified"`,
        /// `"fingerprint"`).
        what: &'static str,
        /// Value recorded in the checkpoint.
        expected: u64,
        /// Value of the matrix given to resume.
        found: u64,
    },
    /// The resume configuration changes the search itself (not just
    /// runtime plumbing like threads or budgets).
    ConfigMismatch {
        /// Name of the differing field.
        field: &'static str,
    },
    /// The stored RNG state is not a valid xoshiro256++ state.
    BadRngState,
    /// The checkpoint's own fields contradict each other.
    Inconsistent(String),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::MatrixMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint was taken on a different matrix: {what} {found} (checkpoint has {expected})"
            ),
            ResumeError::ConfigMismatch { field } => write!(
                f,
                "resume config changes the search (field `{field}` differs from the checkpoint)"
            ),
            ResumeError::BadRngState => f.write_str("checkpoint RNG state is invalid"),
            ResumeError::Inconsistent(msg) => write!(f, "checkpoint is inconsistent: {msg}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Returns the first algorithm-relevant field on which `a` and `b` differ,
/// ignoring runtime plumbing (`parallelism`, `time_budget`, `interrupt`)
/// that may legitimately change across a resume.
pub(crate) fn search_config_mismatch(a: &FlocConfig, b: &FlocConfig) -> Option<&'static str> {
    if a.k != b.k {
        return Some("k");
    }
    if a.alpha != b.alpha {
        return Some("alpha");
    }
    if a.mean != b.mean {
        return Some("mean");
    }
    if a.ordering != b.ordering {
        return Some("ordering");
    }
    if a.seeding != b.seeding {
        return Some("seeding");
    }
    if a.constraints != b.constraints {
        return Some("constraints");
    }
    if a.max_iterations != b.max_iterations {
        return Some("max_iterations");
    }
    if a.min_improvement != b.min_improvement {
        return Some("min_improvement");
    }
    if a.min_rows != b.min_rows {
        return Some("min_rows");
    }
    if a.min_cols != b.min_cols {
        return Some("min_cols");
    }
    if a.seed != b.seed {
        return Some("seed");
    }
    if a.refresh_gains != b.refresh_gains {
        return Some("refresh_gains");
    }
    if a.gain_engine != b.gain_engine {
        return Some("gain_engine");
    }
    None
}

impl FlocCheckpoint {
    /// Checks that this checkpoint can continue on `matrix` under `config`.
    ///
    /// # Errors
    /// Fails when the matrix differs from the one the checkpoint was taken
    /// on, when `config` changes a search-relevant field, or when the
    /// checkpoint's own fields are contradictory (wrong cluster count,
    /// out-of-range indices, malformed RNG state).
    pub fn validate(&self, matrix: &DataMatrix, config: &FlocConfig) -> Result<(), ResumeError> {
        let checks: [(&'static str, u64, u64); 4] = [
            ("rows", self.matrix_rows as u64, matrix.rows() as u64),
            ("cols", self.matrix_cols as u64, matrix.cols() as u64),
            (
                "specified",
                self.matrix_specified as u64,
                matrix.specified_count() as u64,
            ),
            ("fingerprint", self.matrix_fingerprint, matrix.fingerprint()),
        ];
        for (what, expected, found) in checks {
            if expected != found {
                return Err(ResumeError::MatrixMismatch {
                    what,
                    expected,
                    found,
                });
            }
        }
        if let Some(field) = search_config_mismatch(&self.config, config) {
            return Err(ResumeError::ConfigMismatch { field });
        }
        if self.rng_state.len() != 4 || self.rng_state.iter().all(|&w| w == 0) {
            return Err(ResumeError::BadRngState);
        }
        if self.clusters.len() != self.config.k {
            return Err(ResumeError::Inconsistent(format!(
                "{} clusters for k = {}",
                self.clusters.len(),
                self.config.k
            )));
        }
        if self.residues.len() != self.clusters.len() {
            return Err(ResumeError::Inconsistent(format!(
                "{} residues for {} clusters",
                self.residues.len(),
                self.clusters.len()
            )));
        }
        if self.iterations > self.config.max_iterations {
            return Err(ResumeError::Inconsistent(format!(
                "{} iterations exceed max_iterations {}",
                self.iterations, self.config.max_iterations
            )));
        }
        for (i, c) in self.clusters.iter().enumerate() {
            let row_oob = c.rows.iter().any(|r| r >= self.matrix_rows);
            let col_oob = c.cols.iter().any(|j| j >= self.matrix_cols);
            if row_oob || col_oob {
                return Err(ResumeError::Inconsistent(format!(
                    "cluster {i} references indices outside the {}x{} matrix",
                    self.matrix_rows, self.matrix_cols
                )));
            }
        }
        Ok(())
    }

    /// Re-anchors this checkpoint to a *mutated* matrix of the same shape —
    /// the online miner's warm start. Stream events change cell values, so
    /// the stored matrix identity and residues no longer hold; `rebase`
    /// recomputes both canonically on `matrix`, keeps the incumbent
    /// clusters and the RNG state (the search identity carries across the
    /// data change), and resets the iteration counter, the trace, and any
    /// terminal stop so a bounded refinement round can run from here via
    /// [`crate::floc_resume`].
    ///
    /// Deterministic: two processes that rebase the same checkpoint on the
    /// same matrix produce identical checkpoints — the property the
    /// miner's bit-identical crash recovery rests on.
    ///
    /// # Panics
    /// Panics if `matrix` has a different shape than the checkpoint's
    /// matrix (the online universe is fixed up front).
    pub fn rebase(&self, matrix: &DataMatrix) -> FlocCheckpoint {
        assert_eq!(
            (self.matrix_rows, self.matrix_cols),
            (matrix.rows(), matrix.cols()),
            "rebase requires the same matrix universe"
        );
        let residues: Vec<f64> = self
            .clusters
            .iter()
            .map(|c| crate::residue::cluster_residue(matrix, c, self.config.mean))
            .collect();
        let avg_residue = if residues.is_empty() {
            0.0
        } else {
            residues.iter().sum::<f64>() / residues.len() as f64
        };
        FlocCheckpoint {
            config: self.config.clone(),
            matrix_rows: matrix.rows(),
            matrix_cols: matrix.cols(),
            matrix_specified: matrix.specified_count(),
            matrix_fingerprint: matrix.fingerprint(),
            iterations: 0,
            rng_state: self.rng_state.clone(),
            clusters: self.clusters.clone(),
            residues,
            avg_residue,
            trace: Vec::new(),
            stop: None,
        }
    }

    /// The stored RNG state as a fixed-size array.
    ///
    /// # Panics
    /// Panics if the checkpoint was not validated first (wrong word count).
    pub(crate) fn rng_words(&self) -> [u64; 4] {
        let mut s = [0u64; 4];
        s.copy_from_slice(&self.rng_state);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::StopReason;

    fn sample_matrix() -> DataMatrix {
        DataMatrix::builder(3, 3).from_rows((0..9).map(|x| x as f64).collect())
    }

    fn sample_checkpoint(matrix: &DataMatrix) -> FlocCheckpoint {
        let config = FlocConfig::builder(1).build();
        FlocCheckpoint {
            config,
            matrix_rows: matrix.rows(),
            matrix_cols: matrix.cols(),
            matrix_specified: matrix.specified_count(),
            matrix_fingerprint: matrix.fingerprint(),
            iterations: 2,
            rng_state: vec![1, 2, 3, 4],
            clusters: vec![DeltaCluster::from_indices(3, 3, [0, 1], [0, 1])],
            residues: vec![0.5],
            avg_residue: 0.5,
            trace: vec![],
            stop: None,
        }
    }

    #[test]
    fn valid_checkpoint_passes() {
        let m = sample_matrix();
        let ckpt = sample_checkpoint(&m);
        ckpt.validate(&m, &ckpt.config).unwrap();
    }

    #[test]
    fn matrix_changes_are_detected() {
        let m = sample_matrix();
        let ckpt = sample_checkpoint(&m);
        let mut other = m.clone();
        other.set(0, 0, 99.0);
        let err = ckpt.validate(&other, &ckpt.config).unwrap_err();
        assert!(matches!(
            err,
            ResumeError::MatrixMismatch {
                what: "fingerprint",
                ..
            }
        ));
        let small = DataMatrix::builder(2, 3).from_rows((0..6).map(|x| x as f64).collect());
        let err = ckpt.validate(&small, &ckpt.config).unwrap_err();
        assert!(matches!(
            err,
            ResumeError::MatrixMismatch { what: "rows", .. }
        ));
    }

    #[test]
    fn search_config_changes_are_rejected_but_runtime_changes_pass() {
        let m = sample_matrix();
        let ckpt = sample_checkpoint(&m);
        let reseeded = FlocConfig::builder(1).seed(99).build();
        let err = ckpt.validate(&m, &reseeded).unwrap_err();
        assert!(matches!(err, ResumeError::ConfigMismatch { field: "seed" }));
        // parallelism / time_budget / interrupt are runtime plumbing.
        let mut runtime = ckpt.config.clone();
        runtime.parallelism = crate::config::Parallelism::new(8, 4);
        runtime.time_budget = Some(std::time::Duration::from_secs(1));
        ckpt.validate(&m, &runtime).unwrap();
    }

    #[test]
    fn malformed_internals_are_rejected() {
        let m = sample_matrix();

        let mut bad = sample_checkpoint(&m);
        bad.rng_state = vec![1, 2, 3];
        assert!(matches!(
            bad.validate(&m, &bad.config).unwrap_err(),
            ResumeError::BadRngState
        ));

        let mut bad = sample_checkpoint(&m);
        bad.rng_state = vec![0, 0, 0, 0];
        assert!(matches!(
            bad.validate(&m, &bad.config).unwrap_err(),
            ResumeError::BadRngState
        ));

        let mut bad = sample_checkpoint(&m);
        bad.residues = vec![0.5, 0.1];
        assert!(matches!(
            bad.validate(&m, &bad.config).unwrap_err(),
            ResumeError::Inconsistent(_)
        ));

        let mut bad = sample_checkpoint(&m);
        bad.clusters = vec![DeltaCluster::from_indices(5, 5, [4], [4])];
        assert!(matches!(
            bad.validate(&m, &bad.config).unwrap_err(),
            ResumeError::Inconsistent(_)
        ));
    }

    #[test]
    fn rebase_reanchors_to_a_mutated_matrix() {
        let m = sample_matrix();
        let mut ckpt = sample_checkpoint(&m);
        ckpt.stop = Some(StopReason::Converged);
        let mut mutated = m.clone();
        mutated.set(0, 0, 42.0);
        mutated.unset(2, 2);

        // Stale identity: the original no longer validates on the mutated
        // matrix; the rebased one does, resumably.
        assert!(ckpt.validate(&mutated, &ckpt.config).is_err());
        let rebased = ckpt.rebase(&mutated);
        rebased.validate(&mutated, &rebased.config).unwrap();
        assert_eq!(rebased.iterations, 0);
        assert_eq!(rebased.stop, None);
        assert!(rebased.trace.is_empty());
        assert_eq!(rebased.rng_state, ckpt.rng_state);
        assert_eq!(rebased.clusters, ckpt.clusters);
        assert_eq!(rebased.matrix_fingerprint, mutated.fingerprint());
        // Residues are recomputed canonically on the new data.
        let expected =
            crate::residue::cluster_residue(&mutated, &ckpt.clusters[0], ckpt.config.mean);
        assert_eq!(rebased.residues, vec![expected]);
        assert_eq!(rebased.avg_residue, expected);

        // Determinism: rebasing twice gives identical checkpoints.
        assert_eq!(ckpt.rebase(&mutated), rebased);
    }

    #[test]
    #[should_panic(expected = "same matrix universe")]
    fn rebase_rejects_a_different_shape() {
        let m = sample_matrix();
        let ckpt = sample_checkpoint(&m);
        let other = DataMatrix::builder(4, 3).build();
        let _ = ckpt.rebase(&other);
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let m = sample_matrix();
        let mut ckpt = sample_checkpoint(&m);
        ckpt.stop = Some(StopReason::Converged);
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: FlocCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ckpt);
    }
}
