//! FLOC configuration (builder pattern).

use crate::constraints::Constraint;
use crate::gain_engine::GainEngineKind;
use crate::ordering::Ordering;
use crate::residue::ResidueMean;
use crate::seeding::Seeding;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Duration;

/// Cooperative cancellation handle carried inside [`FlocConfig`].
///
/// Wraps an optional `Arc<AtomicBool>` that external code (a ctrl-c
/// handler, a supervising thread) may set at any time; FLOC polls it at
/// safe boundaries and stops with `StopReason::Interrupted`. The wrapper
/// exists so `FlocConfig` can keep its `PartialEq`/serde derives: two
/// configs are considered equal regardless of their interrupt wiring, and
/// the flag serializes as `null` (a deserialized config is never wired to
/// a live handler).
#[derive(Clone, Default)]
pub struct InterruptFlag(Option<Arc<AtomicBool>>);

impl InterruptFlag {
    /// A flag wired to `handle`; FLOC stops soon after it becomes `true`.
    pub fn new(handle: Arc<AtomicBool>) -> Self {
        InterruptFlag(Some(handle))
    }

    /// True when a handler is wired in (even if not yet raised).
    pub fn is_wired(&self) -> bool {
        self.0.is_some()
    }

    /// True when the flag has been raised. Unwired flags never fire.
    pub fn is_raised(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|f| f.load(AtomicOrdering::Relaxed))
    }
}

impl std::fmt::Debug for InterruptFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("InterruptFlag(unwired)"),
            Some(flag) => write!(
                f,
                "InterruptFlag(raised: {})",
                flag.load(AtomicOrdering::Relaxed)
            ),
        }
    }
}

impl PartialEq for InterruptFlag {
    fn eq(&self, _: &Self) -> bool {
        // Interrupt wiring is runtime plumbing, not configuration identity:
        // the same logical config may or may not have a handler attached.
        true
    }
}

impl Serialize for InterruptFlag {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for InterruptFlag {
    fn from_value(_: &serde::Value) -> Result<Self, serde::Error> {
        Ok(InterruptFlag::default())
    }
}

/// The unified parallel-execution plan for a FLOC run.
///
/// Two orthogonal axes share one thread budget:
///
/// - `threads` — the total OS-thread budget. Within a single run it is the
///   gain-evaluation and engine-rebuild worker count (1 = serial). Gains
///   within an iteration are independent and each cluster's indexes are an
///   independent build, so both parallelize cleanly without changing the
///   search trajectory.
/// - `restarts` — independent seeded runs raced by
///   [`floc_parallel`](crate::floc_parallel) (seeds `seed .. seed+restarts`),
///   keeping the best result. 1 means a single run.
///
/// **Budget split.** When restarts race, `threads` is *divided*, never
/// multiplied: `floc_parallel` staffs `workers = threads.clamp(1,
/// restarts)` restart workers and hands each restart `threads / workers`
/// (at least 1) within-run threads, so at most `threads` threads ever run
/// hot simultaneously. With `threads = 8, restarts = 2`, two restarts race
/// with 4 evaluation threads each; with `threads = 4, restarts = 16`, four
/// restarts race serially within themselves. (Earlier versions pinned
/// every racing restart to a serial evaluator, stranding budget when
/// `threads > restarts`.)
///
/// Historically `threads` lived on `FlocConfig` while restart workers were
/// an ad-hoc argument of `floc_restarts`; both now live here. Like the
/// time budget and interrupt wiring, parallelism is runtime plumbing, not
/// search identity: checkpoints ignore it on resume, and any plan yields
/// bit-identical results for the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Gain-evaluation worker threads within one run (≥ 1).
    pub threads: usize,
    /// Independent seeded restarts to race (≥ 1).
    pub restarts: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

impl Parallelism {
    /// One thread, one restart: fully sequential.
    pub fn serial() -> Self {
        Parallelism {
            threads: 1,
            restarts: 1,
        }
    }

    /// A plan with both axes set; zeros are clamped to 1.
    pub fn new(threads: usize, restarts: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
            restarts: restarts.max(1),
        }
    }
}

/// Full configuration of a FLOC run.
///
/// Construct with [`FlocConfig::builder`]; every field has a sensible
/// default except `k` (the number of clusters), which is mandatory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlocConfig {
    /// Number of δ-clusters to discover.
    pub k: usize,
    /// Occupancy threshold `α` (Definition 3.1). `0.0` disables occupancy
    /// enforcement (appropriate for fully specified matrices); the paper
    /// uses `0.6` for MovieLens.
    pub alpha: f64,
    /// How per-entry residues aggregate (arithmetic `|r|` by default).
    pub mean: ResidueMean,
    /// Action ordering strategy (§5.2); weighted random by default.
    pub ordering: Ordering,
    /// Phase-1 seeding strategy.
    pub seeding: Seeding,
    /// Optional §4.3 constraints, enforced by action blocking.
    pub constraints: Vec<Constraint>,
    /// Hard cap on phase-2 iterations (the paper observes ~O(10) needed).
    pub max_iterations: usize,
    /// Minimum *relative* residue improvement an iteration must achieve to
    /// count as progress (`0.0` = any strict improvement, the paper's
    /// literal criterion). The default `1e-3` stops the long tail of
    /// negligible refinements and matches the paper's observed iteration
    /// counts.
    pub min_improvement: f64,
    /// Minimum rows a cluster may shrink to (guards the trivial residue-0
    /// degenerate clusters; see DESIGN.md).
    pub min_rows: usize,
    /// Minimum columns a cluster may shrink to.
    pub min_cols: usize,
    /// RNG seed: seeding and action ordering are fully deterministic given
    /// this value.
    pub seed: u64,
    /// The parallel-execution plan: gain-evaluation threads within a run
    /// and independent restarts across runs (see [`Parallelism`]).
    pub parallelism: Parallelism,
    /// Which gain engine evaluates candidate actions (see
    /// [`GainEngineKind`]). `Auto` (the default) picks the exact scanner
    /// for small matrices and the incremental sorted-index engine for
    /// large ones. Part of the search identity: the engines agree to
    /// floating-point accuracy, not bit-for-bit, so checkpoints refuse to
    /// resume under a different engine.
    pub gain_engine: GainEngineKind,
    /// When true (default), the best action of each row/column is
    /// *re-decided against the current clustering* at perform time — the
    /// §4.1 "examined sequentially ... decided and performed" reading.
    /// When false, the actions pre-decided at iteration start are performed
    /// verbatim (the literal Figure 5 flowchart reading). Refreshing costs
    /// a second gain evaluation per target but converges in far fewer
    /// iterations.
    pub refresh_gains: bool,
    /// Optional wall-clock budget. When an iteration starts after the
    /// budget has elapsed, FLOC stops and returns the best clustering so
    /// far with `StopReason::Budget`. `None` (the default) means unlimited.
    pub time_budget: Option<Duration>,
    /// Cooperative cancellation flag (see [`InterruptFlag`]). Polled at the
    /// top of each iteration and between actions in the perform loop.
    pub interrupt: InterruptFlag,
}

impl FlocConfig {
    /// Starts building a configuration for `k` clusters.
    pub fn builder(k: usize) -> FlocConfigBuilder {
        FlocConfigBuilder {
            config: FlocConfig::with_k(k),
        }
    }

    fn with_k(k: usize) -> Self {
        FlocConfig {
            k,
            alpha: 0.0,
            mean: ResidueMean::Arithmetic,
            ordering: Ordering::Weighted,
            seeding: Seeding::Bernoulli { p: 0.1 },
            constraints: Vec::new(),
            max_iterations: 60,
            min_improvement: 1e-3,
            min_rows: 2,
            min_cols: 2,
            seed: 0,
            parallelism: Parallelism::serial(),
            gain_engine: GainEngineKind::Auto,
            refresh_gains: true,
            time_budget: None,
            interrupt: InterruptFlag::default(),
        }
    }
}

/// Builder for [`FlocConfig`].
#[derive(Debug, Clone)]
pub struct FlocConfigBuilder {
    config: FlocConfig,
}

impl FlocConfigBuilder {
    /// Sets the occupancy threshold `α ∈ [0, 1]`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Sets the residue aggregation mean.
    pub fn mean(mut self, mean: ResidueMean) -> Self {
        self.config.mean = mean;
        self
    }

    /// Sets the action-ordering strategy.
    pub fn ordering(mut self, ordering: Ordering) -> Self {
        self.config.ordering = ordering;
        self
    }

    /// Sets the seeding strategy.
    pub fn seeding(mut self, seeding: Seeding) -> Self {
        self.config.seeding = seeding;
        self
    }

    /// Adds a constraint (may be called repeatedly).
    pub fn constraint(mut self, c: Constraint) -> Self {
        self.config.constraints.push(c);
        self
    }

    /// Caps the number of phase-2 iterations.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.config.max_iterations = n;
        self
    }

    /// Sets the minimum relative improvement per iteration (see
    /// [`FlocConfig::min_improvement`]).
    pub fn min_improvement(mut self, x: f64) -> Self {
        self.config.min_improvement = x;
        self
    }

    /// Sets the minimum cluster dimensions.
    pub fn min_dims(mut self, rows: usize, cols: usize) -> Self {
        self.config.min_rows = rows;
        self.config.min_cols = cols;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the number of gain-evaluation threads (shorthand for adjusting
    /// [`Parallelism::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.parallelism.threads = threads.max(1);
        self
    }

    /// Sets the number of independent seeded restarts
    /// [`floc_parallel`](crate::floc_parallel) races (shorthand for
    /// adjusting [`Parallelism::restarts`]).
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.config.parallelism.restarts = restarts.max(1);
        self
    }

    /// Sets the whole parallel-execution plan at once; zeros are clamped
    /// to 1.
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.config.parallelism = Parallelism::new(p.threads, p.restarts);
        self
    }

    /// Chooses the gain engine (exact scanner, incremental sorted-index,
    /// or size-based auto selection — the default).
    pub fn gain_engine(mut self, engine: GainEngineKind) -> Self {
        self.config.gain_engine = engine;
        self
    }

    /// Sets a wall-clock budget; the run stops with `StopReason::Budget`
    /// once it elapses, returning the best clustering found so far.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.config.time_budget = Some(budget);
        self
    }

    /// Wires a cooperative interrupt flag (e.g. from a ctrl-c handler);
    /// raising it makes the run stop with `StopReason::Interrupted`.
    pub fn interrupt(mut self, handle: Arc<AtomicBool>) -> Self {
        self.config.interrupt = InterruptFlag::new(handle);
        self
    }

    /// Chooses between perform-time gain refresh (true, default) and
    /// verbatim performance of the pre-decided actions (false); see
    /// [`FlocConfig::refresh_gains`].
    pub fn refresh_gains(mut self, refresh: bool) -> Self {
        self.config.refresh_gains = refresh;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    /// Panics if `k == 0`, `alpha ∉ [0, 1]`, `max_iterations == 0`, or a
    /// minimum dimension is zero — these are programming errors, not data
    /// errors.
    pub fn build(self) -> FlocConfig {
        let c = &self.config;
        assert!(c.k > 0, "k must be positive");
        assert!(
            (0.0..=1.0).contains(&c.alpha),
            "alpha must be in [0, 1], got {}",
            c.alpha
        );
        assert!(c.max_iterations > 0, "max_iterations must be positive");
        assert!(
            (0.0..1.0).contains(&c.min_improvement),
            "min_improvement must be in [0, 1), got {}",
            c.min_improvement
        );
        assert!(
            c.min_rows > 0 && c.min_cols > 0,
            "minimum dimensions must be positive"
        );
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = FlocConfig::builder(5).build();
        assert_eq!(c.k, 5);
        assert_eq!(c.alpha, 0.0);
        assert_eq!(c.mean, ResidueMean::Arithmetic);
        assert_eq!(c.ordering, Ordering::Weighted);
        assert_eq!(c.min_rows, 2);
        assert_eq!(c.min_cols, 2);
        assert_eq!(c.parallelism, Parallelism::serial());
        assert!(c.constraints.is_empty());
    }

    #[test]
    fn builder_sets_all_fields() {
        let c = FlocConfig::builder(3)
            .alpha(0.6)
            .mean(ResidueMean::Squared)
            .ordering(Ordering::Fixed)
            .seeding(Seeding::TargetSize { rows: 4, cols: 4 })
            .constraint(Constraint::MinVolume { cells: 10 })
            .constraint(Constraint::RowCoverage)
            .max_iterations(9)
            .min_dims(3, 4)
            .seed(99)
            .threads(4)
            .build();
        assert_eq!(c.alpha, 0.6);
        assert_eq!(c.mean, ResidueMean::Squared);
        assert_eq!(c.ordering, Ordering::Fixed);
        assert_eq!(c.seeding, Seeding::TargetSize { rows: 4, cols: 4 });
        assert_eq!(c.constraints.len(), 2);
        assert_eq!(c.max_iterations, 9);
        assert_eq!(c.min_rows, 3);
        assert_eq!(c.min_cols, 4);
        assert_eq!(c.seed, 99);
        assert_eq!(c.parallelism.threads, 4);
    }

    #[test]
    fn threads_zero_is_clamped_to_one() {
        let c = FlocConfig::builder(1).threads(0).build();
        assert_eq!(c.parallelism.threads, 1);
    }

    #[test]
    fn parallelism_surface_is_unified() {
        // The two shorthands and the whole-plan setter agree, and zeros
        // are clamped on every path.
        let a = FlocConfig::builder(1).threads(4).restarts(8).build();
        let b = FlocConfig::builder(1)
            .parallelism(Parallelism::new(4, 8))
            .build();
        assert_eq!(a.parallelism, b.parallelism);
        assert_eq!(
            a.parallelism,
            Parallelism {
                threads: 4,
                restarts: 8
            }
        );
        let clamped = FlocConfig::builder(1)
            .parallelism(Parallelism {
                threads: 0,
                restarts: 0,
            })
            .build();
        assert_eq!(clamped.parallelism, Parallelism::serial());
        // Parallelism is runtime plumbing: it round-trips through serde
        // but never affects whether two configs describe the same search.
        let json = serde_json::to_string(&a).unwrap();
        let back: FlocConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.parallelism, a.parallelism);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = FlocConfig::builder(0).build();
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn alpha_out_of_range_panics() {
        let _ = FlocConfig::builder(1).alpha(1.5).build();
    }

    #[test]
    fn config_serializes() {
        let c = FlocConfig::builder(2).alpha(0.5).build();
        let json = serde_json::to_string(&c).unwrap();
        let back: FlocConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn interrupt_flag_reflects_its_handle() {
        let unwired = InterruptFlag::default();
        assert!(!unwired.is_wired());
        assert!(!unwired.is_raised());

        let handle = Arc::new(AtomicBool::new(false));
        let c = FlocConfig::builder(1)
            .interrupt(Arc::clone(&handle))
            .time_budget(Duration::from_secs(3))
            .build();
        assert!(c.interrupt.is_wired());
        assert!(!c.interrupt.is_raised());
        handle.store(true, AtomicOrdering::SeqCst);
        assert!(c.interrupt.is_raised());
        assert_eq!(c.time_budget, Some(Duration::from_secs(3)));
    }

    #[test]
    fn interrupt_wiring_does_not_affect_config_identity() {
        // Equality, serialization, and round-tripping ignore the runtime
        // interrupt handle: a deserialized config is always unwired.
        let wired = FlocConfig::builder(2)
            .interrupt(Arc::new(AtomicBool::new(true)))
            .build();
        let plain = FlocConfig::builder(2).build();
        assert_eq!(wired, plain);
        let json = serde_json::to_string(&wired).unwrap();
        let back: FlocConfig = serde_json::from_str(&json).unwrap();
        assert!(!back.interrupt.is_wired());
        assert_eq!(back, wired);
    }
}
