//! Amplification (multiplicative) coherence mining.
//!
//! §3 of the paper: two forms of coherence matter in practice — *shifting*
//! (`value ≈ bias + effect`) and *amplification* (`value ≈ bias × effect`).
//! Amplification reduces to shifting by taking logarithms, so FLOC only
//! ever mines the shifting model. This module packages that reduction:
//! validate positivity, log-transform, run FLOC, and report residues in
//! both log space (where the additive model holds) and as the equivalent
//! multiplicative *ratio spread* in the original space.

use crate::algorithm::{floc, FlocError};
use crate::cluster::DeltaCluster;
use crate::config::FlocConfig;
use crate::history::FlocResult;
use crate::residue::ResidueMean;
use dc_matrix::transform::{log_transform, TransformError};
use dc_matrix::DataMatrix;

/// Errors from amplification-coherence mining.
#[derive(Debug)]
pub enum AmplificationError {
    /// The matrix contains non-positive entries, whose logarithm is
    /// undefined — amplification coherence is only meaningful for positive
    /// data.
    Transform(TransformError),
    /// FLOC failed on the transformed matrix.
    Floc(FlocError),
}

impl std::fmt::Display for AmplificationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmplificationError::Transform(e) => write!(f, "log transform failed: {e}"),
            AmplificationError::Floc(e) => write!(f, "floc failed: {e}"),
        }
    }
}

impl std::error::Error for AmplificationError {}

/// The result of an amplification-coherence run.
#[derive(Debug, Clone)]
pub struct AmplificationResult {
    /// The FLOC result *in log space* (cluster indices refer to the
    /// original matrix's rows/columns, which the transform preserves).
    pub log_result: FlocResult,
    /// Per-cluster multiplicative spread: `exp(residue)` — a perfect
    /// amplification cluster has spread 1.0; spread 1.05 means entries
    /// deviate from the multiplicative model by ~5 % on (geometric)
    /// average.
    pub ratio_spreads: Vec<f64>,
}

/// Mines amplification-coherent δ-clusters from a positive-valued matrix.
pub fn floc_amplification(
    matrix: &DataMatrix,
    config: &FlocConfig,
) -> Result<AmplificationResult, AmplificationError> {
    let logged = log_transform(matrix).map_err(AmplificationError::Transform)?;
    let log_result = floc(&logged, config).map_err(AmplificationError::Floc)?;
    let ratio_spreads = log_result.residues.iter().map(|r| r.exp()).collect();
    Ok(AmplificationResult {
        log_result,
        ratio_spreads,
    })
}

/// The amplification residue of a cluster: arithmetic residue of the
/// log-transformed submatrix (0 for a perfect multiplicative cluster).
///
/// # Errors
/// Fails if any specified entry of the matrix is non-positive.
pub fn amplification_residue(
    matrix: &DataMatrix,
    cluster: &DeltaCluster,
) -> Result<f64, AmplificationError> {
    let logged = log_transform(matrix).map_err(AmplificationError::Transform)?;
    Ok(crate::residue::cluster_residue(
        &logged,
        cluster,
        ResidueMean::Arithmetic,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeding::Seeding;

    /// A perfectly multiplicative matrix: `value = row_factor × col_factor`.
    fn multiplicative() -> DataMatrix {
        let rows = [1.0, 2.0, 10.0];
        let cols = [3.0, 5.0, 7.0, 11.0];
        let mut m = DataMatrix::builder(3, 4).build();
        for (r, &rf) in rows.iter().enumerate() {
            for (c, &cf) in cols.iter().enumerate() {
                m.set(r, c, rf * cf);
            }
        }
        m
    }

    #[test]
    fn multiplicative_cluster_has_zero_amplification_residue() {
        let m = multiplicative();
        let cluster = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        // In the *original* space the additive residue is large…
        let additive = crate::residue::cluster_residue(&m, &cluster, ResidueMean::Arithmetic);
        assert!(
            additive > 1.0,
            "additive residue {additive} unexpectedly small"
        );
        // …but the amplification residue vanishes.
        let amp = amplification_residue(&m, &cluster).unwrap();
        assert!(amp < 1e-9, "amplification residue {amp}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index drives both the block test and the factor lookup
    fn floc_amplification_finds_the_multiplicative_block() {
        // Embed a multiplicative 4×4 block in positive noise.
        let mut m = DataMatrix::builder(12, 8).build();
        let rf = [2.0, 3.0, 4.5, 6.0];
        let cf = [1.5, 2.5, 5.0, 8.0];
        let mut seedv = 1u64;
        let mut pseudo = move || {
            // Tiny deterministic LCG noise in (1, 100).
            seedv = seedv.wrapping_mul(6364136223846793005).wrapping_add(1);
            1.0 + (seedv >> 33) as f64 % 99.0
        };
        for r in 0..12 {
            for c in 0..8 {
                if r < 4 && c < 4 {
                    m.set(r, c, rf[r] * cf[c]);
                } else {
                    m.set(r, c, pseudo());
                }
            }
        }
        // Randomized local search: take the best of a few restarts.
        let best = (0..8)
            .map(|seed| {
                let config = FlocConfig::builder(1)
                    .seeding(Seeding::TargetSize { rows: 4, cols: 4 })
                    .seed(seed)
                    .build();
                floc_amplification(&m, &config).unwrap()
            })
            .min_by(|a, b| a.ratio_spreads[0].total_cmp(&b.ratio_spreads[0]))
            .unwrap();
        assert_eq!(best.ratio_spreads.len(), 1);
        // The discovered cluster should be strongly multiplicative.
        assert!(
            best.ratio_spreads[0] < 1.3,
            "ratio spread {} too wide",
            best.ratio_spreads[0]
        );
        assert_eq!(
            best.log_result.clusters.len(),
            1,
            "indices refer to original rows/cols"
        );
    }

    #[test]
    fn non_positive_entries_are_rejected() {
        let mut m = multiplicative();
        m.set(0, 0, 0.0);
        let cluster = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        let err = amplification_residue(&m, &cluster).unwrap_err();
        assert!(matches!(err, AmplificationError::Transform(_)));
        assert!(err.to_string().contains("log transform"));

        let config = FlocConfig::builder(1).build();
        let err = floc_amplification(&m, &config).unwrap_err();
        assert!(matches!(err, AmplificationError::Transform(_)));
    }

    #[test]
    fn ratio_spread_is_exp_of_log_residue() {
        let m = multiplicative();
        let config = FlocConfig::builder(1)
            .seeding(Seeding::TargetSize { rows: 3, cols: 3 })
            .seed(1)
            .build();
        let result = floc_amplification(&m, &config).unwrap();
        for (r, s) in result.log_result.residues.iter().zip(&result.ratio_spreads) {
            assert!((r.exp() - s).abs() < 1e-12);
        }
    }
}
