//! Predicting missing entries from δ-clusters.
//!
//! The paper's introduction motivates δ-clusters with collaborative
//! filtering: once a coherent viewer × movie cluster is known, a missing
//! rating is predicted from the cluster's bias structure. In a perfect
//! δ-cluster every entry satisfies `d_ij = d_iJ + d_Ij − d_IJ`
//! (§3), so that expression *is* the prediction for an unspecified cell.

use crate::cluster::DeltaCluster;
use crate::residue;
use crate::residue::Bases;
use dc_matrix::DataMatrix;

/// Why a prediction could not be made. Distinguishes "the model simply does
/// not cover this cell" (expected at query time — callers fall back to a
/// global baseline) from "the covering cluster is unusable" (a modelling
/// defect worth surfacing: FLOC emitted a cluster with no specified entries
/// to derive bases from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictError {
    /// No cluster in the model contains both the row and the column.
    NotCovered,
    /// Every covering cluster is degenerate: its submatrix holds no
    /// specified entries, so the bases `d_iJ`, `d_Ij`, `d_IJ` are undefined.
    DegenerateCluster,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::NotCovered => {
                write!(f, "no cluster covers the requested cell")
            }
            PredictError::DegenerateCluster => {
                write!(
                    f,
                    "covering cluster has no specified entries to derive bases from"
                )
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// Prediction `d_iJ + d_Ij − d_IJ` evaluated from precomputed [`Bases`],
/// without touching the data matrix. This is the O(log |I| + log |J|) fast
/// path used by query serving, where bases are computed once per cluster at
/// model-load time.
pub fn predict_from_bases(b: &Bases, row: usize, col: usize) -> Result<f64, PredictError> {
    let ri = b
        .rows
        .binary_search(&row)
        .map_err(|_| PredictError::NotCovered)?;
    let ci = b
        .cols
        .binary_search(&col)
        .map_err(|_| PredictError::NotCovered)?;
    if b.volume == 0 {
        return Err(PredictError::DegenerateCluster);
    }
    Ok(b.row_bases[ri] + b.col_bases[ci] - b.cluster_base)
}

/// Predicts the value of cell `(row, col)` from a single cluster containing
/// both indices: `d_iJ + d_Ij − d_IJ`.
pub fn try_predict_from_cluster(
    matrix: &DataMatrix,
    cluster: &DeltaCluster,
    row: usize,
    col: usize,
) -> Result<f64, PredictError> {
    if !cluster.rows.contains(row) || !cluster.cols.contains(col) {
        return Err(PredictError::NotCovered);
    }
    predict_from_bases(&residue::bases(matrix, cluster), row, col)
}

/// Option-returning convenience wrapper around [`try_predict_from_cluster`]
/// (the original API; loses the reason for failure).
pub fn predict_from_cluster(
    matrix: &DataMatrix,
    cluster: &DeltaCluster,
    row: usize,
    col: usize,
) -> Option<f64> {
    try_predict_from_cluster(matrix, cluster, row, col).ok()
}

/// Predicts `(row, col)` from a set of clusters: the mean of the
/// predictions of every usable cluster containing the cell.
///
/// Degenerate covering clusters are skipped as long as at least one usable
/// cluster covers the cell; [`PredictError::DegenerateCluster`] is returned
/// only when the cell is covered *exclusively* by degenerate clusters.
pub fn try_predict(
    matrix: &DataMatrix,
    clusters: &[DeltaCluster],
    row: usize,
    col: usize,
) -> Result<f64, PredictError> {
    let mut sum = 0.0;
    let mut n = 0usize;
    let mut saw_degenerate = false;
    for c in clusters {
        match try_predict_from_cluster(matrix, c, row, col) {
            Ok(p) => {
                sum += p;
                n += 1;
            }
            Err(PredictError::DegenerateCluster) => saw_degenerate = true,
            Err(PredictError::NotCovered) => {}
        }
    }
    if n > 0 {
        Ok(sum / n as f64)
    } else if saw_degenerate {
        Err(PredictError::DegenerateCluster)
    } else {
        Err(PredictError::NotCovered)
    }
}

/// Option-returning convenience wrapper around [`try_predict`].
pub fn predict(
    matrix: &DataMatrix,
    clusters: &[DeltaCluster],
    row: usize,
    col: usize,
) -> Option<f64> {
    try_predict(matrix, clusters, row, col).ok()
}

/// Mean absolute error of predictions over the *specified* entries of the
/// cluster (leave-the-value-in evaluation: how well the additive model fits
/// the observed data). Equals the cluster's arithmetic residue.
pub fn fit_error(matrix: &DataMatrix, cluster: &DeltaCluster) -> f64 {
    residue::cluster_residue(matrix, cluster, residue::ResidueMean::Arithmetic)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The intro's movie example: viewers rank movies (1,2,3,5), (2,3,4,6),
    /// (3,4,5,7) — perfectly coherent with offsets 1 and 2.
    fn viewers() -> DataMatrix {
        DataMatrix::builder(3, 4).from_rows(vec![
            1.0, 2.0, 3.0, 5.0, 2.0, 3.0, 4.0, 6.0, 3.0, 4.0, 5.0, 7.0,
        ])
    }

    #[test]
    fn intro_example_predicts_third_viewer() {
        // Viewers 1 and 2 rank a new movie 2 and 3; the model predicts the
        // third viewer ranks it 4 (the paper's §1 worked example).
        let mut m = DataMatrix::builder(3, 5).build();
        for (r, ratings) in [
            [1.0, 2.0, 3.0, 5.0].iter().enumerate().collect::<Vec<_>>(),
            [2.0, 3.0, 4.0, 6.0].iter().enumerate().collect(),
            [3.0, 4.0, 5.0, 7.0].iter().enumerate().collect(),
        ]
        .into_iter()
        .enumerate()
        {
            for (c, &v) in ratings {
                m.set(r, c, v);
            }
        }
        m.set(0, 4, 2.0); // viewer 1 ranks the new movie 2
        m.set(1, 4, 3.0); // viewer 2 ranks it 3
        let cluster = DeltaCluster::from_indices(3, 5, 0..3, 0..5);
        let pred = predict_from_cluster(&m, &cluster, 2, 4).unwrap();
        // With a missing entry, the bases themselves shift slightly (they
        // average over 14 instead of 15 cells), so the prediction is close
        // to — not exactly — the idealized 4 of the paper's narrative.
        assert!((pred - 4.0).abs() < 0.5, "predicted {pred}, expected ≈4");
    }

    #[test]
    fn perfect_cluster_reproduces_existing_entries() {
        let m = viewers();
        let cluster = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        for r in 0..3 {
            for c in 0..4 {
                let pred = predict_from_cluster(&m, &cluster, r, c).unwrap();
                assert!(
                    (pred - m.get(r, c).unwrap()).abs() < 1e-9,
                    "({r},{c}): predicted {pred}"
                );
            }
        }
        assert!(fit_error(&m, &cluster) < 1e-9);
    }

    #[test]
    fn cell_outside_cluster_is_none() {
        let m = viewers();
        let cluster = DeltaCluster::from_indices(3, 4, [0, 1], [0, 1]);
        assert_eq!(predict_from_cluster(&m, &cluster, 2, 0), None);
        assert_eq!(predict_from_cluster(&m, &cluster, 0, 3), None);
    }

    #[test]
    fn multi_cluster_prediction_averages() {
        let m = viewers();
        let a = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        let b = DeltaCluster::from_indices(3, 4, 0..2, 0..2);
        // Both clusters are perfect, so the average equals the exact value.
        let p = predict(&m, &[a, b], 1, 1).unwrap();
        assert!((p - 3.0).abs() < 1e-9);
    }

    #[test]
    fn uncovered_cell_is_none() {
        let m = viewers();
        let a = DeltaCluster::from_indices(3, 4, [0], [0]);
        assert_eq!(predict(&m, &[a], 2, 3), None);
        assert_eq!(predict(&m, &[], 0, 0), None);
    }

    #[test]
    fn empty_cluster_prediction_is_none() {
        let mut m = DataMatrix::builder(2, 2).build();
        m.set(0, 0, 1.0);
        let c = DeltaCluster::from_indices(2, 2, [1], [1]); // covers only missing cells
        assert_eq!(predict_from_cluster(&m, &c, 1, 1), None);
    }

    #[test]
    fn errors_distinguish_coverage_from_degeneracy() {
        let mut m = DataMatrix::builder(3, 3).build();
        m.set(0, 0, 1.0);
        let degenerate = DeltaCluster::from_indices(3, 3, [1, 2], [1, 2]);
        // Cell outside the cluster: a coverage miss, not a model defect.
        assert_eq!(
            try_predict_from_cluster(&m, &degenerate, 0, 0),
            Err(PredictError::NotCovered)
        );
        // Cell inside, but the cluster holds no specified entries.
        assert_eq!(
            try_predict_from_cluster(&m, &degenerate, 1, 1),
            Err(PredictError::DegenerateCluster)
        );
    }

    #[test]
    fn multi_cluster_errors_prefer_degenerate_over_not_covered() {
        let mut m = DataMatrix::builder(3, 3).build();
        m.set(0, 0, 1.0);
        let unrelated = DeltaCluster::from_indices(3, 3, [0], [0]);
        let degenerate = DeltaCluster::from_indices(3, 3, [1, 2], [1, 2]);
        let clusters = vec![unrelated, degenerate];
        assert_eq!(
            try_predict(&m, &clusters, 1, 1),
            Err(PredictError::DegenerateCluster)
        );
        assert_eq!(try_predict(&m, &[], 1, 1), Err(PredictError::NotCovered));
    }

    #[test]
    fn degenerate_clusters_are_skipped_when_a_usable_one_covers() {
        let m = viewers();
        let good = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        let mut holed = m.clone();
        holed.unset(0, 0);
        holed.unset(0, 1);
        holed.unset(1, 0);
        holed.unset(1, 1);
        let degenerate = DeltaCluster::from_indices(3, 4, [0, 1], [0, 1]);
        // In `holed`, `degenerate` covers (0,0) but has volume 0; `good`
        // still covers it, so the average uses only the usable cluster.
        let p = try_predict(&holed, &[degenerate, good], 0, 0).unwrap();
        assert!(p.is_finite());
    }

    #[test]
    fn predict_from_bases_matches_matrix_path() {
        let m = viewers();
        let cluster = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        let b = crate::residue::bases(&m, &cluster);
        for r in 0..3 {
            for c in 0..4 {
                let fast = predict_from_bases(&b, r, c).unwrap();
                let slow = try_predict_from_cluster(&m, &cluster, r, c).unwrap();
                assert!((fast - slow).abs() < 1e-12);
            }
        }
        assert_eq!(predict_from_bases(&b, 0, 9), Err(PredictError::NotCovered));
    }
}
