//! Predicting missing entries from δ-clusters.
//!
//! The paper's introduction motivates δ-clusters with collaborative
//! filtering: once a coherent viewer × movie cluster is known, a missing
//! rating is predicted from the cluster's bias structure. In a perfect
//! δ-cluster every entry satisfies `d_ij = d_iJ + d_Ij − d_IJ`
//! (§3), so that expression *is* the prediction for an unspecified cell.

use crate::cluster::DeltaCluster;
use crate::residue;
use dc_matrix::DataMatrix;

/// Predicts the value of cell `(row, col)` from a single cluster containing
/// both indices: `d_iJ + d_Ij − d_IJ`.
///
/// Returns `None` if the cluster does not contain the row and column, or if
/// the cluster has no specified entries to derive bases from.
pub fn predict_from_cluster(
    matrix: &DataMatrix,
    cluster: &DeltaCluster,
    row: usize,
    col: usize,
) -> Option<f64> {
    if !cluster.rows.contains(row) || !cluster.cols.contains(col) {
        return None;
    }
    let b = residue::bases(matrix, cluster);
    if b.volume == 0 {
        return None;
    }
    let ri = b.rows.binary_search(&row).ok()?;
    let ci = b.cols.binary_search(&col).ok()?;
    Some(b.row_bases[ri] + b.col_bases[ci] - b.cluster_base)
}

/// Predicts `(row, col)` from a set of clusters: the mean of the
/// predictions of every cluster containing the cell.
///
/// Returns `None` when no cluster covers the cell.
pub fn predict(
    matrix: &DataMatrix,
    clusters: &[DeltaCluster],
    row: usize,
    col: usize,
) -> Option<f64> {
    let preds: Vec<f64> = clusters
        .iter()
        .filter_map(|c| predict_from_cluster(matrix, c, row, col))
        .collect();
    if preds.is_empty() {
        None
    } else {
        Some(preds.iter().sum::<f64>() / preds.len() as f64)
    }
}

/// Mean absolute error of predictions over the *specified* entries of the
/// cluster (leave-the-value-in evaluation: how well the additive model fits
/// the observed data). Equals the cluster's arithmetic residue.
pub fn fit_error(matrix: &DataMatrix, cluster: &DeltaCluster) -> f64 {
    residue::cluster_residue(matrix, cluster, residue::ResidueMean::Arithmetic)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The intro's movie example: viewers rank movies (1,2,3,5), (2,3,4,6),
    /// (3,4,5,7) — perfectly coherent with offsets 1 and 2.
    fn viewers() -> DataMatrix {
        DataMatrix::from_rows(
            3,
            4,
            vec![1.0, 2.0, 3.0, 5.0, 2.0, 3.0, 4.0, 6.0, 3.0, 4.0, 5.0, 7.0],
        )
    }

    #[test]
    fn intro_example_predicts_third_viewer() {
        // Viewers 1 and 2 rank a new movie 2 and 3; the model predicts the
        // third viewer ranks it 4 (the paper's §1 worked example).
        let mut m = DataMatrix::new(3, 5);
        for (r, ratings) in [
            [1.0, 2.0, 3.0, 5.0].iter().enumerate().collect::<Vec<_>>(),
            [2.0, 3.0, 4.0, 6.0].iter().enumerate().collect(),
            [3.0, 4.0, 5.0, 7.0].iter().enumerate().collect(),
        ]
        .into_iter()
        .enumerate()
        {
            for (c, &v) in ratings {
                m.set(r, c, v);
            }
        }
        m.set(0, 4, 2.0); // viewer 1 ranks the new movie 2
        m.set(1, 4, 3.0); // viewer 2 ranks it 3
        let cluster = DeltaCluster::from_indices(3, 5, 0..3, 0..5);
        let pred = predict_from_cluster(&m, &cluster, 2, 4).unwrap();
        // With a missing entry, the bases themselves shift slightly (they
        // average over 14 instead of 15 cells), so the prediction is close
        // to — not exactly — the idealized 4 of the paper's narrative.
        assert!((pred - 4.0).abs() < 0.5, "predicted {pred}, expected ≈4");
    }

    #[test]
    fn perfect_cluster_reproduces_existing_entries() {
        let m = viewers();
        let cluster = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        for r in 0..3 {
            for c in 0..4 {
                let pred = predict_from_cluster(&m, &cluster, r, c).unwrap();
                assert!(
                    (pred - m.get(r, c).unwrap()).abs() < 1e-9,
                    "({r},{c}): predicted {pred}"
                );
            }
        }
        assert!(fit_error(&m, &cluster) < 1e-9);
    }

    #[test]
    fn cell_outside_cluster_is_none() {
        let m = viewers();
        let cluster = DeltaCluster::from_indices(3, 4, [0, 1], [0, 1]);
        assert_eq!(predict_from_cluster(&m, &cluster, 2, 0), None);
        assert_eq!(predict_from_cluster(&m, &cluster, 0, 3), None);
    }

    #[test]
    fn multi_cluster_prediction_averages() {
        let m = viewers();
        let a = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        let b = DeltaCluster::from_indices(3, 4, 0..2, 0..2);
        // Both clusters are perfect, so the average equals the exact value.
        let p = predict(&m, &[a, b], 1, 1).unwrap();
        assert!((p - 3.0).abs() < 1e-9);
    }

    #[test]
    fn uncovered_cell_is_none() {
        let m = viewers();
        let a = DeltaCluster::from_indices(3, 4, [0], [0]);
        assert_eq!(predict(&m, &[a], 2, 3), None);
        assert_eq!(predict(&m, &[], 0, 0), None);
    }

    #[test]
    fn empty_cluster_prediction_is_none() {
        let mut m = DataMatrix::new(2, 2);
        m.set(0, 0, 1.0);
        let c = DeltaCluster::from_indices(2, 2, [1], [1]); // covers only missing cells
        assert_eq!(predict_from_cluster(&m, &c, 1, 1), None);
    }
}
