//! The residue metric (Definitions 3.3–3.5) — reference implementation.
//!
//! For a δ-cluster `(I, J)` over matrix `D`:
//!
//! * the **base** of object `i` is `d_iJ` = mean of the specified entries of
//!   row `i` within `J`;
//! * the **base** of attribute `j` is `d_Ij` = mean of the specified entries
//!   of column `j` within `I`;
//! * the **base** of the cluster is `d_IJ` = mean over all specified entries;
//! * the **residue** of a specified entry is
//!   `r_ij = d_ij − d_iJ − d_Ij + d_IJ` (0 for missing entries);
//! * the **residue of the cluster** is the mean of `|r_ij|` over the volume
//!   (arithmetic mean — the paper's default), or optionally the mean of
//!   `r_ij²` (the Cheng & Church mean-squared residue).
//!
//! This module computes everything from scratch in `O(|I|·|J|)`. The FLOC
//! driver uses the incrementally-maintained [`crate::stats::ClusterState`]
//! instead; these functions are the oracle the incremental code is tested
//! against.

use crate::cluster::DeltaCluster;
use dc_matrix::DataMatrix;
use serde::{Deserialize, Serialize};

/// How per-entry residues are aggregated into the cluster residue
/// (Definition 3.5 allows arithmetic, geometric, or square means; the paper
/// uses arithmetic, Cheng & Church use squared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ResidueMean {
    /// Mean of `|r_ij|` — the paper's choice.
    #[default]
    Arithmetic,
    /// Mean of `r_ij²` — the Cheng & Church mean-squared residue.
    Squared,
}

impl ResidueMean {
    /// The contribution of a single entry residue to the aggregate sum.
    #[inline]
    pub fn entry_term(self, r: f64) -> f64 {
        match self {
            ResidueMean::Arithmetic => r.abs(),
            ResidueMean::Squared => r * r,
        }
    }
}

/// The bases of a δ-cluster: row bases, column bases and the cluster base,
/// each computed over specified entries only.
#[derive(Debug, Clone, PartialEq)]
pub struct Bases {
    /// `d_iJ` for each participating row, aligned with `rows` below.
    pub row_bases: Vec<f64>,
    /// Participating rows in ascending order.
    pub rows: Vec<usize>,
    /// `d_Ij` for each participating column, aligned with `cols` below.
    pub col_bases: Vec<f64>,
    /// Participating columns in ascending order.
    pub cols: Vec<usize>,
    /// `d_IJ`, the cluster base.
    pub cluster_base: f64,
    /// Number of specified entries.
    pub volume: usize,
}

/// Computes the bases of `cluster` within `matrix` from scratch.
///
/// Rows (or columns) with no specified entry inside the cluster get the
/// cluster base as their base, which makes their (nonexistent) residue
/// contributions vanish.
pub fn bases(matrix: &DataMatrix, cluster: &DeltaCluster) -> Bases {
    let rows: Vec<usize> = cluster.rows.iter().collect();
    let cols: Vec<usize> = cluster.cols.iter().collect();
    // Dense accumulators (indexed by matrix row/column) so the specified-entry
    // iterator can feed them without a compact-index lookup per cell.
    let mut row_sum = vec![0.0; cluster.rows.capacity()];
    let mut row_cnt = vec![0usize; cluster.rows.capacity()];
    let mut col_sum = vec![0.0; cluster.cols.capacity()];
    let mut col_cnt = vec![0usize; cluster.cols.capacity()];
    let mut total = 0.0;
    let mut volume = 0usize;

    for &r in &rows {
        for (c, v) in matrix.row_specified_in(r, &cluster.cols) {
            row_sum[r] += v;
            row_cnt[r] += 1;
            col_sum[c] += v;
            col_cnt[c] += 1;
            total += v;
            volume += 1;
        }
    }

    let cluster_base = if volume == 0 {
        0.0
    } else {
        total / volume as f64
    };
    let row_bases = rows
        .iter()
        .map(|&r| {
            if row_cnt[r] == 0 {
                cluster_base
            } else {
                row_sum[r] / row_cnt[r] as f64
            }
        })
        .collect();
    let col_bases = cols
        .iter()
        .map(|&c| {
            if col_cnt[c] == 0 {
                cluster_base
            } else {
                col_sum[c] / col_cnt[c] as f64
            }
        })
        .collect();

    Bases {
        row_bases,
        rows,
        col_bases,
        cols,
        cluster_base,
        volume,
    }
}

/// Residue of a single entry (Definition 3.4): `d_ij − d_iJ − d_Ij + d_IJ`
/// for specified entries, 0 otherwise. `row`/`col` must participate in the
/// cluster that produced `b`.
pub fn entry_residue(matrix: &DataMatrix, b: &Bases, row: usize, col: usize) -> f64 {
    match matrix.get(row, col) {
        None => 0.0,
        Some(v) => {
            let ri = b.rows.binary_search(&row).expect("row not in cluster");
            let ci = b.cols.binary_search(&col).expect("col not in cluster");
            v - b.row_bases[ri] - b.col_bases[ci] + b.cluster_base
        }
    }
}

/// Residue of a δ-cluster (Definition 3.5), computed from scratch.
///
/// Returns 0.0 for clusters with no specified entries (including empty row
/// or column sets) — the degenerate case the FLOC driver guards against.
pub fn cluster_residue(matrix: &DataMatrix, cluster: &DeltaCluster, mean: ResidueMean) -> f64 {
    let b = bases(matrix, cluster);
    if b.volume == 0 {
        return 0.0;
    }
    let mut col_base = vec![0.0; cluster.cols.capacity()];
    for (ci, &c) in b.cols.iter().enumerate() {
        col_base[c] = b.col_bases[ci];
    }
    let mut sum = 0.0;
    for (ri, &r) in b.rows.iter().enumerate() {
        for (c, v) in matrix.row_specified_in(r, &cluster.cols) {
            let res = v - b.row_bases[ri] - col_base[c] + b.cluster_base;
            sum += mean.entry_term(res);
        }
    }
    sum / b.volume as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 4(b): the perfect 3×3 δ-cluster drawn from the yeast excerpt.
    /// Rows: VPS8, EFB1, CYS3; columns: CH1I, CH1D, CH2B.
    pub(crate) fn figure4b() -> DataMatrix {
        DataMatrix::builder(3, 3).from_rows(vec![
            401.0, 120.0, 298.0, // VPS8
            318.0, 37.0, 215.0, // EFB1
            322.0, 41.0, 219.0, // CYS3
        ])
    }

    #[test]
    fn figure4b_bases_match_paper() {
        let m = figure4b();
        let c = DeltaCluster::from_indices(3, 3, 0..3, 0..3);
        let b = bases(&m, &c);
        // d_VPS8,J = 273, d_EFB1,J = 190, d_CYS3,J = 194
        assert!((b.row_bases[0] - 273.0).abs() < 1e-9);
        assert!((b.row_bases[1] - 190.0).abs() < 1e-9);
        assert!((b.row_bases[2] - 194.0).abs() < 1e-9);
        // d_I,CH1I = 347, d_I,CH1D = 66, d_I,CH2B = 244
        assert!((b.col_bases[0] - 347.0).abs() < 1e-9);
        assert!((b.col_bases[1] - 66.0).abs() < 1e-9);
        assert!((b.col_bases[2] - 244.0).abs() < 1e-9);
        // d_IJ = 219
        assert!((b.cluster_base - 219.0).abs() < 1e-9);
        assert_eq!(b.volume, 9);
    }

    #[test]
    fn figure4b_is_a_perfect_cluster() {
        let m = figure4b();
        let c = DeltaCluster::from_indices(3, 3, 0..3, 0..3);
        let b = bases(&m, &c);
        // The paper: d_VPS8,CH1I = 273 − 347 + 219 = 401, residue 0 everywhere.
        for r in 0..3 {
            for col in 0..3 {
                assert!(entry_residue(&m, &b, r, col).abs() < 1e-9);
            }
        }
        assert!(cluster_residue(&m, &c, ResidueMean::Arithmetic).abs() < 1e-9);
        assert!(cluster_residue(&m, &c, ResidueMean::Squared).abs() < 1e-9);
    }

    #[test]
    fn perturbed_entry_raises_residue() {
        let mut m = figure4b();
        m.set(0, 0, 401.0 + 9.0);
        let c = DeltaCluster::from_indices(3, 3, 0..3, 0..3);
        let r = cluster_residue(&m, &c, ResidueMean::Arithmetic);
        assert!(
            r > 0.0,
            "perturbation must produce positive residue, got {r}"
        );
    }

    #[test]
    fn residue_shift_invariance() {
        // Adding a constant to a whole row (object bias) must not change the
        // residue — that is the point of the δ-cluster model.
        let base = figure4b();
        let mut shifted = base.clone();
        for c in 0..3 {
            shifted.set(1, c, base.get(1, c).unwrap() + 1000.0);
        }
        let cl = DeltaCluster::from_indices(3, 3, 0..3, 0..3);
        let r0 = cluster_residue(&base, &cl, ResidueMean::Arithmetic);
        let r1 = cluster_residue(&shifted, &cl, ResidueMean::Arithmetic);
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn residue_of_empty_cluster_is_zero() {
        let m = figure4b();
        let empty = DeltaCluster::empty(3, 3);
        assert_eq!(cluster_residue(&m, &empty, ResidueMean::Arithmetic), 0.0);
        let rows_only = DeltaCluster::from_indices(3, 3, 0..2, std::iter::empty());
        assert_eq!(
            cluster_residue(&m, &rows_only, ResidueMean::Arithmetic),
            0.0
        );
    }

    #[test]
    fn missing_entries_contribute_zero() {
        let mut m = figure4b();
        m.unset(1, 1);
        let c = DeltaCluster::from_indices(3, 3, 0..3, 0..3);
        let b = bases(&m, &c);
        assert_eq!(b.volume, 8);
        assert_eq!(entry_residue(&m, &b, 1, 1), 0.0);
    }

    #[test]
    fn single_cell_cluster_is_perfect() {
        let m = figure4b();
        let c = DeltaCluster::from_indices(3, 3, [1], [2]);
        // One entry: d_ij = d_iJ = d_Ij = d_IJ ⇒ residue 0.
        assert!(cluster_residue(&m, &c, ResidueMean::Arithmetic).abs() < 1e-12);
    }

    #[test]
    fn squared_mean_penalizes_outliers_more() {
        let mut m = figure4b();
        m.set(0, 0, 401.0 + 90.0);
        let c = DeltaCluster::from_indices(3, 3, 0..3, 0..3);
        let a = cluster_residue(&m, &c, ResidueMean::Arithmetic);
        let s = cluster_residue(&m, &c, ResidueMean::Squared);
        assert!(
            s > a,
            "squared mean ({s}) should exceed arithmetic ({a}) for a large outlier"
        );
    }

    #[test]
    fn all_missing_row_gets_cluster_base() {
        let mut m = figure4b();
        for c in 0..3 {
            m.unset(2, c);
        }
        let cl = DeltaCluster::from_indices(3, 3, 0..3, 0..3);
        let b = bases(&m, &cl);
        assert_eq!(b.row_bases[2], b.cluster_base);
        assert_eq!(b.volume, 6);
    }
}
