//! # dc-floc
//!
//! The δ-cluster model and the FLOC algorithm from *δ-Clusters: Capturing
//! Subspace Correlation in a Large Data Set* (Yang, Wang, Wang & Yu,
//! ICDE 2002).
//!
//! A **δ-cluster** is a submatrix — a subset of objects × a subset of
//! attributes, possibly with missing entries — whose entries are coherent up
//! to per-object and per-attribute additive *biases*. Coherence is measured
//! by the **residue**: in a perfect δ-cluster every specified entry equals
//! `row base + column base − cluster base`, and the residue averages the
//! deviations from that model. **FLOC** approximates the `k` clusters with
//! the lowest average residue by iteratively toggling row/column
//! memberships, performing for every row and column the action with the
//! highest gain.
//!
//! ## Quick example
//!
//! ```
//! use dc_floc::{floc, FlocConfig, Seeding};
//! use dc_matrix::DataMatrix;
//!
//! // Two groups of viewers with coherent (shifted) ratings on two genres.
//! let m = DataMatrix::builder(4, 6).from_rows(vec![
//!     8.0, 7.0, 9.0, 2.0, 2.0, 3.0,
//!     9.0, 8.0, 10.0, 3.0, 3.0, 4.0,
//!     2.0, 1.0, 3.0, 8.0, 8.0, 9.0,
//!     3.0, 2.0, 4.0, 9.0, 9.0, 10.0,
//! ]);
//! let config = FlocConfig::builder(2)
//!     .seeding(Seeding::TargetSize { rows: 2, cols: 3 })
//!     .seed(1)
//!     .build();
//! let result = floc(&m, &config).unwrap();
//! assert!(result.avg_residue < 1.0, "the two genre blocks cluster cleanly");
//! ```
//!
//! ## Module map
//!
//! * [`cluster`] — the δ-cluster descriptor, occupancy, volume (Defs 3.1/3.2).
//! * [`residue`] — bases and residue, from-scratch reference (Defs 3.3–3.5).
//! * [`stats`] — incrementally-maintained cluster statistics (the hot path).
//! * [`action`] — actions and gains (§4.1).
//! * [`gain_engine`] — exact vs incremental (sorted-index) gain evaluation.
//! * [`ordering`] — fixed / random / weighted-random action orders (§5.2).
//! * [`seeding`] — phase-1 seed construction (§4.1, §5.1).
//! * [`constraints`] — overlap / coverage / volume constraints (§3, §4.3).
//! * [`config`] — the [`FlocConfig`] builder.
//! * [`algorithm`] — the FLOC driver (§4.1), interruptible and resumable.
//! * [`checkpoint`] — resumable run snapshots for crash-safe mining.
//! * [`history`] — results, stop reasons, and iteration traces.
//! * [`prediction`] — missing-value prediction from discovered clusters.
//! * [`parallel`] — multi-restart search.

pub mod action;
pub mod algorithm;
pub mod amplification;
pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod constraints;
pub mod gain_engine;
pub mod history;
pub mod ordering;
pub mod parallel;
pub mod prediction;
pub mod residue;
pub mod seeding;
pub mod stats;

pub use action::{Action, Target};
pub use algorithm::{
    floc, floc_observed, floc_resume, floc_resume_with, floc_with, CheckpointObserver, FlocError,
};
pub use amplification::{
    amplification_residue, floc_amplification, AmplificationError, AmplificationResult,
};
pub use checkpoint::{FlocCheckpoint, ResumeError};
pub use cluster::DeltaCluster;
pub use config::{FlocConfig, FlocConfigBuilder, InterruptFlag, Parallelism};
pub use constraints::Constraint;
pub use gain_engine::{GainEngineKind, IncrementalEngine};
pub use history::{FlocResult, IterationTrace, StopReason};
pub use ordering::Ordering;
pub use parallel::floc_parallel;
#[allow(deprecated)]
pub use prediction::PredictError;
pub use residue::{cluster_residue, ResidueMean};
pub use seeding::{SeedError, Seeding};
pub use stats::{ClusterState, Scratch};
