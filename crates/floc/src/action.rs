//! Actions and gains (§4.1).
//!
//! An action is uniquely defined by a row-or-column `x` and a cluster `c`:
//! it toggles `x`'s membership in `c` (insert if absent, remove if present).
//! Its *gain* is the reduction of `c`'s residue the toggle would cause; a
//! positive gain improves the cluster, a negative gain degrades it — and the
//! paper still performs the best (least-bad) action for every row/column,
//! because temporary degradation can escape local optima.
//!
//! > The OCR of the paper's Figure 6 worked example is too garbled to
//! > recover its exact matrix, so the unit tests here validate the same
//! > mechanics (gain = old residue − toggled residue, negative best gains
//! > are kept) on a reconstructed example and against the from-scratch
//! > reference implementation.

use crate::residue::ResidueMean;
use crate::stats::{ClusterState, Scratch};
use dc_matrix::DataMatrix;
use serde::{Deserialize, Serialize};

/// The row or column an action toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// An object (matrix row).
    Row(usize),
    /// An attribute (matrix column).
    Col(usize),
}

impl Target {
    /// The underlying index, whichever dimension it is.
    pub fn index(self) -> usize {
        match self {
            Target::Row(i) | Target::Col(i) => i,
        }
    }

    /// True for row targets.
    pub fn is_row(self) -> bool {
        matches!(self, Target::Row(_))
    }
}

/// `Action(x, c)`: toggle membership of `target` in cluster `cluster`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// The row or column being moved.
    pub target: Target,
    /// Index of the cluster whose membership changes.
    pub cluster: usize,
}

/// An action annotated with its gain at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluatedAction {
    /// The action itself.
    pub action: Action,
    /// Residue reduction of the affected cluster (positive = improvement).
    /// `f64::NEG_INFINITY` marks a blocked action.
    pub gain: f64,
}

/// Computes the gain of toggling `target` in `state`:
/// `residue(c) − residue(c with target toggled)`.
///
/// `current_residue` is the cluster's residue before the toggle (cached by
/// the driver so it is not recomputed for each of the `k` candidate
/// clusters).
pub fn gain(
    matrix: &DataMatrix,
    state: &ClusterState,
    current_residue: f64,
    target: Target,
    mean: ResidueMean,
    scratch: &mut Scratch,
) -> f64 {
    let toggled = match target {
        Target::Row(r) => state.residue_if_row_toggled(matrix, r, mean, scratch),
        Target::Col(c) => state.residue_if_col_toggled(matrix, c, mean, scratch),
    };
    current_residue - toggled
}

/// Applies `action`'s toggle to the cluster state it refers to.
pub fn apply(matrix: &DataMatrix, states: &mut [ClusterState], action: Action) {
    let state = &mut states[action.cluster];
    match action.target {
        Target::Row(r) => state.toggle_row(matrix, r),
        Target::Col(c) => state.toggle_col(matrix, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::DeltaCluster;
    use crate::residue::cluster_residue;

    /// A 3×4 matrix in the spirit of Figure 6, with two overlapping
    /// clusters: cluster 1 = rows {0,1} × cols {0,1}, cluster 2 =
    /// rows {1,2} × cols {0,1,2}.
    fn example() -> (DataMatrix, Vec<ClusterState>) {
        let m = DataMatrix::builder(3, 4).from_rows(vec![
            1.0, 3.0, 1.0, 2.0, //
            2.0, 5.0, 3.0, 2.0, //
            4.0, 2.0, 0.0, 4.0,
        ]);
        let c1 = ClusterState::new(&m, &DeltaCluster::from_indices(3, 4, [0, 1], [0, 1]));
        let c2 = ClusterState::new(&m, &DeltaCluster::from_indices(3, 4, [1, 2], [0, 1, 2]));
        (m, vec![c1, c2])
    }

    #[test]
    fn two_by_two_cluster_residue_closed_form() {
        // For a fully specified 2×2 cluster [[a,b],[c,d]] every entry has
        // |residue| = |a−b−c+d|/4. Cluster 1 is [[1,3],[2,5]] ⇒ 1/4.
        let (m, states) = example();
        let mut s = Scratch::default();
        let r = states[0].residue(&m, ResidueMean::Arithmetic, &mut s);
        assert!((r - 0.25).abs() < 1e-12, "cluster 1 residue {r} != 1/4");
    }

    #[test]
    fn gain_is_residue_difference() {
        let (m, states) = example();
        let mut s = Scratch::default();
        let cur = states[0].residue(&m, ResidueMean::Arithmetic, &mut s);
        let g = gain(
            &m,
            &states[0],
            cur,
            Target::Col(2),
            ResidueMean::Arithmetic,
            &mut s,
        );
        // Oracle: residue of the cluster with column 2 inserted.
        let mut grown = states[0].to_cluster();
        grown.cols.insert(2);
        let oracle = cur - cluster_residue(&m, &grown, ResidueMean::Arithmetic);
        assert!((g - oracle).abs() < 1e-12);
    }

    #[test]
    fn best_action_can_have_negative_gain() {
        // §4.1: the best action for a column may still have negative gain;
        // FLOC performs it anyway. Construct the situation: cluster 1 is a
        // perfect 2×2 cluster, so any change degrades it.
        let m = DataMatrix::builder(2, 3).from_rows(vec![1.0, 2.0, 9.0, 3.0, 4.0, 0.0]);
        let st = ClusterState::new(&m, &DeltaCluster::from_indices(2, 3, [0, 1], [0, 1]));
        let mut s = Scratch::default();
        let cur = st.residue(&m, ResidueMean::Arithmetic, &mut s);
        assert!(cur.abs() < 1e-12, "2x2 shifted cluster is perfect");
        let g = gain(
            &m,
            &st,
            cur,
            Target::Col(2),
            ResidueMean::Arithmetic,
            &mut s,
        );
        assert!(
            g < 0.0,
            "inserting the incoherent column must have negative gain, got {g}"
        );
    }

    #[test]
    fn insert_and_remove_gains_are_inverse_at_fixpoint() {
        // Toggling twice returns to the start: gain(toggle) from A→B equals
        // −gain(toggle) from B→A.
        let (m, mut states) = example();
        let mut s = Scratch::default();
        let cur = states[1].residue(&m, ResidueMean::Arithmetic, &mut s);
        let g_remove = gain(
            &m,
            &states[1],
            cur,
            Target::Row(2),
            ResidueMean::Arithmetic,
            &mut s,
        );
        apply(
            &m,
            &mut states,
            Action {
                target: Target::Row(2),
                cluster: 1,
            },
        );
        let new = states[1].residue(&m, ResidueMean::Arithmetic, &mut s);
        let g_insert = gain(
            &m,
            &states[1],
            new,
            Target::Row(2),
            ResidueMean::Arithmetic,
            &mut s,
        );
        assert!((g_remove + g_insert).abs() < 1e-12);
    }

    #[test]
    fn apply_toggles_the_right_cluster() {
        let (m, mut states) = example();
        assert!(states[0].rows.contains(0));
        assert!(!states[1].rows.contains(0));
        apply(
            &m,
            &mut states,
            Action {
                target: Target::Row(0),
                cluster: 1,
            },
        );
        assert!(states[1].rows.contains(0), "row 0 inserted into cluster 2");
        assert!(states[0].rows.contains(0), "cluster 1 untouched");
        apply(
            &m,
            &mut states,
            Action {
                target: Target::Col(1),
                cluster: 0,
            },
        );
        assert!(!states[0].cols.contains(1), "col 1 removed from cluster 1");
    }

    #[test]
    fn target_accessors() {
        assert_eq!(Target::Row(3).index(), 3);
        assert_eq!(Target::Col(7).index(), 7);
        assert!(Target::Row(0).is_row());
        assert!(!Target::Col(0).is_row());
    }
}
