//! Multi-restart FLOC.
//!
//! FLOC is a randomized local search: the quality of the final clustering
//! depends on the seeds and the action order. Running several independent
//! restarts and keeping the clustering with the lowest average residue is a
//! cheap, embarrassingly parallel way to tighten the approximation — §5.1's
//! sensitivity analysis is exactly why this helps. Restarts run on scoped
//! threads and differ only in their RNG seed, so each individual restart
//! remains reproducible.

use crate::algorithm::{floc, FlocError};
use crate::config::FlocConfig;
use crate::history::FlocResult;
use dc_matrix::DataMatrix;
use parking_lot::Mutex;

/// Runs `restarts` independent FLOC runs (seeds `config.seed`,
/// `config.seed + 1`, …) across up to `workers` threads and returns the
/// result with the lowest average residue, together with the seed that
/// produced it.
///
/// Ties are broken toward the smallest seed so the outcome is deterministic
/// regardless of thread scheduling.
///
/// # Errors
/// Returns the first error (by seed order) if *every* restart fails;
/// individual failures are tolerated as long as one restart succeeds.
pub fn floc_restarts(
    matrix: &DataMatrix,
    config: &FlocConfig,
    restarts: usize,
    workers: usize,
) -> Result<(FlocResult, u64), FlocError> {
    assert!(restarts > 0, "at least one restart required");
    let workers = workers.clamp(1, restarts);
    let results: Mutex<Vec<(u64, Result<FlocResult, FlocError>)>> =
        Mutex::new(Vec::with_capacity(restarts));
    let next = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= restarts {
                    break;
                }
                let seed = config.seed + i as u64;
                let mut cfg = config.clone();
                cfg.seed = seed;
                // Restart-level parallelism replaces within-run parallelism.
                cfg.threads = 1;
                let result = floc(matrix, &cfg);
                results.lock().push((seed, result));
            });
        }
    })
    .expect("restart worker panicked");

    let mut results = results.into_inner();
    results.sort_by_key(|(seed, _)| *seed);

    let mut best: Option<(FlocResult, u64)> = None;
    let mut first_err: Option<FlocError> = None;
    for (seed, r) in results {
        match r {
            Ok(res) => {
                let better = match &best {
                    None => true,
                    Some((b, _)) => res.avg_residue < b.avg_residue,
                };
                if better {
                    best = Some((res, seed));
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match best {
        Some(b) => Ok(b),
        None => Err(first_err.expect("restarts > 0 implies at least one result")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeding::Seeding;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[allow(clippy::needless_range_loop)] // index drives both the block test and the pattern lookup
    fn noisy_matrix(seed: u64) -> DataMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DataMatrix::new(25, 12);
        // A planted coherent block in rows 0..8, cols 0..5.
        let pattern: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..10.0)).collect();
        for r in 0..25 {
            let bias: f64 = rng.gen_range(0.0..20.0);
            for c in 0..12 {
                if r < 8 && c < 5 {
                    m.set(r, c, pattern[c] + bias);
                } else {
                    m.set(r, c, rng.gen_range(0.0..100.0));
                }
            }
        }
        m
    }

    #[test]
    fn restarts_return_the_best_seed() {
        let m = noisy_matrix(1);
        let config = FlocConfig::builder(1)
            .seeding(Seeding::TargetSize { rows: 6, cols: 4 })
            .seed(100)
            .build();
        let (multi, best_seed) = floc_restarts(&m, &config, 6, 3).unwrap();
        // The multi-restart result must be at least as good as the single
        // run with the base seed.
        let mut single_cfg = config.clone();
        single_cfg.seed = 100;
        let single = floc(&m, &single_cfg).unwrap();
        assert!(multi.avg_residue <= single.avg_residue + 1e-12);
        assert!((100..106).contains(&best_seed));
    }

    #[test]
    fn restarts_are_deterministic() {
        let m = noisy_matrix(2);
        let config = FlocConfig::builder(2).seed(7).build();
        let (a, seed_a) = floc_restarts(&m, &config, 4, 4).unwrap();
        let (b, seed_b) = floc_restarts(&m, &config, 4, 2).unwrap();
        assert_eq!(seed_a, seed_b, "winner independent of worker count");
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.avg_residue, b.avg_residue);
    }

    #[test]
    fn single_restart_equals_plain_floc() {
        let m = noisy_matrix(3);
        let config = FlocConfig::builder(1).seed(42).build();
        let (multi, seed) = floc_restarts(&m, &config, 1, 1).unwrap();
        let single = floc(&m, &config).unwrap();
        assert_eq!(seed, 42);
        assert_eq!(multi.clusters, single.clusters);
    }

    #[test]
    fn all_failures_surface_an_error() {
        let m = DataMatrix::new(10, 10); // empty: every restart fails
        let config = FlocConfig::builder(1).build();
        let err = floc_restarts(&m, &config, 3, 2).unwrap_err();
        assert!(matches!(err, FlocError::EmptyMatrix));
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_panics() {
        let m = noisy_matrix(4);
        let config = FlocConfig::builder(1).build();
        let _ = floc_restarts(&m, &config, 0, 1);
    }
}
