//! Multi-restart FLOC.
//!
//! FLOC is a randomized local search: the quality of the final clustering
//! depends on the seeds and the action order. Running several independent
//! restarts and keeping the clustering with the lowest average residue is a
//! cheap, embarrassingly parallel way to tighten the approximation — §5.1's
//! sensitivity analysis is exactly why this helps. Restarts run on scoped
//! threads and differ only in their RNG seed, so each individual restart
//! remains reproducible.
//!
//! The restart count and worker-thread budget both come from the config's
//! [`Parallelism`] plan; [`floc_parallel`] is the entry point.

use crate::algorithm::{floc, FlocError};
use crate::config::{FlocConfig, Parallelism};
use crate::history::FlocResult;
use dc_matrix::DataMatrix;
use dc_obs::{Field, Obs};
use parking_lot::Mutex;
use std::time::Instant;

/// Races `config.parallelism.restarts` independent FLOC runs (seeds
/// `config.seed`, `config.seed + 1`, …) across up to
/// `config.parallelism.threads` worker threads and returns the result with
/// the lowest average residue, together with the seed that produced it.
///
/// The thread budget is split, never multiplied: `workers =
/// threads.clamp(1, restarts)` restarts race concurrently, and each
/// restart's own gain evaluation gets the `threads / workers` leftover
/// (at least 1) — so at most `threads` OS threads ever run hot at once,
/// where the old behavior of handing every restart the full `threads`
/// oversubscribed the machine `restarts`-fold. Within-run thread count
/// never affects a run's trajectory (gain evaluation is bit-identical
/// across thread counts), and ties are broken toward the smallest seed,
/// so the outcome is deterministic regardless of the split or of thread
/// scheduling.
///
/// Each finished restart emits a `floc.restart` event on `obs` (arrival
/// order, hence event order, is scheduler-dependent) and the race ends
/// with a `floc.restarts` span naming the winner. The per-iteration event
/// stream of the individual runs is intentionally not forwarded — with
/// dozens of racing restarts it would interleave into noise.
///
/// # Errors
/// Returns the first error (by seed order) if *every* restart fails;
/// individual failures are tolerated as long as one restart succeeds.
pub fn floc_parallel(
    matrix: &DataMatrix,
    config: &FlocConfig,
    obs: &Obs,
) -> Result<(FlocResult, u64), FlocError> {
    let restarts = config.parallelism.restarts.max(1);
    let workers = config.parallelism.threads.clamp(1, restarts);
    // Budget split (documented on `Parallelism`): the within-run thread
    // count is the budget left over after restart workers are staffed, so
    // workers × within ≤ threads — no oversubscription.
    let within = (config.parallelism.threads / workers).max(1);
    let started = Instant::now();
    let results: Mutex<Vec<(u64, Result<FlocResult, FlocError>)>> =
        Mutex::new(Vec::with_capacity(restarts));
    let next = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= restarts {
                    break;
                }
                let seed = config.seed + i as u64;
                let mut cfg = config.clone();
                cfg.seed = seed;
                // Restart-level parallelism takes precedence; this restart
                // runs within its share of the thread budget.
                cfg.parallelism = Parallelism::new(within, 1);
                let result = floc(matrix, &cfg);
                if obs.enabled() {
                    match &result {
                        Ok(r) => obs.emit(
                            "floc.restart",
                            &[
                                Field::new("seed", seed),
                                Field::new("avg_residue", r.avg_residue),
                                Field::new("iterations", r.iterations),
                                Field::new("ok", true),
                            ],
                        ),
                        Err(e) => {
                            let msg = e.to_string();
                            obs.emit(
                                "floc.restart",
                                &[
                                    Field::new("seed", seed),
                                    Field::new("ok", false),
                                    Field::new("error", msg.as_str()),
                                ],
                            );
                        }
                    }
                }
                results.lock().push((seed, result));
            });
        }
    })
    .expect("restart worker panicked");

    let mut results = results.into_inner();
    results.sort_by_key(|(seed, _)| *seed);

    let mut best: Option<(FlocResult, u64)> = None;
    let mut first_err: Option<FlocError> = None;
    for (seed, r) in results {
        match r {
            Ok(res) => {
                let better = match &best {
                    None => true,
                    Some((b, _)) => res.avg_residue < b.avg_residue,
                };
                if better {
                    best = Some((res, seed));
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match best {
        Some(b) => {
            if obs.enabled() {
                obs.emit_full(
                    dc_obs::EventKind::Span,
                    "floc.restarts",
                    &[
                        Field::new(
                            "duration_nanos",
                            started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                        ),
                        Field::new("restarts", restarts),
                        Field::new("workers", workers),
                        Field::new("winner_seed", b.1),
                        Field::new("avg_residue", b.0.avg_residue),
                    ],
                    None,
                );
            }
            Ok(b)
        }
        None => Err(first_err.expect("restarts >= 1 implies at least one result")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeding::Seeding;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[allow(clippy::needless_range_loop)] // index drives both the block test and the pattern lookup
    fn noisy_matrix(seed: u64) -> DataMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DataMatrix::builder(25, 12).build();
        // A planted coherent block in rows 0..8, cols 0..5.
        let pattern: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..10.0)).collect();
        for r in 0..25 {
            let bias: f64 = rng.gen_range(0.0..20.0);
            for c in 0..12 {
                if r < 8 && c < 5 {
                    m.set(r, c, pattern[c] + bias);
                } else {
                    m.set(r, c, rng.gen_range(0.0..100.0));
                }
            }
        }
        m
    }

    fn plan(config: &FlocConfig, threads: usize, restarts: usize) -> FlocConfig {
        let mut cfg = config.clone();
        cfg.parallelism = Parallelism::new(threads, restarts);
        cfg
    }

    #[test]
    fn restarts_return_the_best_seed() {
        let m = noisy_matrix(1);
        let config = FlocConfig::builder(1)
            .seeding(Seeding::TargetSize { rows: 6, cols: 4 })
            .seed(100)
            .threads(3)
            .restarts(6)
            .build();
        let (multi, best_seed) = floc_parallel(&m, &config, &Obs::null()).unwrap();
        // The multi-restart result must be at least as good as the single
        // run with the base seed.
        let mut single_cfg = config.clone();
        single_cfg.seed = 100;
        single_cfg.parallelism = Parallelism::serial();
        let single = floc(&m, &single_cfg).unwrap();
        assert!(multi.avg_residue <= single.avg_residue + 1e-12);
        assert!((100..106).contains(&best_seed));
    }

    #[test]
    fn restarts_are_deterministic() {
        let m = noisy_matrix(2);
        let config = FlocConfig::builder(2).seed(7).build();
        let (a, seed_a) = floc_parallel(&m, &plan(&config, 4, 4), &Obs::null()).unwrap();
        let (b, seed_b) = floc_parallel(&m, &plan(&config, 2, 4), &Obs::null()).unwrap();
        assert_eq!(seed_a, seed_b, "winner independent of worker count");
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.avg_residue, b.avg_residue);
    }

    #[test]
    fn single_restart_equals_plain_floc() {
        let m = noisy_matrix(3);
        let config = FlocConfig::builder(1).seed(42).build();
        let (multi, seed) = floc_parallel(&m, &config, &Obs::null()).unwrap();
        let single = floc(&m, &config).unwrap();
        assert_eq!(seed, 42);
        assert_eq!(multi.clusters, single.clusters);
    }

    #[test]
    fn all_failures_surface_an_error() {
        let m = DataMatrix::builder(10, 10).build(); // empty: every restart fails
        let config = FlocConfig::builder(1).restarts(3).threads(2).build();
        let err = floc_parallel(&m, &config, &Obs::null()).unwrap_err();
        assert!(matches!(err, FlocError::EmptyMatrix));
    }

    #[test]
    fn restart_events_cover_every_seed() {
        let m = noisy_matrix(5);
        let config = FlocConfig::builder(1)
            .seed(10)
            .threads(2)
            .restarts(4)
            .build();
        let sink = dc_obs::MemorySink::new();
        let obs = Obs::new(sink.clone());
        let (best, winner) = floc_parallel(&m, &config, &obs).unwrap();
        let restarts = sink.named("floc.restart");
        assert_eq!(restarts.len(), 4);
        let mut seeds: Vec<u64> = restarts
            .iter()
            .filter_map(|e| e.u64_field("seed"))
            .collect();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![10, 11, 12, 13]);
        let done = sink.named("floc.restarts");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].u64_field("winner_seed"), Some(winner));
        assert_eq!(done[0].f64_field("avg_residue"), Some(best.avg_residue));
        // Observation must not perturb the race's outcome.
        let (plain, plain_winner) = floc_parallel(&m, &config, &Obs::null()).unwrap();
        assert_eq!(plain_winner, winner);
        assert_eq!(plain.clusters, best.clusters);
    }
}
