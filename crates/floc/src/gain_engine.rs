//! Pluggable gain engines: exact rescans vs incremental sorted-residue
//! indexes.
//!
//! FLOC's per-iteration cost is dominated by gain evaluation: each of the
//! `(N+M)·k` candidate actions asks "what would cluster `c`'s residue be
//! with row/column `x` toggled?", and the exact answer
//! ([`ClusterState::residue_if_row_toggled`]) rescans the whole `|I|·|J|`
//! submatrix. The [`IncrementalEngine`] answers the same question in
//! `O(|J|·log|I|)` (row toggles) / `O(|I|·log|J|)` (column toggles) from
//! per-line sorted indexes, exploiting a structural fact of the residue
//! model:
//!
//! Toggling row `x` leaves `J` unchanged, so every other row's base `d_iJ`
//! is unchanged and `s_ij = d_ij − d_iJ` is *invariant*. The new residue of
//! entry `(i, j)` is
//!
//! ```text
//! d_ij − d_iJ − d_Ij′ + d_IJ′  =  s_ij − t_j,   t_j = d_Ij′ − d_IJ′
//! ```
//!
//! — a per-column constant shift. With the `s_ij` of each column kept
//! sorted alongside prefix sums (`pre`) and prefix sums of squares
//! (`pre2`), the column's contribution to the toggled residue is a closed
//! form:
//!
//! * arithmetic mean: `Σ|s − t| = (lo·t − pre[lo]) + (pre[n] − pre[lo] −
//!   (n−lo)·t)` where `lo = #{s < t}` from one binary search;
//! * squared mean: `Σ(s − t)² = pre2[n] − 2t·pre[n] + n·t²`, no search.
//!
//! Symmetrically, toggling column `y` leaves every column base `d_Ij`
//! (`j ≠ y`) unchanged, so per-row sorted arrays of `u_ij = d_ij − d_Ij`
//! answer column toggles.
//!
//! ## Maintenance across applies
//!
//! Applying a row toggle keeps the per-column (`s`) indexes repairable in
//! `O(|J| · |I|)` — only row `x`'s entries enter or leave, with every other
//! `s` value untouched — but shifts every column base, invalidating all
//! per-row (`u`) indexes at once. Rather than rebuilding both sides after
//! every apply, each side carries a dirty flag: the same side is repaired
//! in place, the opposite side is marked stale and lazily rebuilt by
//! [`IncrementalEngine::prepare`] the next time a query needs it. The
//! driver rebuilds the whole engine from the canonical cluster states at
//! every iteration boundary — the *drift guard* that keeps long runs (and
//! checkpoint/resume) anchored to the exact statistics.

use crate::action::{Action, Target};
use crate::residue::ResidueMean;
use crate::stats::ClusterState;
use dc_matrix::DataMatrix;
use serde::{Deserialize, Serialize};

/// Matrices with at least this many cells default to the incremental
/// engine under [`GainEngineKind::Auto`]. Below it the exact scanner is
/// both fast enough and free of index-maintenance overhead.
pub const AUTO_INCREMENTAL_CELLS: usize = 10_000;

/// Which engine drives phase-2 gain evaluation (selected in
/// [`crate::FlocConfig`]).
///
/// The engines agree to floating-point accuracy but not bit-for-bit (they
/// sum in different orders), so the choice is part of the search identity:
/// checkpoints record it and refuse to resume under a different engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GainEngineKind {
    /// Choose by matrix size: [`GainEngineKind::Incremental`] at or above
    /// [`AUTO_INCREMENTAL_CELLS`] cells, [`GainEngineKind::Exact`] below.
    #[default]
    Auto,
    /// The `O(|I|·|J|)`-per-candidate rescan of
    /// [`ClusterState::residue_if_row_toggled`] — the correctness oracle.
    Exact,
    /// Sorted-index evaluation in `O((|I|+|J|)·log)` per candidate.
    Incremental,
}

impl GainEngineKind {
    /// Resolves the kind against a concrete matrix. Deterministic for a
    /// given matrix shape, so fresh and resumed runs agree.
    pub fn use_incremental(self, matrix: &DataMatrix) -> bool {
        match self {
            GainEngineKind::Exact => false,
            GainEngineKind::Incremental => true,
            GainEngineKind::Auto => matrix.cells() >= AUTO_INCREMENTAL_CELLS,
        }
    }
}

impl std::fmt::Display for GainEngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GainEngineKind::Auto => "auto",
            GainEngineKind::Exact => "exact",
            GainEngineKind::Incremental => "incremental",
        })
    }
}

/// Sorted shift-invariant residues of one matrix line (a column's `s`
/// values or a row's `u` values) with prefix partial sums.
#[derive(Debug, Clone, Default)]
struct DimIndex {
    /// Invariant residues, ascending (ties broken by id).
    vals: Vec<f64>,
    /// Row id (in a per-column index) / column id (per-row), aligned with
    /// `vals`.
    ids: Vec<u32>,
    /// `pre[i] = vals[..i].sum()`; length `vals.len() + 1`.
    pre: Vec<f64>,
    /// Prefix sums of `vals[i]²`, for the squared mean's closed form.
    pre2: Vec<f64>,
}

impl DimIndex {
    fn clear(&mut self) {
        self.vals.clear();
        self.ids.clear();
        self.pre.clear();
        self.pre2.clear();
    }

    #[cfg(test)]
    fn push(&mut self, val: f64, id: u32) {
        self.vals.push(val);
        self.ids.push(id);
    }

    /// Sorts by `(value, id)` and (re)builds the prefix arrays.
    #[cfg(test)]
    fn finish(&mut self) {
        let mut order: Vec<u32> = (0..self.vals.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            self.vals[a as usize]
                .total_cmp(&self.vals[b as usize])
                .then(self.ids[a as usize].cmp(&self.ids[b as usize]))
        });
        let vals: Vec<f64> = order.iter().map(|&i| self.vals[i as usize]).collect();
        let ids: Vec<u32> = order.iter().map(|&i| self.ids[i as usize]).collect();
        self.vals = vals;
        self.ids = ids;
        self.rebuild_prefixes();
    }

    /// Replaces the contents from a caller-owned buffer of `(value, id)`
    /// pairs, reusing this index's allocations across rebuilds. Sorting by
    /// `(value, id)` with unique ids yields exactly the order
    /// [`Self::finish`] produces, so the two construction paths are
    /// interchangeable.
    fn assign_sorted(&mut self, buf: &mut [(f64, u32)]) {
        buf.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.vals.clear();
        self.ids.clear();
        self.vals.extend(buf.iter().map(|p| p.0));
        self.ids.extend(buf.iter().map(|p| p.1));
        self.rebuild_prefixes();
    }

    fn rebuild_prefixes(&mut self) {
        self.pre.clear();
        self.pre2.clear();
        self.pre.reserve(self.vals.len() + 1);
        self.pre2.reserve(self.vals.len() + 1);
        let (mut s, mut s2) = (0.0, 0.0);
        self.pre.push(0.0);
        self.pre2.push(0.0);
        for &v in &self.vals {
            s += v;
            s2 += v * v;
            self.pre.push(s);
            self.pre2.push(s2);
        }
    }

    /// First position at or after which `(val, id)` sorts.
    fn position(&self, val: f64, id: u32) -> usize {
        let mut pos = self.vals.partition_point(|&v| v.total_cmp(&val).is_lt());
        while pos < self.vals.len() && self.vals[pos].total_cmp(&val).is_eq() && self.ids[pos] < id
        {
            pos += 1;
        }
        pos
    }

    /// Recomputes `pre`/`pre2` from position `pos` on. Entries below `pos`
    /// depend only on the unchanged value prefix, so resuming the running
    /// sums from `pre[pos]`/`pre2[pos]` is bit-identical to a full rebuild
    /// while touching only the suffix.
    fn repair_prefixes_from(&mut self, pos: usize) {
        if self.pre.is_empty() {
            self.pre.push(0.0);
            self.pre2.push(0.0);
        }
        self.pre.truncate(pos + 1);
        self.pre2.truncate(pos + 1);
        let (mut s, mut s2) = (self.pre[pos], self.pre2[pos]);
        for &v in &self.vals[pos..] {
            s += v;
            s2 += v * v;
            self.pre.push(s);
            self.pre2.push(s2);
        }
    }

    /// Inserts one entry, keeping order, and repairs the prefix suffix.
    /// `O(n)` memmove, `O(n − pos)` arithmetic.
    fn insert(&mut self, val: f64, id: u32) {
        let pos = self.position(val, id);
        self.vals.insert(pos, val);
        self.ids.insert(pos, id);
        self.repair_prefixes_from(pos);
    }

    /// Removes the entry for `id`, located by its reproduced value (the
    /// stored value is recomputed bit-identically from the same sums, so
    /// the binary search lands on it; a linear fallback guards the
    /// invariant anyway). `O(n)` memmove, `O(n − pos)` arithmetic.
    fn remove(&mut self, val: f64, id: u32) {
        let pos = self.position(val, id);
        let at = if self.ids.get(pos) == Some(&id) {
            pos
        } else {
            debug_assert!(false, "index entry for id {id} not at its reproduced value");
            match self.ids.iter().position(|&i| i == id) {
                Some(p) => p,
                None => return,
            }
        };
        self.vals.remove(at);
        self.ids.remove(at);
        self.repair_prefixes_from(at);
    }

    /// `Σ term(vals[i] − t)` over every entry, in `O(log n)` (arithmetic)
    /// or `O(1)` (squared).
    #[inline]
    fn query(&self, t: f64, mean: ResidueMean) -> f64 {
        let n = self.vals.len();
        if n == 0 {
            return 0.0;
        }
        match mean {
            ResidueMean::Arithmetic => {
                let lo = self.vals.partition_point(|&s| s < t);
                let left = t * lo as f64 - self.pre[lo];
                let right = (self.pre[n] - self.pre[lo]) - t * (n - lo) as f64;
                left + right
            }
            ResidueMean::Squared => self.pre2[n] - 2.0 * t * self.pre[n] + n as f64 * t * t,
        }
    }
}

/// Both index sides of one cluster.
#[derive(Debug, Clone)]
struct ClusterIndex {
    /// `by_col[j]` holds the sorted `s_ij = d_ij − d_iJ` of column `j`
    /// over the cluster's rows — serves **row**-toggle queries. Empty for
    /// columns outside `J`.
    by_col: Vec<DimIndex>,
    /// `by_row[i]` holds the sorted `u_ij = d_ij − d_Ij` of row `i` over
    /// the cluster's columns — serves **column**-toggle queries.
    by_row: Vec<DimIndex>,
    /// `by_col` matches the cluster's current state.
    col_ok: bool,
    /// `by_row` matches the cluster's current state.
    row_ok: bool,
    /// `(value, id)` pairs reused across every line rebuild of this
    /// cluster, so steady-state rebuilds allocate nothing.
    sort_buf: Vec<(f64, u32)>,
    /// Per-line bases hoisted out of the entry loops: one division per
    /// member line per rebuild instead of one per entry.
    base_buf: Vec<f64>,
}

impl ClusterIndex {
    fn new(matrix: &DataMatrix) -> Self {
        ClusterIndex {
            by_col: vec![DimIndex::default(); matrix.cols()],
            by_row: vec![DimIndex::default(); matrix.rows()],
            col_ok: false,
            row_ok: false,
            sort_buf: Vec::new(),
            base_buf: Vec::new(),
        }
    }

    fn rebuild_by_col(&mut self, matrix: &DataMatrix, st: &ClusterState) {
        for d in &mut self.by_col {
            d.clear();
        }
        // (i, j) specified with j ∈ J ⇒ row i's count is ≥ 1; the hoisted
        // division is the same one the entry loop used to perform.
        self.base_buf.clear();
        self.base_buf.resize(matrix.rows(), 0.0);
        for i in st.rows.iter() {
            if st.row_specified(i) > 0 {
                self.base_buf[i] = st.row_sum(i) / st.row_specified(i) as f64;
            }
        }
        for j in st.cols.iter() {
            self.sort_buf.clear();
            for (i, v) in matrix.col_specified_in(j, &st.rows) {
                self.sort_buf.push((v - self.base_buf[i], i as u32));
            }
            self.by_col[j].assign_sorted(&mut self.sort_buf);
        }
        self.col_ok = true;
    }

    fn rebuild_by_row(&mut self, matrix: &DataMatrix, st: &ClusterState) {
        for d in &mut self.by_row {
            d.clear();
        }
        self.base_buf.clear();
        self.base_buf.resize(matrix.cols(), 0.0);
        for j in st.cols.iter() {
            if st.col_specified(j) > 0 {
                self.base_buf[j] = st.col_sum(j) / st.col_specified(j) as f64;
            }
        }
        for i in st.rows.iter() {
            self.sort_buf.clear();
            for (j, v) in matrix.row_specified_in(i, &st.cols) {
                self.sort_buf.push((v - self.base_buf[j], j as u32));
            }
            self.by_row[i].assign_sorted(&mut self.sort_buf);
        }
        self.row_ok = true;
    }
}

/// Incremental gain engine: per-cluster sorted-residue indexes answering
/// virtual-toggle residues without rescanning the cluster submatrix.
///
/// Built from the canonical [`ClusterState`]s at each iteration boundary;
/// the driver calls [`Self::prepare`] before querying a side,
/// [`Self::toggled_residue`] for gains, and [`Self::apply`] (just before
/// the matching [`ClusterState`] toggle) to keep the indexes in step.
/// Queries take `&self`, so evaluation parallelizes exactly like the exact
/// scanner.
#[derive(Debug)]
pub struct IncrementalEngine {
    clusters: Vec<ClusterIndex>,
    mean: ResidueMean,
    /// Lazy index-side rebuilds performed by [`Self::prepare`].
    stale_rebuilds: u64,
    /// In-place same-side repairs performed by [`Self::apply`].
    repairs: u64,
}

impl IncrementalEngine {
    /// Builds both index sides for every cluster. `O(Σ volume · log)`.
    pub fn build(matrix: &DataMatrix, states: &[ClusterState], mean: ResidueMean) -> Self {
        IncrementalEngine::build_with_threads(matrix, states, mean, 1)
    }

    /// [`Self::build`] with the per-cluster work fanned out over up to
    /// `threads` workers. Each cluster's indexes are an independent
    /// function of `(matrix, its state)`, so the result is bit-identical
    /// to the serial build regardless of thread count.
    pub fn build_with_threads(
        matrix: &DataMatrix,
        states: &[ClusterState],
        mean: ResidueMean,
        threads: usize,
    ) -> Self {
        let mut engine = IncrementalEngine {
            clusters: states.iter().map(|_| ClusterIndex::new(matrix)).collect(),
            mean,
            stale_rebuilds: 0,
            repairs: 0,
        };
        let threads = threads.max(1).min(states.len().max(1));
        if threads <= 1 || states.len() < 2 {
            for (ci, st) in engine.clusters.iter_mut().zip(states) {
                ci.rebuild_by_col(matrix, st);
                ci.rebuild_by_row(matrix, st);
            }
            return engine;
        }
        // Pay the column-mirror transpose once up front instead of
        // serializing every worker behind its OnceLock.
        matrix.ensure_mirror();
        let chunk = states.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (ci_chunk, st_chunk) in engine.clusters.chunks_mut(chunk).zip(states.chunks(chunk))
            {
                scope.spawn(move |_| {
                    for (ci, st) in ci_chunk.iter_mut().zip(st_chunk) {
                        ci.rebuild_by_col(matrix, st);
                        ci.rebuild_by_row(matrix, st);
                    }
                });
            }
        })
        .expect("engine build worker panicked");
        engine
    }

    /// Rebuilds any stale index side needed for the next queries:
    /// row-toggle queries (`is_row`) read the per-column side, column
    /// toggles the per-row side. No-op for clean sides.
    pub fn prepare(&mut self, matrix: &DataMatrix, states: &[ClusterState], is_row: bool) {
        for (ci, st) in self.clusters.iter_mut().zip(states) {
            if is_row && !ci.col_ok {
                ci.rebuild_by_col(matrix, st);
                self.stale_rebuilds += 1;
            }
            if !is_row && !ci.row_ok {
                ci.rebuild_by_row(matrix, st);
                self.stale_rebuilds += 1;
            }
        }
    }

    /// Maintenance tallies since [`Self::build`]:
    /// `(stale_rebuilds, repairs)` — lazy side rebuilds in
    /// [`Self::prepare`] and in-place same-side repairs in [`Self::apply`].
    /// Read-only diagnostics for observability; they never influence the
    /// search.
    pub fn counters(&self) -> (u64, u64) {
        (self.stale_rebuilds, self.repairs)
    }

    /// The residue cluster `cluster` would have with `target` toggled —
    /// the incremental counterpart of [`ClusterState::residue_if_row_toggled`] /
    /// [`ClusterState::residue_if_col_toggled`]. `st` must be the state the
    /// engine's indexes were built/repaired against, and the queried side
    /// must have been [`Self::prepare`]d.
    pub fn toggled_residue(
        &self,
        cluster: usize,
        target: Target,
        st: &ClusterState,
        matrix: &DataMatrix,
    ) -> f64 {
        match target {
            Target::Row(r) => self.residue_row_toggled(cluster, r, st, matrix),
            Target::Col(c) => self.residue_col_toggled(cluster, c, st, matrix),
        }
    }

    fn residue_row_toggled(
        &self,
        cluster: usize,
        x: usize,
        st: &ClusterState,
        matrix: &DataMatrix,
    ) -> f64 {
        let ci = &self.clusters[cluster];
        debug_assert!(ci.col_ok, "row query against a stale per-column index");
        let adding = !st.rows.contains(x);
        let sign = if adding { 1.0 } else { -1.0 };

        // Word-block kernel; bit-identical to folding row_specified_in.
        let (t_sum, t_cnt) = if adding {
            matrix.row_stats_in(x, &st.cols)
        } else {
            (st.row_sum(x), st.row_specified(x))
        };

        let new_volume = (st.volume() as i64 + sign as i64 * t_cnt as i64) as usize;
        if new_volume == 0 {
            return 0.0;
        }
        let new_total = st.total() + sign * t_sum;
        let base = new_total / new_volume as f64;

        // Row x's base before (for cancelling stored entries) and after.
        let old_rb = if st.row_specified(x) > 0 {
            st.row_sum(x) / st.row_specified(x) as f64
        } else {
            0.0 // unused: x then has no stored entries
        };
        let new_rb = if t_cnt == 0 {
            base
        } else {
            t_sum / t_cnt as f64
        };

        let xvals = matrix.row_ref(x);
        let mut sum = 0.0;
        for j in st.cols.iter() {
            let spec = matrix.is_specified(x, j);
            let (mut cs, mut cn) = (st.col_sum(j), st.col_specified(j) as i64);
            let v = xvals.get(j);
            if spec {
                cs += sign * v;
                cn += sign as i64;
            }
            let col_base = if cn <= 0 { base } else { cs / cn as f64 };
            let t = col_base - base;
            sum += ci.by_col[j].query(t, self.mean);
            if spec {
                if adding {
                    sum += self.mean.entry_term(v - new_rb - col_base + base);
                } else {
                    // The index still contains x's entry; cancel it.
                    sum -= self.mean.entry_term((v - old_rb) - t);
                }
            }
        }
        sum / new_volume as f64
    }

    fn residue_col_toggled(
        &self,
        cluster: usize,
        y: usize,
        st: &ClusterState,
        matrix: &DataMatrix,
    ) -> f64 {
        let ci = &self.clusters[cluster];
        debug_assert!(ci.row_ok, "column query against a stale per-row index");
        let adding = !st.cols.contains(y);
        let sign = if adding { 1.0 } else { -1.0 };

        // Word-block kernel; bit-identical to folding col_specified_in.
        let (t_sum, t_cnt) = if adding {
            matrix.col_stats_in(y, &st.rows)
        } else {
            (st.col_sum(y), st.col_specified(y))
        };

        let new_volume = (st.volume() as i64 + sign as i64 * t_cnt as i64) as usize;
        if new_volume == 0 {
            return 0.0;
        }
        let new_total = st.total() + sign * t_sum;
        let base = new_total / new_volume as f64;

        let old_cb = if st.col_specified(y) > 0 {
            st.col_sum(y) / st.col_specified(y) as f64
        } else {
            0.0 // unused: y then has no stored entries
        };
        let new_cb = if t_cnt == 0 {
            base
        } else {
            t_sum / t_cnt as f64
        };

        let mut sum = 0.0;
        for i in st.rows.iter() {
            let spec = matrix.is_specified(i, y);
            let (mut rs, mut rn) = (st.row_sum(i), st.row_specified(i) as i64);
            let v = matrix.value_unchecked(i, y);
            if spec {
                rs += sign * v;
                rn += sign as i64;
            }
            let row_base = if rn <= 0 { base } else { rs / rn as f64 };
            let w = row_base - base;
            sum += ci.by_row[i].query(w, self.mean);
            if spec {
                if adding {
                    sum += self.mean.entry_term(v - row_base - new_cb + base);
                } else {
                    sum -= self.mean.entry_term((v - old_cb) - w);
                }
            }
        }
        sum / new_volume as f64
    }

    /// First half of a single-row **data** repair: call *before* mutating
    /// any cells of matrix row `row` (the online miner's stream events).
    ///
    /// Membership toggles move rows in and out of `I`; a data repair keeps
    /// `I`/`J` fixed but changes row `row`'s values. The per-column (`s`)
    /// side survives it surgically: `s_ij = d_ij − d_iJ` of every *other*
    /// row is independent of row `row`'s data, so only `row`'s own entries
    /// need to leave the indexes (here, while the pre-mutation sums still
    /// reproduce the stored values) and re-enter in
    /// [`Self::finish_row_update`]. The per-row (`u`) side cannot be saved
    /// — mutating `row` shifts column bases for every member row — so it
    /// is marked stale for the next [`Self::prepare`].
    ///
    /// Clusters that do not contain `row` are untouched: none of their
    /// statistics depend on a non-member row's data.
    pub fn begin_row_update(&mut self, matrix: &DataMatrix, states: &[ClusterState], row: usize) {
        for (ci, st) in self.clusters.iter_mut().zip(states) {
            if !st.rows.contains(row) {
                continue;
            }
            ci.row_ok = false;
            if !ci.col_ok {
                continue; // stale anyway; prepare() will rebuild
            }
            self.repairs += 1;
            if st.row_specified(row) > 0 {
                let rb = st.row_sum(row) / st.row_specified(row) as f64;
                for (j, v) in matrix.row_specified_in(row, &st.cols) {
                    ci.by_col[j].remove(v - rb, row as u32);
                }
            }
        }
    }

    /// Second half of a single-row data repair: call *after* the matrix
    /// mutation **and** after every affected [`ClusterState`] has been
    /// repaired (via [`ClusterState::cell_changed`]), so the post-mutation
    /// sums produce the new invariant residues.
    pub fn finish_row_update(&mut self, matrix: &DataMatrix, states: &[ClusterState], row: usize) {
        for (ci, st) in self.clusters.iter_mut().zip(states) {
            if !st.rows.contains(row) || !ci.col_ok {
                continue;
            }
            if st.row_specified(row) > 0 {
                let rb = st.row_sum(row) / st.row_specified(row) as f64;
                for (j, v) in matrix.row_specified_in(row, &st.cols) {
                    ci.by_col[j].insert(v - rb, row as u32);
                }
            }
        }
    }

    /// Brings the indexes in step with `action`, which the driver is about
    /// to perform. Must be called with the cluster's state *before* the
    /// toggle (the pre-toggle sums reproduce the stored values to remove).
    ///
    /// Repairs the same-side index in place (`O(line · |I or J|)`) and
    /// marks the opposite side stale for the next [`Self::prepare`].
    pub fn apply(&mut self, matrix: &DataMatrix, st: &ClusterState, action: Action) {
        let ci = &mut self.clusters[action.cluster];
        match action.target {
            Target::Row(x) => {
                ci.row_ok = false; // every column base shifts
                if !ci.col_ok {
                    return; // stale anyway; prepare() will rebuild
                }
                self.repairs += 1;
                if st.rows.contains(x) {
                    if st.row_specified(x) > 0 {
                        let rb = st.row_sum(x) / st.row_specified(x) as f64;
                        for (j, v) in matrix.row_specified_in(x, &st.cols) {
                            ci.by_col[j].remove(v - rb, x as u32);
                        }
                    }
                } else {
                    let (t_sum, t_cnt) = matrix.row_stats_in(x, &st.cols);
                    if t_cnt > 0 {
                        let rb = t_sum / t_cnt as f64;
                        for (j, v) in matrix.row_specified_in(x, &st.cols) {
                            ci.by_col[j].insert(v - rb, x as u32);
                        }
                    }
                }
            }
            Target::Col(y) => {
                ci.col_ok = false;
                if !ci.row_ok {
                    return;
                }
                self.repairs += 1;
                if st.cols.contains(y) {
                    if st.col_specified(y) > 0 {
                        let cb = st.col_sum(y) / st.col_specified(y) as f64;
                        for (i, v) in matrix.col_specified_in(y, &st.rows) {
                            ci.by_row[i].remove(v - cb, y as u32);
                        }
                    }
                } else {
                    let (t_sum, t_cnt) = matrix.col_stats_in(y, &st.rows);
                    if t_cnt > 0 {
                        let cb = t_sum / t_cnt as f64;
                        for (i, v) in matrix.col_specified_in(y, &st.rows) {
                            ci.by_row[i].insert(v - cb, y as u32);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::DeltaCluster;
    use crate::stats::Scratch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> DataMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DataMatrix::builder(rows, cols).build();
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    m.set(r, c, rng.gen_range(-50.0..50.0));
                }
            }
        }
        m
    }

    fn assert_close(a: f64, b: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
            "{what}: incremental {a} != exact {b}"
        );
    }

    /// Every virtual toggle from a fresh engine matches the exact scanner.
    #[test]
    fn fresh_engine_matches_exact_scanner() {
        for (seed, density) in [(1u64, 1.0), (2, 0.8), (3, 0.55)] {
            let m = random_matrix(12, 9, density, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
            for mean in [ResidueMean::Arithmetic, ResidueMean::Squared] {
                let row_pick: Vec<usize> = (0..12).filter(|_| rng.gen_bool(0.5)).collect();
                let col_pick: Vec<usize> = (0..9).filter(|_| rng.gen_bool(0.6)).collect();
                let cluster = DeltaCluster::from_indices(12, 9, row_pick, col_pick);
                let st = ClusterState::new(&m, &cluster);
                let engine = IncrementalEngine::build(&m, std::slice::from_ref(&st), mean);
                let mut scratch = Scratch::default();
                for r in 0..12 {
                    let exact = st.residue_if_row_toggled(&m, r, mean, &mut scratch);
                    let incr = engine.toggled_residue(0, Target::Row(r), &st, &m);
                    assert_close(incr, exact, &format!("row {r} ({mean:?}, seed {seed})"));
                }
                for c in 0..9 {
                    let exact = st.residue_if_col_toggled(&m, c, mean, &mut scratch);
                    let incr = engine.toggled_residue(0, Target::Col(c), &st, &m);
                    assert_close(incr, exact, &format!("col {c} ({mean:?}, seed {seed})"));
                }
            }
        }
    }

    /// A random walk of applies with interleaved queries: the engine's
    /// lazy repair/rebuild must track the evolving state exactly.
    #[test]
    fn engine_tracks_a_random_apply_walk() {
        let m = random_matrix(10, 8, 0.85, 7);
        for mean in [ResidueMean::Arithmetic, ResidueMean::Squared] {
            let mut st = ClusterState::new(&m, &DeltaCluster::from_indices(10, 8, 0..5, 0..4));
            let mut engine = IncrementalEngine::build(&m, std::slice::from_ref(&st), mean);
            let mut rng = StdRng::seed_from_u64(99);
            let mut scratch = Scratch::default();
            for step in 0..60 {
                let target = if rng.gen_bool(0.5) {
                    Target::Row(rng.gen_range(0..10))
                } else {
                    Target::Col(rng.gen_range(0..8))
                };
                // Query every candidate of this side first (as the driver
                // does), then apply the drawn toggle.
                engine.prepare(&m, std::slice::from_ref(&st), target.is_row());
                let exact = match target {
                    Target::Row(r) => st.residue_if_row_toggled(&m, r, mean, &mut scratch),
                    Target::Col(c) => st.residue_if_col_toggled(&m, c, mean, &mut scratch),
                };
                let incr = engine.toggled_residue(0, target, &st, &m);
                assert_close(incr, exact, &format!("step {step} {target:?} ({mean:?})"));
                // Keep the cluster non-degenerate for the next step.
                let would_empty = match target {
                    Target::Row(r) => st.rows.contains(r) && st.rows.len() <= 2,
                    Target::Col(c) => st.cols.contains(c) && st.cols.len() <= 2,
                };
                if would_empty {
                    continue;
                }
                engine.apply(&m, &st, Action { target, cluster: 0 });
                match target {
                    Target::Row(r) => st.toggle_row(&m, r),
                    Target::Col(c) => st.toggle_col(&m, c),
                }
            }
        }
    }

    /// Single-row data repair (the online miner's stream path): mutate
    /// cells of one row between `begin_row_update`/`finish_row_update`,
    /// repair the states with `cell_changed`, and every toggled residue
    /// must still match the exact scanner — for member and non-member
    /// rows, updates, deletes, and appends.
    #[test]
    fn engine_survives_single_row_data_repairs() {
        for mean in [ResidueMean::Arithmetic, ResidueMean::Squared] {
            let mut m = random_matrix(12, 9, 0.8, 21);
            let mut states = vec![
                ClusterState::new(&m, &DeltaCluster::from_indices(12, 9, 0..6, 0..5)),
                ClusterState::new(
                    &m,
                    &DeltaCluster::from_indices(12, 9, [2, 5, 7, 9], [1, 4, 6, 8]),
                ),
            ];
            let mut engine = IncrementalEngine::build(&m, &states, mean);
            let mut rng = StdRng::seed_from_u64(77);
            let mut scratch = Scratch::default();

            for step in 0..25 {
                let row = rng.gen_range(0..12);
                engine.begin_row_update(&m, &states, row);
                // Mutate up to three cells of the row: update / delete /
                // append, drawn at random.
                for _ in 0..rng.gen_range(1..=3) {
                    let col = rng.gen_range(0..9);
                    let new = match rng.gen_range(0..3u32) {
                        0 => None,
                        _ => Some(rng.gen_range(-50.0..50.0)),
                    };
                    let old = match new {
                        Some(v) => {
                            let old = m.get(row, col);
                            m.set(row, col, v);
                            old
                        }
                        None => m.unset(row, col),
                    };
                    for st in &mut states {
                        st.cell_changed(row, col, old, new);
                    }
                }
                engine.finish_row_update(&m, &states, row);

                // Row queries answer from the repaired per-column side.
                for (k, st) in states.iter().enumerate() {
                    for r in 0..12 {
                        let exact = st.residue_if_row_toggled(&m, r, mean, &mut scratch);
                        let incr = engine.toggled_residue(k, Target::Row(r), st, &m);
                        assert_close(incr, exact, &format!("step {step} cluster {k} row {r}"));
                    }
                }
                // Column queries need the lazily rebuilt per-row side.
                engine.prepare(&m, &states, false);
                for (k, st) in states.iter().enumerate() {
                    for c in 0..9 {
                        let exact = st.residue_if_col_toggled(&m, c, mean, &mut scratch);
                        let incr = engine.toggled_residue(k, Target::Col(c), st, &m);
                        assert_close(incr, exact, &format!("step {step} cluster {k} col {c}"));
                    }
                }
                // And the repaired states must still match a rebuild.
                for st in &states {
                    let rebuilt = ClusterState::new(&m, &st.to_cluster());
                    assert_eq!(st.volume(), rebuilt.volume());
                    assert!((st.total() - rebuilt.total()).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn maintenance_counters_track_repairs_and_rebuilds() {
        let m = random_matrix(10, 8, 0.9, 11);
        let mut st = ClusterState::new(&m, &DeltaCluster::from_indices(10, 8, 0..5, 0..4));
        let mut engine =
            IncrementalEngine::build(&m, std::slice::from_ref(&st), ResidueMean::Arithmetic);
        assert_eq!(engine.counters(), (0, 0), "fresh build starts clean");

        // A row apply repairs the per-column side in place…
        engine.apply(
            &m,
            &st,
            Action {
                target: Target::Row(7),
                cluster: 0,
            },
        );
        st.toggle_row(&m, 7);
        assert_eq!(engine.counters(), (0, 1));

        // …and marks the per-row side stale, so a column-side prepare
        // performs one lazy rebuild.
        engine.prepare(&m, std::slice::from_ref(&st), false);
        assert_eq!(engine.counters(), (1, 1));
        // Preparing a clean side is a no-op.
        engine.prepare(&m, std::slice::from_ref(&st), false);
        assert_eq!(engine.counters(), (1, 1));
    }

    #[test]
    fn kind_resolution() {
        let small = DataMatrix::builder(10, 10).build();
        let large = DataMatrix::builder(200, 50).build();
        assert!(!GainEngineKind::Auto.use_incremental(&small));
        assert!(GainEngineKind::Auto.use_incremental(&large));
        assert!(!GainEngineKind::Exact.use_incremental(&large));
        assert!(GainEngineKind::Incremental.use_incremental(&small));
        assert_eq!(GainEngineKind::default(), GainEngineKind::Auto);
        assert_eq!(GainEngineKind::Incremental.to_string(), "incremental");
    }

    #[test]
    fn dim_index_queries_match_naive() {
        let mut d = DimIndex::default();
        for (i, v) in [3.0, -1.5, 0.0, 7.25, -1.5, 2.0].iter().enumerate() {
            d.push(*v, i as u32);
        }
        d.finish();
        for t in [-3.0, -1.5, 0.0, 1.9, 7.25, 10.0] {
            let naive_abs: f64 = d.vals.iter().map(|&s| (s - t).abs()).sum();
            let naive_sq: f64 = d.vals.iter().map(|&s| (s - t) * (s - t)).sum();
            assert!((d.query(t, ResidueMean::Arithmetic) - naive_abs).abs() < 1e-12);
            assert!((d.query(t, ResidueMean::Squared) - naive_sq).abs() < 1e-12);
        }
        assert_eq!(DimIndex::default().query(1.0, ResidueMean::Arithmetic), 0.0);
    }

    #[test]
    fn dim_index_insert_remove_roundtrip() {
        let mut d = DimIndex::default();
        d.push(1.0, 4);
        d.push(-2.0, 1);
        d.push(1.0, 2);
        d.finish();
        d.insert(0.5, 9);
        d.insert(1.0, 3); // tie on value, id orders it between 2 and 4
        assert_eq!(d.ids, vec![1, 9, 2, 3, 4]);
        d.remove(1.0, 3);
        d.remove(-2.0, 1);
        assert_eq!(d.ids, vec![9, 2, 4]);
        let naive: f64 = d.vals.iter().map(|&s| (s - 0.3).abs()).sum();
        assert!((d.query(0.3, ResidueMean::Arithmetic) - naive).abs() < 1e-12);
    }
}
