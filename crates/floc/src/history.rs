//! Results and per-iteration traces of a FLOC run.

use crate::cluster::DeltaCluster;
use dc_matrix::DataMatrix;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// What happened during one phase-2 iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationTrace {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Average residue of the best prefix clustering found this iteration.
    pub best_prefix_avg: f64,
    /// How many actions the best prefix contains.
    pub best_prefix_len: usize,
    /// How many actions were actually performed (excludes blocked ones).
    pub actions_performed: usize,
    /// Whether the iteration improved on the incumbent best clustering.
    pub improved: bool,
}

/// Why a FLOC run stopped.
///
/// Every run stops for exactly one of these reasons; budget- and
/// interrupt-stopped runs still return the best clustering found so far
/// (graceful degradation), so callers must check this field to know whether
/// the result is fully converged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The loop reached an iteration that no longer improved the objective.
    Converged,
    /// `max_iterations` was exhausted before convergence.
    MaxIterations,
    /// The wall-clock `time_budget` elapsed.
    Budget,
    /// The cooperative interrupt flag was raised (e.g. ctrl-c).
    Interrupted,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::Converged => "converged",
            StopReason::MaxIterations => "max-iterations",
            StopReason::Budget => "budget",
            StopReason::Interrupted => "interrupted",
        })
    }
}

/// The outcome of a FLOC run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlocResult {
    /// The k discovered δ-clusters.
    pub clusters: Vec<DeltaCluster>,
    /// Residue of each cluster, index-aligned with `clusters`.
    pub residues: Vec<f64>,
    /// Average residue across clusters — the objective FLOC minimizes.
    pub avg_residue: f64,
    /// Number of phase-2 iterations executed (including the final
    /// non-improving one that triggered termination).
    pub iterations: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-iteration statistics.
    pub trace: Vec<IterationTrace>,
    /// Why the run stopped (converged, capped, out of budget, interrupted).
    pub stop_reason: StopReason,
}

impl FlocResult {
    /// Volumes (specified entries) of each cluster.
    pub fn volumes(&self, matrix: &DataMatrix) -> Vec<usize> {
        self.clusters.iter().map(|c| c.volume(matrix)).collect()
    }

    /// Total volume across all clusters (overlapping entries counted once
    /// per cluster, matching the paper's "aggregated volume").
    pub fn aggregate_volume(&self, matrix: &DataMatrix) -> usize {
        self.volumes(matrix).iter().sum()
    }

    /// The cluster with the lowest residue, with its index.
    /// Returns `None` when the result is empty.
    pub fn best_cluster(&self) -> Option<(usize, &DeltaCluster)> {
        self.residues
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| (i, &self.clusters[i]))
    }

    /// A compact human-readable summary (one line per cluster).
    pub fn summary(&self, matrix: &DataMatrix) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "FLOC: {} clusters, avg residue {:.4}, {} iterations, {:.2?}, stopped: {}",
            self.clusters.len(),
            self.avg_residue,
            self.iterations,
            self.elapsed,
            self.stop_reason
        );
        for (i, c) in self.clusters.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{i}: {} rows x {} cols, volume {}, residue {:.4}",
                c.row_count(),
                c.col_count(),
                c.volume(matrix),
                self.residues[i]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(clusters: Vec<DeltaCluster>, residues: Vec<f64>) -> FlocResult {
        let avg = residues.iter().sum::<f64>() / residues.len() as f64;
        FlocResult {
            clusters,
            residues,
            avg_residue: avg,
            iterations: 3,
            elapsed: Duration::from_millis(5),
            trace: vec![],
            stop_reason: StopReason::Converged,
        }
    }

    #[test]
    fn volumes_and_aggregate() {
        let m = DataMatrix::builder(3, 3).from_rows((0..9).map(|x| x as f64).collect());
        let r = result_with(
            vec![
                DeltaCluster::from_indices(3, 3, [0, 1], [0, 1]),
                DeltaCluster::from_indices(3, 3, [1, 2], [0, 1, 2]),
            ],
            vec![0.5, 0.2],
        );
        assert_eq!(r.volumes(&m), vec![4, 6]);
        assert_eq!(r.aggregate_volume(&m), 10);
    }

    #[test]
    fn best_cluster_picks_min_residue() {
        let r = result_with(
            vec![
                DeltaCluster::from_indices(2, 2, [0], [0]),
                DeltaCluster::from_indices(2, 2, [1], [1]),
            ],
            vec![0.5, 0.2],
        );
        assert_eq!(r.best_cluster().unwrap().0, 1);
    }

    #[test]
    fn best_cluster_of_empty_result_is_none() {
        let r = result_with(vec![], vec![]);
        assert!(r.best_cluster().is_none());
    }

    #[test]
    fn summary_mentions_each_cluster() {
        let m = DataMatrix::builder(2, 2).from_rows(vec![1.0, 2.0, 3.0, 4.0]);
        let r = result_with(
            vec![DeltaCluster::from_indices(2, 2, [0, 1], [0, 1])],
            vec![0.25],
        );
        let s = r.summary(&m);
        assert!(s.contains("#0"));
        assert!(s.contains("volume 4"));
    }

    #[test]
    fn result_serializes() {
        let r = result_with(vec![DeltaCluster::from_indices(2, 2, [0], [1])], vec![0.1]);
        let json = serde_json::to_string(&r).unwrap();
        let back: FlocResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.clusters, r.clusters);
        assert_eq!(back.avg_residue, r.avg_residue);
    }
}
