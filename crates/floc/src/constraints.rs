//! User-specified clustering constraints (§3 `Cons_o`, `Cons_c`, `Cons_v`
//! and the §4.3 blocking mechanism).
//!
//! The paper extends the basic model with three optional constraint
//! families: a bound on the **overlap** between any pair of clusters, a
//! **coverage** requirement (every object/attribute belongs to some
//! cluster), and **volume** bounds on individual clusters. FLOC enforces
//! them by *blocking*: an action whose result would violate a constraint is
//! assigned gain `−∞` for the iteration and is never performed, so the final
//! clustering satisfies every constraint the seeds satisfied.

use crate::action::{Action, Target};
use crate::stats::ClusterState;
use dc_matrix::DataMatrix;
use serde::{Deserialize, Serialize};

/// A single constraint on the clustering. All constraints are checked
/// against the *post-action* state of the clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// `Cons_o`: for every pair of clusters, the shared footprint
    /// `|I₁∩I₂|·|J₁∩J₂|` may be at most `fraction` of the smaller cluster's
    /// footprint. `fraction = 0` forbids any overlap.
    MaxOverlap {
        /// Maximum allowed overlap fraction in `[0, 1]`.
        fraction: f64,
    },
    /// `Cons_c` over objects: blocks removing a row from the only cluster
    /// that still contains it.
    RowCoverage,
    /// `Cons_c` over attributes: blocks removing a column from the only
    /// cluster that still contains it.
    ColCoverage,
    /// `Cons_v` lower bound: a cluster's volume (specified entries) must not
    /// drop below `cells`.
    MinVolume {
        /// Minimum number of specified entries.
        cells: usize,
    },
    /// `Cons_v` upper bound: a cluster's volume must not exceed `cells`.
    MaxVolume {
        /// Maximum number of specified entries.
        cells: usize,
    },
}

/// Specified-entry count that `target` would contribute to (or withdraw
/// from) `state`.
fn target_specified(matrix: &DataMatrix, state: &ClusterState, target: Target) -> usize {
    let member = match target {
        Target::Row(r) => state.rows.contains(r),
        Target::Col(c) => state.cols.contains(c),
    };
    if member {
        match target {
            Target::Row(r) => state.row_specified(r) as usize,
            Target::Col(c) => state.col_specified(c) as usize,
        }
    } else {
        match target {
            Target::Row(r) => state
                .cols
                .iter()
                .filter(|&c| matrix.is_specified(r, c))
                .count(),
            Target::Col(c) => state
                .rows
                .iter()
                .filter(|&r| matrix.is_specified(r, c))
                .count(),
        }
    }
}

impl Constraint {
    /// True if performing `action` keeps the clustering within this
    /// constraint.
    pub fn allows(&self, matrix: &DataMatrix, states: &[ClusterState], action: Action) -> bool {
        let state = &states[action.cluster];
        let adding = match action.target {
            Target::Row(r) => !state.rows.contains(r),
            Target::Col(c) => !state.cols.contains(c),
        };
        match *self {
            Constraint::MaxOverlap { fraction } => {
                // Both additions *and* removals can raise the overlap
                // fraction: an addition grows the shared cell count, while a
                // removal shrinks the acting cluster's footprint (the
                // denominator). Check the post-action state either way.
                let delta: i64 = if adding { 1 } else { -1 };
                let (mut ni, mut nj) = (state.rows.len() as i64, state.cols.len() as i64);
                match action.target {
                    Target::Row(_) => ni += delta,
                    Target::Col(_) => nj += delta,
                }
                let my_footprint = (ni * nj).max(0);
                for (idx, other) in states.iter().enumerate() {
                    if idx == action.cluster {
                        continue;
                    }
                    let mut shared_rows = state.rows.intersection_len(&other.rows) as i64;
                    let mut shared_cols = state.cols.intersection_len(&other.cols) as i64;
                    match action.target {
                        Target::Row(r) => {
                            if other.rows.contains(r) {
                                shared_rows += delta;
                            }
                        }
                        Target::Col(c) => {
                            if other.cols.contains(c) {
                                shared_cols += delta;
                            }
                        }
                    }
                    let shared = (shared_rows * shared_cols).max(0);
                    let denom = my_footprint.min((other.rows.len() * other.cols.len()) as i64);
                    if denom > 0 && shared as f64 > fraction * denom as f64 + 1e-9 {
                        return false;
                    }
                }
                true
            }
            Constraint::RowCoverage => {
                if adding {
                    return true;
                }
                match action.target {
                    Target::Row(r) => states
                        .iter()
                        .enumerate()
                        .any(|(idx, s)| idx != action.cluster && s.rows.contains(r)),
                    Target::Col(_) => true,
                }
            }
            Constraint::ColCoverage => {
                if adding {
                    return true;
                }
                match action.target {
                    Target::Col(c) => states
                        .iter()
                        .enumerate()
                        .any(|(idx, s)| idx != action.cluster && s.cols.contains(c)),
                    Target::Row(_) => true,
                }
            }
            Constraint::MinVolume { cells } => {
                if adding {
                    return true;
                }
                let delta = target_specified(matrix, state, action.target);
                state.volume().saturating_sub(delta) >= cells
            }
            Constraint::MaxVolume { cells } => {
                if !adding {
                    return true;
                }
                let delta = target_specified(matrix, state, action.target);
                state.volume() + delta <= cells
            }
        }
    }

    /// True if the clustering as a whole currently satisfies the constraint
    /// (used to validate seeds and final results).
    pub fn satisfied(&self, _matrix: &DataMatrix, states: &[ClusterState]) -> bool {
        match *self {
            Constraint::MaxOverlap { fraction } => {
                for (i, a) in states.iter().enumerate() {
                    for b in states.iter().skip(i + 1) {
                        let shared =
                            a.rows.intersection_len(&b.rows) * a.cols.intersection_len(&b.cols);
                        let denom = (a.rows.len() * a.cols.len()).min(b.rows.len() * b.cols.len());
                        if denom > 0 && shared as f64 > fraction * denom as f64 + 1e-9 {
                            return false;
                        }
                    }
                }
                true
            }
            Constraint::RowCoverage => {
                let m = states.first().map_or(0, |s| s.rows.capacity());
                (0..m).all(|r| states.iter().any(|s| s.rows.contains(r)))
            }
            Constraint::ColCoverage => {
                let n = states.first().map_or(0, |s| s.cols.capacity());
                (0..n).all(|c| states.iter().any(|s| s.cols.contains(c)))
            }
            Constraint::MinVolume { cells } => states.iter().all(|s| s.volume() >= cells),
            Constraint::MaxVolume { cells } => states.iter().all(|s| s.volume() <= cells),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::DeltaCluster;

    fn matrix() -> DataMatrix {
        DataMatrix::builder(4, 4).from_rows((0..16).map(|i| i as f64).collect())
    }

    fn states(m: &DataMatrix, specs: &[(&[usize], &[usize])]) -> Vec<ClusterState> {
        specs
            .iter()
            .map(|(r, c)| {
                ClusterState::new(
                    m,
                    &DeltaCluster::from_indices(
                        m.rows(),
                        m.cols(),
                        r.iter().copied(),
                        c.iter().copied(),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn max_overlap_blocks_growing_into_another_cluster() {
        let m = matrix();
        // Two clusters sharing rows {1} and cols {1}: overlap 1 cell.
        let st = states(&m, &[(&[0, 1], &[0, 1]), (&[1, 2], &[1, 2])]);
        let c = Constraint::MaxOverlap { fraction: 0.25 };
        // Current overlap = 1 cell / footprint 4 = 0.25: satisfied.
        assert!(c.satisfied(&m, &st));
        // Adding row 2 to cluster 0 would make shared rows {1,2}, shared
        // cols {1} → 2 cells over min footprint 4 → 0.5 > 0.25: blocked.
        let act = Action {
            target: Target::Row(2),
            cluster: 0,
        };
        assert!(!c.allows(&m, &st, act));
        // A removal is always allowed.
        let rm = Action {
            target: Target::Row(1),
            cluster: 0,
        };
        assert!(c.allows(&m, &st, rm));
        // Adding a non-shared row is fine.
        let ok = Action {
            target: Target::Row(3),
            cluster: 0,
        };
        assert!(c.allows(&m, &st, ok));
    }

    #[test]
    fn zero_overlap_forbids_any_shared_cell() {
        let m = matrix();
        let st = states(&m, &[(&[0], &[0, 1]), (&[1], &[0, 1])]);
        let c = Constraint::MaxOverlap { fraction: 0.0 };
        assert!(c.satisfied(&m, &st), "disjoint rows → zero shared cells");
        // Adding row 1 to cluster 0 creates overlap.
        assert!(!c.allows(
            &m,
            &st,
            Action {
                target: Target::Row(1),
                cluster: 0
            }
        ));
    }

    #[test]
    fn row_coverage_blocks_orphaning_removals() {
        let m = matrix();
        let st = states(&m, &[(&[0, 1], &[0, 1]), (&[1, 2], &[2, 3])]);
        let c = Constraint::RowCoverage;
        // Row 0 is only in cluster 0: removal blocked.
        assert!(!c.allows(
            &m,
            &st,
            Action {
                target: Target::Row(0),
                cluster: 0
            }
        ));
        // Row 1 is in both: removal from either is allowed.
        assert!(c.allows(
            &m,
            &st,
            Action {
                target: Target::Row(1),
                cluster: 0
            }
        ));
        // Column actions are unconstrained by RowCoverage.
        assert!(c.allows(
            &m,
            &st,
            Action {
                target: Target::Col(0),
                cluster: 0
            }
        ));
        // Additions always allowed.
        assert!(c.allows(
            &m,
            &st,
            Action {
                target: Target::Row(3),
                cluster: 0
            }
        ));
    }

    #[test]
    fn col_coverage_mirrors_row_coverage() {
        let m = matrix();
        let st = states(&m, &[(&[0, 1], &[0, 1]), (&[1, 2], &[1, 2])]);
        let c = Constraint::ColCoverage;
        assert!(!c.allows(
            &m,
            &st,
            Action {
                target: Target::Col(0),
                cluster: 0
            }
        ));
        assert!(c.allows(
            &m,
            &st,
            Action {
                target: Target::Col(1),
                cluster: 0
            }
        ));
    }

    #[test]
    fn coverage_satisfied_checks_all_indices() {
        let m = matrix();
        let full = states(&m, &[(&[0, 1], &[0, 1, 2, 3]), (&[2, 3], &[0, 1])]);
        assert!(Constraint::RowCoverage.satisfied(&m, &full));
        assert!(Constraint::ColCoverage.satisfied(&m, &full));
        let partial = states(&m, &[(&[0, 1], &[0, 1])]);
        assert!(!Constraint::RowCoverage.satisfied(&m, &partial));
        assert!(!Constraint::ColCoverage.satisfied(&m, &partial));
    }

    #[test]
    fn min_volume_blocks_shrinking_below_floor() {
        let m = matrix();
        let st = states(&m, &[(&[0, 1], &[0, 1])]); // volume 4
        let c = Constraint::MinVolume { cells: 3 };
        // Removing a row drops volume to 2: blocked.
        assert!(!c.allows(
            &m,
            &st,
            Action {
                target: Target::Row(0),
                cluster: 0
            }
        ));
        // Additions always allowed.
        assert!(c.allows(
            &m,
            &st,
            Action {
                target: Target::Row(2),
                cluster: 0
            }
        ));
        assert!(c.satisfied(&m, &st));
        assert!(!Constraint::MinVolume { cells: 5 }.satisfied(&m, &st));
    }

    #[test]
    fn max_volume_blocks_growing_above_ceiling() {
        let m = matrix();
        let st = states(&m, &[(&[0, 1], &[0, 1])]); // volume 4
        let c = Constraint::MaxVolume { cells: 5 };
        // Adding a row adds 2 specified cells → 6 > 5: blocked.
        assert!(!c.allows(
            &m,
            &st,
            Action {
                target: Target::Row(2),
                cluster: 0
            }
        ));
        // Removal allowed.
        assert!(c.allows(
            &m,
            &st,
            Action {
                target: Target::Row(0),
                cluster: 0
            }
        ));
        assert!(c.satisfied(&m, &st));
    }

    #[test]
    fn volume_accounts_for_missing_entries() {
        let mut m = matrix();
        m.unset(2, 0);
        m.unset(2, 1);
        let st = states(&m, &[(&[0, 1], &[0, 1])]); // volume 4
                                                    // Row 2 has no specified cells in cols {0,1}: adding it changes
                                                    // volume by 0, so MaxVolume{4} still allows it.
        let c = Constraint::MaxVolume { cells: 4 };
        assert!(c.allows(
            &m,
            &st,
            Action {
                target: Target::Row(2),
                cluster: 0
            }
        ));
    }
}
