//! Action-ordering strategies (§5.2).
//!
//! Within an iteration the `N + M` best actions are performed sequentially,
//! and the order matters: a run of negative-gain actions early in a fixed
//! order can permanently starve the positive-gain actions behind them. The
//! paper proposes three strategies:
//!
//! * **Fixed** — rows `0..N` then columns `0..M`, identical every iteration.
//! * **Random** — `g = 2(M+N)` random pair swaps, giving every action the
//!   same chance at every position (§5.2.1; the paper found `g ≥ 2(M+N)`
//!   gives satisfactory randomness).
//! * **Weighted random** — the same swap process, but a swap of `(a_i, a_j)`
//!   (with `a_i` in front) happens with probability
//!   `p(i,j) = 0.5 + (g_j − g_i) / (2Γ)` where `Γ` is the spread between the
//!   maximum and minimum gain (§5.2.2). Larger-gain actions drift to the
//!   front, but not deterministically — preserving the ability to escape
//!   local optima.

use crate::action::EvaluatedAction;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which §5.2 strategy orders the actions of an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Ordering {
    /// Rows first, then columns, in index order — the §4 baseline.
    Fixed,
    /// Uniform random permutation via `2(M+N)` pair swaps.
    Random,
    /// Gain-weighted random order — the paper's best performer.
    #[default]
    Weighted,
}

/// Number of swap attempts the random/weighted shuffles perform for a list
/// of `len` actions (the paper's `g = 2 × (M + N)`).
pub fn swap_count(len: usize) -> usize {
    2 * len
}

/// Orders `actions` in place according to `strategy`.
///
/// Blocked actions (gain `−∞`) participate in the shuffle like any other;
/// the driver skips them at application time.
pub fn order_actions<R: Rng>(actions: &mut [EvaluatedAction], strategy: Ordering, rng: &mut R) {
    match strategy {
        Ordering::Fixed => {}
        Ordering::Random => {
            let n = actions.len();
            if n < 2 {
                return;
            }
            for _ in 0..swap_count(n) {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                actions.swap(i, j);
            }
        }
        Ordering::Weighted => {
            let n = actions.len();
            if n < 2 {
                return;
            }
            // Γ: spread of finite gains. Blocked actions (−∞) are treated as
            // the minimum finite gain for weighting purposes.
            let mut min_g = f64::INFINITY;
            let mut max_g = f64::NEG_INFINITY;
            for a in actions.iter() {
                if a.gain.is_finite() {
                    min_g = min_g.min(a.gain);
                    max_g = max_g.max(a.gain);
                }
            }
            if !min_g.is_finite() || max_g <= min_g {
                // All gains equal (or all blocked): degenerate to uniform.
                return order_actions(actions, Ordering::Random, rng);
            }
            let spread = max_g - min_g;
            let effective = |g: f64| if g.is_finite() { g } else { min_g };
            for _ in 0..swap_count(n) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a == b {
                    continue;
                }
                let (front, back) = (a.min(b), a.max(b));
                let g_front = effective(actions[front].gain);
                let g_back = effective(actions[back].gain);
                // Swap probability 0.5 + (g_back − g_front) / (2Γ):
                // 1.0 when the back action has the maximum gain and the
                // front the minimum; 0.0 in the opposite case; 0.5 on ties.
                let p = 0.5 + (g_back - g_front) / (2.0 * spread);
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    actions.swap(front, back);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Target};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_actions(gains: &[f64]) -> Vec<EvaluatedAction> {
        gains
            .iter()
            .enumerate()
            .map(|(i, &g)| EvaluatedAction {
                action: Action {
                    target: Target::Row(i),
                    cluster: 0,
                },
                gain: g,
            })
            .collect()
    }

    fn positions(actions: &[EvaluatedAction]) -> Vec<usize> {
        actions.iter().map(|a| a.action.target.index()).collect()
    }

    #[test]
    fn fixed_order_is_identity() {
        let mut a = make_actions(&[3.0, 1.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(1);
        order_actions(&mut a, Ordering::Fixed, &mut rng);
        assert_eq!(positions(&a), vec![0, 1, 2]);
    }

    #[test]
    fn random_order_is_a_permutation() {
        let gains: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut a = make_actions(&gains);
        let mut rng = StdRng::seed_from_u64(7);
        order_actions(&mut a, Ordering::Random, &mut rng);
        let mut p = positions(&a);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn random_order_actually_shuffles() {
        let gains: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut a = make_actions(&gains);
        let mut rng = StdRng::seed_from_u64(42);
        order_actions(&mut a, Ordering::Random, &mut rng);
        assert_ne!(
            positions(&a),
            (0..100).collect::<Vec<_>>(),
            "100 elements staying put is ~impossible"
        );
    }

    #[test]
    fn weighted_order_moves_high_gains_forward_on_average() {
        // One action with a much larger gain should, on average over many
        // seeds, end up earlier than the uniform-random expectation (middle).
        let n = 60;
        let mut gains = vec![0.0; n];
        gains[n - 1] = 100.0; // the big one starts at the very back
        let trials = 200;
        let mut pos_sum = 0usize;
        for seed in 0..trials {
            let mut a = make_actions(&gains);
            let mut rng = StdRng::seed_from_u64(seed);
            order_actions(&mut a, Ordering::Weighted, &mut rng);
            pos_sum += positions(&a).iter().position(|&p| p == n - 1).unwrap();
        }
        let avg = pos_sum as f64 / trials as f64;
        assert!(
            avg < n as f64 / 2.0 - 5.0,
            "high-gain action should drift to the front: average position {avg} of {n}"
        );
    }

    #[test]
    fn weighted_degenerates_gracefully_on_equal_gains() {
        let mut a = make_actions(&[1.0; 20]);
        let mut rng = StdRng::seed_from_u64(3);
        order_actions(&mut a, Ordering::Weighted, &mut rng);
        let mut p = positions(&a);
        p.sort_unstable();
        assert_eq!(p, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_handles_blocked_actions() {
        let mut a = make_actions(&[1.0, f64::NEG_INFINITY, 5.0, f64::NEG_INFINITY]);
        let mut rng = StdRng::seed_from_u64(11);
        order_actions(&mut a, Ordering::Weighted, &mut rng);
        let mut p = positions(&a);
        p.sort_unstable();
        assert_eq!(p, vec![0, 1, 2, 3], "all actions survive the shuffle");
    }

    #[test]
    fn empty_and_singleton_lists_are_noops() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut empty: Vec<EvaluatedAction> = vec![];
        order_actions(&mut empty, Ordering::Random, &mut rng);
        let mut one = make_actions(&[1.0]);
        order_actions(&mut one, Ordering::Weighted, &mut rng);
        assert_eq!(positions(&one), vec![0]);
    }

    #[test]
    fn swap_count_matches_paper() {
        assert_eq!(swap_count(10), 20);
        assert_eq!(swap_count(0), 0);
    }
}
