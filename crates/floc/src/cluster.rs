//! The δ-cluster: a pair (I, J) of object and attribute subsets.
//!
//! Definition 3.1 of the paper: a δ-cluster of occupancy `α` is a pair
//! `(I, J)`, `I ⊆ {1..M}`, `J ⊆ {1..N}`, such that every object `i ∈ I` has
//! at least `α·|J|` specified attributes inside the cluster and every
//! attribute `j ∈ J` is specified for at least `α·|I|` of the cluster's
//! objects. The *volume* (Definition 3.2) is the number of specified entries
//! of the submatrix.

use dc_matrix::{BitSet, DataMatrix};
use serde::{Deserialize, Serialize};

/// A δ-cluster descriptor: which objects (rows) and attributes (columns)
/// participate. Quality metrics live in [`crate::stats::ClusterState`]; this
/// type is the plain, serializable result representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaCluster {
    /// Participating object (row) indices.
    pub rows: BitSet,
    /// Participating attribute (column) indices.
    pub cols: BitSet,
}

impl DeltaCluster {
    /// Creates an empty cluster over an `m × n` matrix universe.
    pub fn empty(m: usize, n: usize) -> Self {
        DeltaCluster {
            rows: BitSet::new(m),
            cols: BitSet::new(n),
        }
    }

    /// Creates a cluster from explicit index lists.
    pub fn from_indices(
        m: usize,
        n: usize,
        rows: impl IntoIterator<Item = usize>,
        cols: impl IntoIterator<Item = usize>,
    ) -> Self {
        DeltaCluster {
            rows: BitSet::from_indices(m, rows),
            cols: BitSet::from_indices(n, cols),
        }
    }

    /// Number of participating objects.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of participating attributes.
    pub fn col_count(&self) -> usize {
        self.cols.len()
    }

    /// Definition 3.2: the number of **specified** entries in the submatrix.
    pub fn volume(&self, matrix: &DataMatrix) -> usize {
        let cols: Vec<usize> = self.cols.iter().collect();
        self.rows
            .iter()
            .map(|r| cols.iter().filter(|&&c| matrix.is_specified(r, c)).count())
            .sum()
    }

    /// The footprint `|I| × |J|` — what the volume would be with no missing
    /// entries.
    pub fn footprint(&self) -> usize {
        self.rows.len() * self.cols.len()
    }

    /// Occupancy of object `row` inside the cluster: specified attributes of
    /// the row within `J`, divided by `|J|`. Returns 1.0 for an empty `J`.
    pub fn row_occupancy(&self, matrix: &DataMatrix, row: usize) -> f64 {
        if self.cols.is_empty() {
            return 1.0;
        }
        let specified = self
            .cols
            .iter()
            .filter(|&c| matrix.is_specified(row, c))
            .count();
        specified as f64 / self.cols.len() as f64
    }

    /// Occupancy of attribute `col` inside the cluster.
    pub fn col_occupancy(&self, matrix: &DataMatrix, col: usize) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let specified = self
            .rows
            .iter()
            .filter(|&r| matrix.is_specified(r, col))
            .count();
        specified as f64 / self.rows.len() as f64
    }

    /// Definition 3.1: true if every participating row and column meets the
    /// occupancy threshold `alpha`.
    pub fn satisfies_occupancy(&self, matrix: &DataMatrix, alpha: f64) -> bool {
        self.rows
            .iter()
            .all(|r| self.row_occupancy(matrix, r) >= alpha - 1e-12)
            && self
                .cols
                .iter()
                .all(|c| self.col_occupancy(matrix, c) >= alpha - 1e-12)
    }

    /// Number of cells shared with another cluster (footprint overlap):
    /// `|I₁∩I₂| · |J₁∩J₂|`.
    pub fn overlap_cells(&self, other: &DeltaCluster) -> usize {
        self.rows.intersection_len(&other.rows) * self.cols.intersection_len(&other.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3×4 example matrices of Figure 3 in the paper.
    fn fig3_not_a_cluster() -> DataMatrix {
        DataMatrix::builder(3, 4).from_options(vec![
            Some(1.0),
            None,
            Some(3.0),
            None,
            None,
            Some(4.0),
            None,
            Some(5.0),
            Some(3.0),
            None,
            Some(4.0),
            None,
        ])
    }

    fn fig3_a_cluster() -> DataMatrix {
        // Figure 3(b): every row has 3 of 4 attributes specified and every
        // column is specified for at least 2 of 3 objects.
        DataMatrix::builder(3, 4).from_options(vec![
            Some(1.0),
            None,
            Some(3.0),
            Some(3.0),
            Some(3.0),
            Some(4.0),
            None,
            Some(5.0),
            None,
            Some(3.0),
            Some(4.0),
            Some(4.0),
        ])
    }

    #[test]
    fn figure3_occupancy_check() {
        // With α = 0.6, (a) is not a δ-cluster but (b) is.
        let all = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        assert!(!all.satisfies_occupancy(&fig3_not_a_cluster(), 0.6));
        assert!(all.satisfies_occupancy(&fig3_a_cluster(), 0.6));
    }

    #[test]
    fn figure3_volumes() {
        let all = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        assert_eq!(all.volume(&fig3_not_a_cluster()), 6);
        assert_eq!(all.volume(&fig3_a_cluster()), 9);
        assert_eq!(all.footprint(), 12);
    }

    #[test]
    fn occupancy_per_dimension() {
        let m = fig3_a_cluster();
        let all = DeltaCluster::from_indices(3, 4, 0..3, 0..4);
        assert!((all.row_occupancy(&m, 0) - 0.75).abs() < 1e-12);
        assert!((all.col_occupancy(&m, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((all.col_occupancy(&m, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_of_empty_dimensions_is_one() {
        let m = DataMatrix::builder(3, 4).build();
        let empty = DeltaCluster::empty(3, 4);
        assert_eq!(empty.row_occupancy(&m, 0), 1.0);
        assert_eq!(empty.col_occupancy(&m, 0), 1.0);
        assert!(empty.satisfies_occupancy(&m, 0.9));
    }

    #[test]
    fn fully_specified_cluster_always_satisfies_alpha_one() {
        let m = DataMatrix::builder(2, 2).from_rows(vec![1.0, 2.0, 3.0, 4.0]);
        let c = DeltaCluster::from_indices(2, 2, 0..2, 0..2);
        assert!(c.satisfies_occupancy(&m, 1.0));
        assert_eq!(c.volume(&m), 4);
    }

    #[test]
    fn overlap_cells_multiplies_intersections() {
        let a = DeltaCluster::from_indices(10, 10, [0, 1, 2], [0, 1]);
        let b = DeltaCluster::from_indices(10, 10, [1, 2, 3], [1, 2]);
        // rows ∩ = {1,2}, cols ∩ = {1} → 2 cells
        assert_eq!(a.overlap_cells(&b), 2);
        assert_eq!(b.overlap_cells(&a), 2);
        let disjoint = DeltaCluster::from_indices(10, 10, [9], [9]);
        assert_eq!(a.overlap_cells(&disjoint), 0);
    }

    #[test]
    fn from_indices_and_counts() {
        let c = DeltaCluster::from_indices(5, 6, [0, 4], [1, 2, 5]);
        assert_eq!(c.row_count(), 2);
        assert_eq!(c.col_count(), 3);
        assert_eq!(c.footprint(), 6);
    }
}
