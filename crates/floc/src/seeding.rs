//! Phase-1 seeding: constructing the `k` initial clusters.
//!
//! §4.1: each row and column joins an initial cluster independently with
//! probability `p`, so a seed holds `≈ p·M` rows and `≈ p·N` columns. §5.1
//! observes that convergence is fastest when seed volumes resemble the
//! (unknown) target volumes and therefore recommends *mixed* seeds of
//! different sizes; Figure 9 additionally seeds with explicit per-cluster
//! sizes drawn from an Erlang distribution (the harness computes the sizes
//! and passes them through [`Seeding::ExplicitSizes`]).

use crate::cluster::DeltaCluster;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How phase 1 builds the initial clusters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Seeding {
    /// Every row/column joins with probability `p` (§4.1). `0 < p ≤ 1`.
    Bernoulli {
        /// Inclusion probability.
        p: f64,
    },
    /// Like `Bernoulli`, but each cluster draws its own `p` uniformly from
    /// `[p_min, p_max]` — the §5.1 *mixed initial clustering* technique.
    BernoulliMixed {
        /// Smallest per-cluster inclusion probability.
        p_min: f64,
        /// Largest per-cluster inclusion probability.
        p_max: f64,
    },
    /// Every seed gets exactly `rows × cols` randomly chosen members.
    TargetSize {
        /// Rows per seed.
        rows: usize,
        /// Columns per seed.
        cols: usize,
    },
    /// Per-cluster `(rows, cols)` sizes, cycled if shorter than `k`. Used by
    /// the Figure 9 experiment to seed Erlang-distributed volumes.
    ExplicitSizes(Vec<(usize, usize)>),
}

/// Errors produced by seeding.
#[derive(Debug, Clone, PartialEq)]
pub enum SeedError {
    /// A probability parameter was outside `(0, 1]` or the range was empty.
    BadProbability(String),
    /// The matrix has fewer rows/cols than the required minimum seed size.
    MatrixTooSmall {
        /// Rows in the matrix.
        rows: usize,
        /// Columns in the matrix.
        cols: usize,
        /// Minimum rows a cluster must keep.
        min_rows: usize,
        /// Minimum columns a cluster must keep.
        min_cols: usize,
    },
    /// `ExplicitSizes` was given an empty list.
    NoSizes,
}

impl std::fmt::Display for SeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeedError::BadProbability(msg) => write!(f, "bad seeding probability: {msg}"),
            SeedError::MatrixTooSmall {
                rows,
                cols,
                min_rows,
                min_cols,
            } => write!(
                f,
                "matrix {rows}x{cols} too small for clusters of at least {min_rows}x{min_cols}"
            ),
            SeedError::NoSizes => write!(f, "ExplicitSizes requires at least one size"),
        }
    }
}

impl std::error::Error for SeedError {}

/// Samples `count` distinct indices from `0..universe`, always at least
/// `min` of them (capped at the universe size).
fn sample_indices<R: Rng>(universe: usize, count: usize, min: usize, rng: &mut R) -> Vec<usize> {
    let want = count.clamp(min, universe);
    let mut all: Vec<usize> = (0..universe).collect();
    // partial_shuffle randomizes the *tail* of the slice and returns it
    // first; taking the front instead would bias samples toward low
    // indices.
    let (shuffled, _) = all.partial_shuffle(rng, want);
    shuffled.to_vec()
}

/// Builds the `k` initial clusters.
///
/// Every seed is guaranteed at least `min_rows` rows and `min_cols` columns
/// (topped up with random members when the random draw falls short), so the
/// phase-2 residue machinery never sees a degenerate cluster.
pub fn seed_clusters<R: Rng>(
    matrix_rows: usize,
    matrix_cols: usize,
    k: usize,
    seeding: &Seeding,
    min_rows: usize,
    min_cols: usize,
    rng: &mut R,
) -> Result<Vec<DeltaCluster>, SeedError> {
    if matrix_rows < min_rows || matrix_cols < min_cols {
        return Err(SeedError::MatrixTooSmall {
            rows: matrix_rows,
            cols: matrix_cols,
            min_rows,
            min_cols,
        });
    }
    let validate_p = |p: f64, what: &str| -> Result<(), SeedError> {
        if !(p > 0.0 && p <= 1.0) {
            Err(SeedError::BadProbability(format!(
                "{what} = {p} not in (0, 1]"
            )))
        } else {
            Ok(())
        }
    };

    let mut clusters = Vec::with_capacity(k);
    match seeding {
        Seeding::Bernoulli { p } => {
            validate_p(*p, "p")?;
            for _ in 0..k {
                clusters.push(bernoulli_seed(
                    matrix_rows,
                    matrix_cols,
                    *p,
                    min_rows,
                    min_cols,
                    rng,
                ));
            }
        }
        Seeding::BernoulliMixed { p_min, p_max } => {
            validate_p(*p_min, "p_min")?;
            validate_p(*p_max, "p_max")?;
            if p_min > p_max {
                return Err(SeedError::BadProbability(format!(
                    "p_min {p_min} > p_max {p_max}"
                )));
            }
            for _ in 0..k {
                let p = rng.gen_range(*p_min..=*p_max);
                clusters.push(bernoulli_seed(
                    matrix_rows,
                    matrix_cols,
                    p,
                    min_rows,
                    min_cols,
                    rng,
                ));
            }
        }
        Seeding::TargetSize { rows, cols } => {
            for _ in 0..k {
                let r = sample_indices(matrix_rows, *rows, min_rows, rng);
                let c = sample_indices(matrix_cols, *cols, min_cols, rng);
                clusters.push(DeltaCluster::from_indices(matrix_rows, matrix_cols, r, c));
            }
        }
        Seeding::ExplicitSizes(sizes) => {
            if sizes.is_empty() {
                return Err(SeedError::NoSizes);
            }
            for i in 0..k {
                let (rows, cols) = sizes[i % sizes.len()];
                let r = sample_indices(matrix_rows, rows, min_rows, rng);
                let c = sample_indices(matrix_cols, cols, min_cols, rng);
                clusters.push(DeltaCluster::from_indices(matrix_rows, matrix_cols, r, c));
            }
        }
    }
    Ok(clusters)
}

fn bernoulli_seed<R: Rng>(
    matrix_rows: usize,
    matrix_cols: usize,
    p: f64,
    min_rows: usize,
    min_cols: usize,
    rng: &mut R,
) -> DeltaCluster {
    let mut cluster = DeltaCluster::empty(matrix_rows, matrix_cols);
    for r in 0..matrix_rows {
        if rng.gen_bool(p) {
            cluster.rows.insert(r);
        }
    }
    for c in 0..matrix_cols {
        if rng.gen_bool(p) {
            cluster.cols.insert(c);
        }
    }
    // Top up below-minimum dimensions with random members.
    while cluster.rows.len() < min_rows {
        cluster.rows.insert(rng.gen_range(0..matrix_rows));
    }
    while cluster.cols.len() < min_cols {
        cluster.cols.insert(rng.gen_range(0..matrix_cols));
    }
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_seed_counts_are_near_expectation() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = 40;
        let clusters =
            seed_clusters(200, 100, k, &Seeding::Bernoulli { p: 0.3 }, 2, 2, &mut rng).unwrap();
        assert_eq!(clusters.len(), k);
        let avg_rows: f64 = clusters.iter().map(|c| c.row_count() as f64).sum::<f64>() / k as f64;
        let avg_cols: f64 = clusters.iter().map(|c| c.col_count() as f64).sum::<f64>() / k as f64;
        assert!(
            (avg_rows - 60.0).abs() < 10.0,
            "expected ≈60 rows, got {avg_rows}"
        );
        assert!(
            (avg_cols - 30.0).abs() < 8.0,
            "expected ≈30 cols, got {avg_cols}"
        );
    }

    #[test]
    fn seeds_respect_minimum_dimensions() {
        let mut rng = StdRng::seed_from_u64(2);
        // p so small that raw draws would often be empty.
        let clusters =
            seed_clusters(50, 50, 30, &Seeding::Bernoulli { p: 0.01 }, 2, 2, &mut rng).unwrap();
        for c in &clusters {
            assert!(c.row_count() >= 2, "cluster with {} rows", c.row_count());
            assert!(c.col_count() >= 2, "cluster with {} cols", c.col_count());
        }
    }

    #[test]
    fn mixed_seeds_vary_in_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let clusters = seed_clusters(
            300,
            300,
            30,
            &Seeding::BernoulliMixed {
                p_min: 0.02,
                p_max: 0.5,
            },
            2,
            2,
            &mut rng,
        )
        .unwrap();
        let sizes: Vec<usize> = clusters.iter().map(|c| c.footprint()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(
            *max > *min * 4,
            "mixed seeding should produce widely varying sizes, got {min}..{max}"
        );
    }

    #[test]
    fn target_size_is_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        let clusters = seed_clusters(
            100,
            60,
            10,
            &Seeding::TargetSize { rows: 12, cols: 7 },
            2,
            2,
            &mut rng,
        )
        .unwrap();
        for c in &clusters {
            assert_eq!(c.row_count(), 12);
            assert_eq!(c.col_count(), 7);
        }
    }

    #[test]
    fn target_size_caps_at_universe() {
        let mut rng = StdRng::seed_from_u64(5);
        let clusters = seed_clusters(
            5,
            4,
            2,
            &Seeding::TargetSize { rows: 50, cols: 50 },
            2,
            2,
            &mut rng,
        )
        .unwrap();
        for c in &clusters {
            assert_eq!(c.row_count(), 5);
            assert_eq!(c.col_count(), 4);
        }
    }

    #[test]
    fn explicit_sizes_cycle() {
        let mut rng = StdRng::seed_from_u64(6);
        let sizes = vec![(3, 4), (10, 2)];
        let clusters =
            seed_clusters(100, 100, 5, &Seeding::ExplicitSizes(sizes), 2, 2, &mut rng).unwrap();
        assert_eq!(clusters[0].row_count(), 3);
        assert_eq!(clusters[0].col_count(), 4);
        assert_eq!(clusters[1].row_count(), 10);
        assert_eq!(clusters[2].row_count(), 3, "sizes cycle");
        assert_eq!(clusters[4].row_count(), 3);
    }

    #[test]
    fn bad_probability_is_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        for p in [0.0, -0.5, 1.5] {
            let err =
                seed_clusters(10, 10, 1, &Seeding::Bernoulli { p }, 2, 2, &mut rng).unwrap_err();
            assert!(matches!(err, SeedError::BadProbability(_)), "p = {p}");
        }
        let err = seed_clusters(
            10,
            10,
            1,
            &Seeding::BernoulliMixed {
                p_min: 0.9,
                p_max: 0.1,
            },
            2,
            2,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, SeedError::BadProbability(_)));
    }

    #[test]
    fn tiny_matrix_is_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let err =
            seed_clusters(1, 10, 1, &Seeding::Bernoulli { p: 0.5 }, 2, 2, &mut rng).unwrap_err();
        assert!(matches!(err, SeedError::MatrixTooSmall { .. }));
        assert!(err.to_string().contains("too small"));
    }

    #[test]
    fn empty_explicit_sizes_is_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let err =
            seed_clusters(10, 10, 1, &Seeding::ExplicitSizes(vec![]), 2, 2, &mut rng).unwrap_err();
        assert_eq!(err, SeedError::NoSizes);
    }

    #[test]
    fn seeding_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            seed_clusters(50, 50, 5, &Seeding::Bernoulli { p: 0.2 }, 2, 2, &mut rng).unwrap()
        };
        assert_eq!(mk(42), mk(42));
        assert_ne!(mk(42), mk(43));
    }
}
