//! The FLOC driver (§4.1): phase-1 seeding plus the phase-2 iterative
//! move-based improvement loop.
//!
//! Each iteration:
//!
//! 1. For every row and column `x`, evaluate the `k` candidate actions
//!    `Action(x, c)` against the iteration's starting clustering and keep the
//!    one with the highest gain (blocked actions count as gain `−∞`).
//! 2. Order the `N + M` chosen actions with the configured §5.2 strategy.
//! 3. Perform them sequentially — including negative-gain actions, which may
//!    escape local optima — recording the average residue after every
//!    action. Actions that have become illegal mid-sequence (constraints are
//!    rechecked against the evolving clustering) are skipped.
//! 4. If the best prefix of the action sequence beats the incumbent best
//!    clustering, replay that prefix onto the iteration's starting state and
//!    continue; otherwise terminate and return the incumbent.
//!
//! With the exact gain engine the per-iteration cost is `O((N+M) · k · n·m)`
//! where `n×m` is the typical cluster footprint — the complexity §4.2
//! derives — with bases produced from cached sufficient statistics rather
//! than recomputed from scratch. The incremental engine
//! ([`crate::gain_engine`]) drops each candidate evaluation to
//! `O((n+m)·log)` by querying per-line sorted residue indexes, rebuilt from
//! the canonical states at every iteration boundary.

use crate::action::{self, Action, EvaluatedAction, Target};
use crate::checkpoint::{FlocCheckpoint, ResumeError};
use crate::cluster::DeltaCluster;
use crate::config::FlocConfig;
use crate::gain_engine::IncrementalEngine;
use crate::history::{FlocResult, IterationTrace, StopReason};
use crate::ordering;
use crate::seeding::{self, SeedError};
use crate::stats::{ClusterState, Scratch};
use dc_matrix::DataMatrix;
use dc_obs::{EventKind, Field, Obs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Callback invoked with a snapshot after every completed iteration and at
/// termination; used by callers to persist checkpoints.
///
/// This predates the structured [`dc_obs::Sink`] API and remains as a thin
/// adapter: [`floc_with`] delivers the same snapshots as `floc.checkpoint`
/// events whose attachment downcasts to [`FlocCheckpoint`], which is the
/// preferred surface for new code.
pub type CheckpointObserver<'a> = &'a mut dyn FnMut(&FlocCheckpoint);

/// Minimum improvement of the average residue for an iteration to count as
/// progress. Guards against infinite loops driven by floating-point noise.
const IMPROVEMENT_EPS: f64 = 1e-9;

/// Errors a FLOC run can produce.
#[derive(Debug)]
pub enum FlocError {
    /// Phase-1 seeding failed.
    Seed(SeedError),
    /// The matrix has no specified entries to cluster.
    EmptyMatrix,
    /// A checkpoint could not be resumed (wrong matrix, changed config, or
    /// internally inconsistent state).
    Resume(ResumeError),
}

impl std::fmt::Display for FlocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlocError::Seed(e) => write!(f, "seeding failed: {e}"),
            FlocError::EmptyMatrix => write!(f, "matrix contains no specified entries"),
            FlocError::Resume(e) => write!(f, "cannot resume checkpoint: {e}"),
        }
    }
}

impl std::error::Error for FlocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlocError::Seed(e) => Some(e),
            FlocError::EmptyMatrix => None,
            FlocError::Resume(e) => Some(e),
        }
    }
}

impl From<SeedError> for FlocError {
    fn from(e: SeedError) -> Self {
        FlocError::Seed(e)
    }
}

impl From<ResumeError> for FlocError {
    fn from(e: ResumeError) -> Self {
        FlocError::Resume(e)
    }
}

/// True if `action` must not be performed against `states`.
///
/// Three layers: (1) minimum-dimension guard against the degenerate
/// residue-0 clusters; (2) occupancy: when `alpha > 0`, an action may not
/// *increase* the number of occupancy violations (seeds may start
/// non-compliant — the non-worsening rule lets FLOC repair them while never
/// regressing a compliant cluster); (3) the user's §4.3 constraints.
fn blocked(
    matrix: &DataMatrix,
    states: &[ClusterState],
    action: Action,
    config: &FlocConfig,
) -> bool {
    let state = &states[action.cluster];
    match action.target {
        Target::Row(r) => {
            if state.rows.contains(r) && state.rows.len() <= config.min_rows {
                return true;
            }
        }
        Target::Col(c) => {
            if state.cols.contains(c) && state.cols.len() <= config.min_cols {
                return true;
            }
        }
    }
    if config.alpha > 0.0 {
        let before = state.occupancy_violations(config.alpha);
        let after = match action.target {
            Target::Row(r) => state.occupancy_violations_if_row_toggled(matrix, r, config.alpha),
            Target::Col(c) => state.occupancy_violations_if_col_toggled(matrix, c, config.alpha),
        };
        if after > before {
            return true;
        }
    }
    config
        .constraints
        .iter()
        .any(|c| !c.allows(matrix, states, action))
}

/// Evaluates the best action for every row and column against `states`.
///
/// Returns one [`EvaluatedAction`] per target, in row-major target order
/// (rows `0..M`, then columns `0..N`). A target whose `k` actions are all
/// blocked yields gain `−∞` and is skipped at application time.
///
/// With `engine` present, gains come from the incremental sorted-index
/// queries (the engine must have been built against `states`); otherwise
/// each candidate pays the exact rescan. Both paths share the blocking
/// logic and target order, so they choose among identical candidates.
fn evaluate_best_actions(
    matrix: &DataMatrix,
    states: &[ClusterState],
    residues: &[f64],
    config: &FlocConfig,
    engine: Option<&IncrementalEngine>,
) -> Vec<EvaluatedAction> {
    let m = matrix.rows();
    let n = matrix.cols();
    let targets: Vec<Target> = (0..m)
        .map(Target::Row)
        .chain((0..n).map(Target::Col))
        .collect();

    let eval_target = |target: Target, scratch: &mut Scratch| -> EvaluatedAction {
        let mut best = EvaluatedAction {
            action: Action { target, cluster: 0 },
            gain: f64::NEG_INFINITY,
        };
        for (c, state) in states.iter().enumerate() {
            let a = Action { target, cluster: c };
            if blocked(matrix, states, a, config) {
                continue;
            }
            let g = match engine {
                Some(eng) => residues[c] - eng.toggled_residue(c, target, state, matrix),
                None => action::gain(matrix, state, residues[c], target, config.mean, scratch),
            };
            if g > best.gain {
                best = EvaluatedAction { action: a, gain: g };
            }
        }
        best
    };

    let threads = config.parallelism.threads;
    if threads <= 1 || targets.len() < 2 * threads {
        let mut scratch = Scratch::default();
        return targets
            .iter()
            .map(|&t| eval_target(t, &mut scratch))
            .collect();
    }

    // Parallel evaluation: targets are independent, states are read-only.
    let mut results = vec![
        EvaluatedAction {
            action: Action {
                target: Target::Row(0),
                cluster: 0
            },
            gain: f64::NEG_INFINITY
        };
        targets.len()
    ];
    // Round the chunk size up to a whole number of 64-target blocks so
    // each worker's row-targets span whole specification-mask words and
    // adjacent workers never split a cache line of the results vector.
    let chunk = targets.len().div_ceil(threads).next_multiple_of(64);
    crossbeam::thread::scope(|scope| {
        for (t_chunk, r_chunk) in targets.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                let mut scratch = Scratch::default();
                for (t, out) in t_chunk.iter().zip(r_chunk.iter_mut()) {
                    *out = eval_target(*t, &mut scratch);
                }
            });
        }
    })
    .expect("gain evaluation worker panicked");
    results
}

/// Runs FLOC on `matrix` with `config`, returning the best clustering found.
///
/// Deterministic for a fixed `config.seed`.
///
/// # Errors
/// Fails if seeding is infeasible or the matrix has no specified entries.
pub fn floc(matrix: &DataMatrix, config: &FlocConfig) -> Result<FlocResult, FlocError> {
    floc_inner(matrix, config, None, &Obs::null())
}

/// Like [`floc`], streaming structured events to `obs` — the single
/// observation surface for the FLOC loop:
///
/// - `floc.seeding` (span): phase-1 duration and cluster count;
/// - `floc.iteration` (point): per completed iteration — average residue,
///   best-prefix position, actions performed/skipped, gain-engine
///   maintenance tallies, iteration latency;
/// - `floc.checkpoint` (point): after every improving iteration and at
///   termination, with the resumable [`FlocCheckpoint`] as the event's
///   attachment (downcast it to persist checkpoints);
/// - `floc.done` (point): terminal summary including the stop reason.
///
/// Observation never changes the search: emission only *reads* state, so
/// any sink — including none — yields a bit-identical result and
/// checkpoint sequence for the same seed (property-tested).
///
/// # Errors
/// Fails if seeding is infeasible or the matrix has no specified entries.
pub fn floc_with(
    matrix: &DataMatrix,
    config: &FlocConfig,
    obs: &Obs,
) -> Result<FlocResult, FlocError> {
    floc_inner(matrix, config, None, obs)
}

/// Like [`floc`], additionally invoking `observer` with a resumable
/// [`FlocCheckpoint`] after every completed iteration and a final snapshot
/// at termination (tagged terminal when the run converged or exhausted its
/// iteration cap).
///
/// The observer decides what to do with snapshots — typically persist every
/// Nth one. Observation never changes the search: with or without an
/// observer, the same seed yields the same clustering.
///
/// Thin adapter over the [`floc_with`] event stream for callers that
/// predate [`dc_obs`]; new code should prefer a [`dc_obs::Sink`].
///
/// # Errors
/// Fails if seeding is infeasible or the matrix has no specified entries.
pub fn floc_observed(
    matrix: &DataMatrix,
    config: &FlocConfig,
    observer: Option<CheckpointObserver<'_>>,
) -> Result<FlocResult, FlocError> {
    floc_inner(matrix, config, observer, &Obs::null())
}

fn floc_inner(
    matrix: &DataMatrix,
    config: &FlocConfig,
    observer: Option<CheckpointObserver<'_>>,
    obs: &Obs,
) -> Result<FlocResult, FlocError> {
    if matrix.specified_count() == 0 {
        return Err(FlocError::EmptyMatrix);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let seed_started = Instant::now();
    let seeds = seeding::seed_clusters(
        matrix.rows(),
        matrix.cols(),
        config.k,
        &config.seeding,
        config.min_rows,
        config.min_cols,
        &mut rng,
    )?;
    let best: Vec<ClusterState> = seeds.iter().map(|c| ClusterState::new(matrix, c)).collect();
    if obs.enabled() {
        obs.emit_full(
            EventKind::Span,
            "floc.seeding",
            &[
                Field::new(
                    "duration_nanos",
                    seed_started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                ),
                Field::new("k", config.k),
                Field::new("rows", matrix.rows()),
                Field::new("cols", matrix.cols()),
            ],
            None,
        );
    }
    Ok(run_loop(
        matrix,
        config,
        rng,
        best,
        0,
        Vec::new(),
        observer,
        obs,
    ))
}

/// Continues a checkpointed run on the same matrix, bit-identically: the
/// final clustering equals what the uninterrupted run would have produced.
///
/// `config` must match the checkpoint's on every search-relevant field;
/// runtime plumbing (threads, time budget, interrupt wiring) may differ —
/// that is how a resumed run gets a fresh budget and a live ctrl-c handler.
/// Resuming a terminal checkpoint (converged / iteration cap) returns its
/// result immediately without further work.
///
/// # Errors
/// Fails with [`FlocError::Resume`] when the checkpoint does not belong to
/// `matrix`/`config` or is internally inconsistent.
pub fn floc_resume(
    matrix: &DataMatrix,
    checkpoint: &FlocCheckpoint,
    config: &FlocConfig,
    observer: Option<CheckpointObserver<'_>>,
) -> Result<FlocResult, FlocError> {
    resume_inner(matrix, checkpoint, config, observer, &Obs::null())
}

/// [`floc_resume`] with the structured event stream of [`floc_with`]
/// instead of the legacy callback; emits an additional `floc.resume` point
/// event recording where the run picked up.
///
/// # Errors
/// Fails with [`FlocError::Resume`] when the checkpoint does not belong to
/// `matrix`/`config` or is internally inconsistent.
pub fn floc_resume_with(
    matrix: &DataMatrix,
    checkpoint: &FlocCheckpoint,
    config: &FlocConfig,
    obs: &Obs,
) -> Result<FlocResult, FlocError> {
    resume_inner(matrix, checkpoint, config, None, obs)
}

fn resume_inner(
    matrix: &DataMatrix,
    checkpoint: &FlocCheckpoint,
    config: &FlocConfig,
    observer: Option<CheckpointObserver<'_>>,
    obs: &Obs,
) -> Result<FlocResult, FlocError> {
    checkpoint.validate(matrix, config)?;
    if obs.enabled() {
        obs.emit(
            "floc.resume",
            &[
                Field::new("iterations", checkpoint.iterations),
                Field::new("avg_residue", checkpoint.avg_residue),
                Field::new("terminal", checkpoint.stop.is_some()),
            ],
        );
    }
    if let Some(reason) = checkpoint.stop {
        return Ok(FlocResult {
            clusters: checkpoint.clusters.clone(),
            residues: checkpoint.residues.clone(),
            avg_residue: checkpoint.avg_residue,
            iterations: checkpoint.iterations,
            elapsed: std::time::Duration::ZERO,
            trace: checkpoint.trace.clone(),
            stop_reason: reason,
        });
    }
    let rng = StdRng::from_state(checkpoint.rng_words());
    // Rebuild the incumbent states from their descriptors — the exact
    // construction the driver uses at every safe boundary, so the restored
    // sums are bit-identical to the in-memory ones at checkpoint time.
    let best: Vec<ClusterState> = checkpoint
        .clusters
        .iter()
        .map(|c| ClusterState::new(matrix, c))
        .collect();
    Ok(run_loop(
        matrix,
        config,
        rng,
        best,
        checkpoint.iterations,
        checkpoint.trace.clone(),
        observer,
        obs,
    ))
}

/// Builds the snapshot handed to observers and embedded in results.
#[allow(clippy::too_many_arguments)]
fn snapshot(
    matrix: &DataMatrix,
    fingerprint: u64,
    config: &FlocConfig,
    iterations: usize,
    rng_state: [u64; 4],
    best: &[ClusterState],
    residues: &[f64],
    avg: f64,
    trace: &[IterationTrace],
    stop: Option<StopReason>,
) -> FlocCheckpoint {
    FlocCheckpoint {
        config: config.clone(),
        matrix_rows: matrix.rows(),
        matrix_cols: matrix.cols(),
        matrix_specified: matrix.specified_count(),
        matrix_fingerprint: fingerprint,
        iterations,
        rng_state: rng_state.to_vec(),
        clusters: best.iter().map(|s| s.to_cluster()).collect(),
        residues: residues.to_vec(),
        avg_residue: avg,
        trace: trace.to_vec(),
        stop,
    }
}

/// Delivers one snapshot to both observation surfaces: the legacy callback
/// verbatim, and — when structured observation is on — a `floc.checkpoint`
/// event whose attachment downcasts to [`FlocCheckpoint`].
fn publish_checkpoint(
    observer: &mut Option<CheckpointObserver<'_>>,
    obs: &Obs,
    snap: &FlocCheckpoint,
) {
    if let Some(cb) = observer.as_mut() {
        cb(snap);
    }
    if obs.enabled() {
        obs.emit_full(
            EventKind::Point,
            "floc.checkpoint",
            &[
                Field::new("iterations", snap.iterations),
                Field::new("avg_residue", snap.avg_residue),
                Field::new("terminal", snap.stop.is_some()),
            ],
            Some(snap),
        );
    }
}

/// The phase-2 improvement loop, shared by fresh and resumed runs.
///
/// `best` must be *canonical*: every state freshly built via
/// [`ClusterState::new`] from its descriptor. The loop re-canonicalizes
/// after each improving iteration so that the state a checkpoint observer
/// sees — and the state a resume rebuilds — is bit-identical to the state
/// the loop itself continues from. Residues and the incumbent average are
/// recomputed from the canonical states for the same reason.
#[allow(clippy::too_many_arguments)]
fn run_loop(
    matrix: &DataMatrix,
    config: &FlocConfig,
    mut rng: StdRng,
    mut best: Vec<ClusterState>,
    start_iterations: usize,
    mut trace: Vec<IterationTrace>,
    mut observer: Option<CheckpointObserver<'_>>,
    obs: &Obs,
) -> FlocResult {
    let start = Instant::now();
    let fingerprint = matrix.fingerprint();
    // Cumulative gain-engine maintenance tallies across the whole run
    // (each iteration rebuilds the engine, resetting its own counters).
    let mut total_stale_rebuilds = 0u64;
    let mut total_repairs = 0u64;
    let mut scratch = Scratch::default();
    let mut best_residues: Vec<f64> = best
        .iter()
        .map(|s| s.residue(matrix, config.mean, &mut scratch))
        .collect();
    let mut best_avg = best_residues.iter().sum::<f64>() / config.k as f64;

    let mut iterations = start_iterations;
    let mut stop_reason = StopReason::MaxIterations;
    let out_of_time = |now: Instant| config.time_budget.is_some_and(|b| now - start >= b);
    let use_incremental = config.gain_engine.use_incremental(matrix);

    'outer: while iterations < config.max_iterations {
        // Safe boundary: the incumbent state is canonical and no RNG has
        // been consumed for the next iteration yet.
        if config.interrupt.is_raised() {
            stop_reason = StopReason::Interrupted;
            break;
        }
        if out_of_time(Instant::now()) {
            stop_reason = StopReason::Budget;
            break;
        }
        let rng_at_start = rng.state();
        let iter_started = Instant::now();
        iterations += 1;

        // Per-phase wall-clock tallies (eval / rebuild / apply), emitted on
        // the `floc.iteration` event. Gated on observation being live so
        // the unobserved hot loop never pays the clock reads.
        let timing = obs.enabled();
        let mut eval_nanos = 0u64;
        let mut rebuild_nanos = 0u64;
        let mut apply_nanos = 0u64;
        let lap = |t: Option<Instant>, acc: &mut u64| {
            if let Some(t) = t {
                *acc += t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            }
        };

        // Drift guard: the incremental engine is rebuilt from the canonical
        // incumbent states every iteration, so index error cannot compound
        // across iterations and resumed runs reconstruct the same indexes.
        // The build fans out across clusters under the configured thread
        // budget; per-cluster indexes are independent, so the result is
        // bit-identical to a serial build.
        let t = timing.then(Instant::now);
        let mut engine = use_incremental.then(|| {
            IncrementalEngine::build_with_threads(
                matrix,
                &best,
                config.mean,
                config.parallelism.threads,
            )
        });
        lap(t, &mut rebuild_nanos);

        // 1. Choose the best action per target against the starting state.
        let t = timing.then(Instant::now);
        let mut actions =
            evaluate_best_actions(matrix, &best, &best_residues, config, engine.as_ref());
        lap(t, &mut eval_nanos);

        // 2. Order them.
        ordering::order_actions(&mut actions, config.ordering, &mut rng);

        // 3. Perform sequentially on a working copy, tracking the best
        //    prefix by average residue.
        let mut states = best.clone();
        let mut residues = best_residues.clone();
        let mut performed: Vec<Action> = Vec::with_capacity(actions.len());
        let mut skipped = 0usize;
        let mut best_prefix_avg = f64::INFINITY;
        let mut best_prefix_len = 0usize;

        for ea in &actions {
            if config.interrupt.is_raised() || out_of_time(Instant::now()) {
                // Abort mid-iteration: discard the partial work and roll
                // the RNG back to the iteration's start, so the emitted
                // checkpoint replays this whole iteration on resume —
                // exactly what the uninterrupted run computed.
                stop_reason = if config.interrupt.is_raised() {
                    StopReason::Interrupted
                } else {
                    StopReason::Budget
                };
                iterations -= 1;
                rng = StdRng::from_state(rng_at_start);
                break 'outer;
            }
            // With the incremental engine, the chosen action's post-toggle
            // residue falls out of the same query that produced its gain.
            let mut toggled_res = f64::NAN;
            let chosen = if config.refresh_gains {
                // Re-decide this target's best action against the *current*
                // clustering (§4.1: "examined sequentially … decided and
                // performed"). Negative best gains are still performed.
                let target = ea.action.target;
                if let Some(eng) = engine.as_mut() {
                    let t = timing.then(Instant::now);
                    eng.prepare(matrix, &states, target.is_row());
                    lap(t, &mut rebuild_nanos);
                }
                let t = timing.then(Instant::now);
                let mut best_gain = f64::NEG_INFINITY;
                let mut best = None;
                for (c, state) in states.iter().enumerate() {
                    let a = Action { target, cluster: c };
                    if blocked(matrix, &states, a, config) {
                        continue;
                    }
                    let g = match engine.as_ref() {
                        Some(eng) => {
                            let tr = eng.toggled_residue(c, target, state, matrix);
                            let g = residues[c] - tr;
                            if g > best_gain {
                                toggled_res = tr;
                            }
                            g
                        }
                        None => action::gain(
                            matrix,
                            state,
                            residues[c],
                            target,
                            config.mean,
                            &mut scratch,
                        ),
                    };
                    if g > best_gain {
                        best_gain = g;
                        best = Some(a);
                    }
                }
                lap(t, &mut eval_nanos);
                best
            } else if ea.gain == f64::NEG_INFINITY || blocked(matrix, &states, ea.action, config) {
                // Every candidate was blocked at evaluation time, or the
                // pre-decided action became illegal mid-sequence.
                None
            } else {
                Some(ea.action)
            };
            let Some(act) = chosen else {
                skipped += 1;
                continue;
            };
            let c = act.cluster;
            let t = timing.then(Instant::now);
            let new_res = if let Some(eng) = engine.as_mut() {
                if !config.refresh_gains {
                    // The pre-decided gain is stale; query the residue the
                    // toggle actually produces against the current state.
                    eng.prepare(matrix, &states, act.target.is_row());
                    toggled_res = eng.toggled_residue(c, act.target, &states[c], matrix);
                }
                // Repair the indexes from the pre-toggle state, then toggle.
                eng.apply(matrix, &states[c], act);
                action::apply(matrix, &mut states, act);
                toggled_res
            } else {
                action::apply(matrix, &mut states, act);
                states[c].residue(matrix, config.mean, &mut scratch)
            };
            residues[c] = new_res;
            performed.push(act);
            // Summing afresh (rather than `+= new_res − old`) keeps rounding
            // error from accumulating across a long action sequence.
            let avg = residues.iter().sum::<f64>() / config.k as f64;
            if avg < best_prefix_avg {
                best_prefix_avg = avg;
                best_prefix_len = performed.len();
            }
            lap(t, &mut apply_nanos);
        }

        let improved =
            best_prefix_avg < best_avg - IMPROVEMENT_EPS - config.min_improvement * best_avg.abs();
        trace.push(IterationTrace {
            iteration: iterations,
            best_prefix_avg,
            best_prefix_len,
            actions_performed: performed.len(),
            improved,
        });
        let (iter_rebuilds, iter_repairs) = engine.as_ref().map_or((0, 0), |e| e.counters());
        total_stale_rebuilds += iter_rebuilds;
        total_repairs += iter_repairs;
        if obs.enabled() {
            obs.emit(
                "floc.iteration",
                &[
                    Field::new("iteration", iterations),
                    Field::new(
                        "duration_nanos",
                        iter_started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                    ),
                    Field::new("avg_residue", best_prefix_avg),
                    Field::new("incumbent_avg", best_avg),
                    Field::new("best_prefix_len", best_prefix_len),
                    Field::new("actions_performed", performed.len()),
                    Field::new("actions_skipped", skipped),
                    Field::new("improved", improved),
                    Field::new(
                        "engine",
                        if use_incremental {
                            "incremental"
                        } else {
                            "exact"
                        },
                    ),
                    Field::new("stale_rebuilds", iter_rebuilds),
                    Field::new("repairs", iter_repairs),
                    Field::new("eval_nanos", eval_nanos),
                    Field::new("rebuild_nanos", rebuild_nanos),
                    Field::new("apply_nanos", apply_nanos),
                ],
            );
        }
        if !improved {
            stop_reason = StopReason::Converged;
            break;
        }

        // 4. Replay the winning prefix onto the iteration's starting state.
        //    (Cheaper than snapshotting after every action: toggles are
        //    O(|I|+|J|) and the prefix is at most N+M actions.)
        if best_prefix_len == performed.len() {
            best = states; // the full sequence was the best prefix
        } else {
            for &a in &performed[..best_prefix_len] {
                action::apply(matrix, &mut best, a);
            }
        }
        // Canonicalize: rebuild the incumbent states from their
        // descriptors so the sums have the same accumulation order a
        // resume would reconstruct. O(k · cluster volume), negligible next
        // to the O((N+M)·k·n·m) evaluation above.
        best = best
            .iter()
            .map(|s| ClusterState::new(matrix, &s.to_cluster()))
            .collect();
        for (c, state) in best.iter().enumerate() {
            best_residues[c] = state.residue(matrix, config.mean, &mut scratch);
        }
        best_avg = best_residues.iter().sum::<f64>() / config.k as f64;

        if observer.is_some() || obs.enabled() {
            let snap = snapshot(
                matrix,
                fingerprint,
                config,
                iterations,
                rng.state(),
                &best,
                &best_residues,
                best_avg,
                &trace,
                None,
            );
            publish_checkpoint(&mut observer, obs, &snap);
        }
    }

    if observer.is_some() || obs.enabled() {
        // Terminal snapshot. Converged / capped runs are marked done;
        // budget and interrupt stops stay resumable.
        let stop = match stop_reason {
            StopReason::Converged | StopReason::MaxIterations => Some(stop_reason),
            StopReason::Budget | StopReason::Interrupted => None,
        };
        let snap = snapshot(
            matrix,
            fingerprint,
            config,
            iterations,
            rng.state(),
            &best,
            &best_residues,
            best_avg,
            &trace,
            stop,
        );
        publish_checkpoint(&mut observer, obs, &snap);
    }

    if obs.enabled() {
        let stop_str = stop_reason.to_string();
        obs.emit(
            "floc.done",
            &[
                Field::new("iterations", iterations),
                Field::new("avg_residue", best_avg),
                Field::new("stop_reason", stop_str.as_str()),
                Field::new(
                    "duration_nanos",
                    start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                ),
                Field::new("stale_rebuilds", total_stale_rebuilds),
                Field::new("repairs", total_repairs),
            ],
        );
    }

    let clusters: Vec<DeltaCluster> = best.iter().map(|s| s.to_cluster()).collect();
    FlocResult {
        clusters,
        residues: best_residues,
        avg_residue: best_avg,
        iterations,
        elapsed: start.elapsed(),
        trace,
        stop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint;
    use crate::ordering::Ordering;
    use crate::residue::{cluster_residue, ResidueMean};
    use crate::seeding::Seeding;
    use rand::Rng;

    /// Builds a matrix with one perfect shifted block planted in noise.
    /// Rows 0..block_rows, cols 0..block_cols hold base pattern + row bias;
    /// the rest is uniform noise in [0, 100).
    #[allow(clippy::needless_range_loop)] // index drives both the block test and the pattern lookup
    fn planted(
        rows: usize,
        cols: usize,
        block_rows: usize,
        block_cols: usize,
        seed: u64,
    ) -> DataMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DataMatrix::builder(rows, cols).build();
        let pattern: Vec<f64> = (0..block_cols).map(|_| rng.gen_range(0.0..20.0)).collect();
        for r in 0..rows {
            let bias: f64 = rng.gen_range(0.0..30.0);
            for c in 0..cols {
                if r < block_rows && c < block_cols {
                    m.set(r, c, pattern[c] + bias);
                } else {
                    m.set(r, c, rng.gen_range(0.0..100.0));
                }
            }
        }
        m
    }

    #[test]
    fn floc_recovers_a_planted_cluster() {
        // Single-restart FLOC is a randomized local search; following §5.1
        // (seed sensitivity) we take the best of a handful of restarts.
        let m = planted(30, 15, 10, 6, 7);
        // min_dims + Cons_v keep the search off the degenerate thin-cluster
        // attractor (see DESIGN.md §8) so it must engage the planted block.
        let config = FlocConfig::builder(1)
            .seeding(Seeding::TargetSize { rows: 8, cols: 5 })
            .min_dims(3, 3)
            .constraint(crate::constraints::Constraint::MinVolume { cells: 30 })
            .seed(0)
            .threads(4)
            .restarts(16)
            .build();
        let (result, _) = crate::parallel::floc_parallel(&m, &config, &Obs::null()).unwrap();
        // The planted block is perfectly coherent (residue 0); background
        // noise clusters sit around residue 14–20. The best restart must
        // land clearly on the coherent side and be dominated by planted
        // rows/columns (exact recovery is not guaranteed for a randomized
        // local search with k = 1 — the paper's own quality experiments use
        // k = 100 and report recall 0.86, not 1.0).
        assert!(
            result.avg_residue < 8.0,
            "avg residue {} too high; summary:\n{}",
            result.avg_residue,
            result.summary(&m)
        );
        let c = &result.clusters[0];
        let planted_rows = c.rows.iter().filter(|&r| r < 10).count();
        let planted_cols = c.cols.iter().filter(|&c| c < 6).count();
        assert!(
            planted_rows * 2 >= c.row_count(),
            "fewer than half the rows are planted: {c:?}"
        );
        assert!(
            planted_cols * 2 >= c.col_count(),
            "fewer than half the cols are planted: {c:?}"
        );
    }

    #[test]
    fn floc_is_deterministic_for_a_seed() {
        let m = planted(20, 10, 6, 4, 1);
        let config = FlocConfig::builder(2).seed(5).build();
        let a = floc(&m, &config).unwrap();
        let b = floc(&m, &config).unwrap();
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.residues, b.residues);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let m = planted(40, 20, 12, 8, 9);
        let serial = floc(&m, &FlocConfig::builder(3).seed(11).threads(1).build()).unwrap();
        let parallel = floc(&m, &FlocConfig::builder(3).seed(11).threads(4).build()).unwrap();
        assert_eq!(serial.clusters, parallel.clusters);
        assert_eq!(serial.avg_residue, parallel.avg_residue);
    }

    #[test]
    fn result_residues_match_reference() {
        let m = planted(25, 12, 8, 5, 3);
        let config = FlocConfig::builder(2).seed(17).build();
        let r = floc(&m, &config).unwrap();
        for (c, &res) in r.clusters.iter().zip(&r.residues) {
            let oracle = cluster_residue(&m, c, ResidueMean::Arithmetic);
            assert!(
                (res - oracle).abs() < 1e-9,
                "residue {res} != oracle {oracle}"
            );
        }
        let avg = r.residues.iter().sum::<f64>() / r.residues.len() as f64;
        assert!((avg - r.avg_residue).abs() < 1e-9);
    }

    #[test]
    fn residue_never_increases_across_iterations() {
        let m = planted(30, 15, 10, 6, 21);
        let r = floc(&m, &FlocConfig::builder(2).seed(2).build()).unwrap();
        let mut prev = f64::INFINITY;
        for t in &r.trace {
            if t.improved {
                assert!(
                    t.best_prefix_avg < prev + 1e-12,
                    "iteration {} went backwards: {} after {}",
                    t.iteration,
                    t.best_prefix_avg,
                    prev
                );
                prev = t.best_prefix_avg;
            }
        }
        // The last trace entry must be the non-improving terminator, unless
        // max_iterations stopped the run first.
        if r.iterations < 60 {
            assert!(!r.trace.last().unwrap().improved);
        }
    }

    #[test]
    fn min_dims_are_respected() {
        let m = planted(15, 8, 5, 3, 13);
        let r = floc(&m, &FlocConfig::builder(3).seed(1).min_dims(3, 3).build()).unwrap();
        for c in &r.clusters {
            assert!(c.row_count() >= 3, "{c:?}");
            assert!(c.col_count() >= 3, "{c:?}");
        }
    }

    #[test]
    fn occupancy_is_not_worsened() {
        // A sparse matrix (~40% missing) with alpha = 0.5: the final
        // clusters must not have more violations than their seeds had.
        let mut rng = StdRng::seed_from_u64(99);
        let mut m = DataMatrix::builder(30, 12).build();
        for r in 0..30 {
            for c in 0..12 {
                if rng.gen_bool(0.6) {
                    m.set(r, c, rng.gen_range(0.0..10.0));
                }
            }
        }
        let config = FlocConfig::builder(2).alpha(0.5).seed(4).build();
        let r = floc(&m, &config).unwrap();
        // Non-worsening from random seeds in practice repairs to zero or
        // few violations; assert the mechanism at least produced clusters.
        for c in &r.clusters {
            assert!(c.row_count() >= 2 && c.col_count() >= 2);
        }
    }

    #[test]
    fn constraints_hold_in_final_result() {
        let m = planted(20, 10, 6, 4, 31);
        let config = FlocConfig::builder(2)
            .constraint(Constraint::MinVolume { cells: 6 })
            .seeding(Seeding::TargetSize { rows: 5, cols: 4 })
            .seed(8)
            .build();
        let r = floc(&m, &config).unwrap();
        for c in &r.clusters {
            assert!(c.volume(&m) >= 6, "volume constraint violated: {c:?}");
        }
    }

    #[test]
    fn empty_matrix_is_an_error() {
        let m = DataMatrix::builder(10, 10).build();
        let err = floc(&m, &FlocConfig::builder(1).build()).unwrap_err();
        assert!(matches!(err, FlocError::EmptyMatrix));
        assert!(err.to_string().contains("no specified entries"));
    }

    #[test]
    fn seeding_failure_propagates() {
        let m = DataMatrix::builder(1, 1).from_rows(vec![1.0]);
        let err = floc(&m, &FlocConfig::builder(1).build()).unwrap_err();
        assert!(matches!(err, FlocError::Seed(_)));
    }

    #[test]
    fn max_iterations_caps_the_run() {
        let m = planted(30, 15, 10, 6, 5);
        let r = floc(
            &m,
            &FlocConfig::builder(3).max_iterations(2).seed(6).build(),
        )
        .unwrap();
        assert!(r.iterations <= 2);
    }

    #[test]
    fn stop_reason_reflects_termination() {
        let m = planted(30, 15, 10, 6, 5);
        let converged = floc(&m, &FlocConfig::builder(2).seed(3).build()).unwrap();
        assert_eq!(converged.stop_reason, crate::history::StopReason::Converged);
        let capped = floc(
            &m,
            &FlocConfig::builder(2).max_iterations(1).seed(3).build(),
        )
        .unwrap();
        assert_eq!(
            capped.stop_reason,
            crate::history::StopReason::MaxIterations
        );
    }

    #[test]
    fn zero_budget_stops_before_the_first_iteration() {
        let m = planted(20, 10, 6, 4, 11);
        let config = FlocConfig::builder(2)
            .seed(1)
            .time_budget(std::time::Duration::ZERO)
            .build();
        let r = floc(&m, &config).unwrap();
        assert_eq!(r.stop_reason, crate::history::StopReason::Budget);
        assert_eq!(r.iterations, 0, "no iteration should have run");
        // Graceful degradation: the seed clustering is still returned.
        assert_eq!(r.clusters.len(), 2);
        assert!(r.avg_residue.is_finite());
    }

    #[test]
    fn raised_interrupt_stops_before_the_first_iteration() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let m = planted(20, 10, 6, 4, 11);
        let flag = Arc::new(AtomicBool::new(true));
        let config = FlocConfig::builder(2).seed(1).interrupt(flag).build();
        let r = floc(&m, &config).unwrap();
        assert_eq!(r.stop_reason, crate::history::StopReason::Interrupted);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn observer_does_not_change_the_result() {
        let m = planted(25, 12, 8, 5, 23);
        let config = FlocConfig::builder(2).seed(9).build();
        let plain = floc(&m, &config).unwrap();
        let mut snapshots: Vec<crate::checkpoint::FlocCheckpoint> = Vec::new();
        let mut obs = |c: &crate::checkpoint::FlocCheckpoint| snapshots.push(c.clone());
        let observed = floc_observed(&m, &config, Some(&mut obs)).unwrap();
        assert_eq!(plain.clusters, observed.clusters);
        assert_eq!(plain.residues, observed.residues);
        assert_eq!(plain.iterations, observed.iterations);
        // One snapshot per improving iteration plus the terminal one.
        assert!(!snapshots.is_empty());
        let last = snapshots.last().unwrap();
        assert_eq!(last.stop, Some(plain.stop_reason));
        assert_eq!(last.clusters, plain.clusters);
        assert_eq!(last.avg_residue, plain.avg_residue);
    }

    #[test]
    fn resume_from_any_iteration_matches_uninterrupted() {
        let m = planted(30, 15, 10, 6, 41);
        let config = FlocConfig::builder(2).seed(13).build();
        let mut snapshots: Vec<crate::checkpoint::FlocCheckpoint> = Vec::new();
        let mut obs = |c: &crate::checkpoint::FlocCheckpoint| snapshots.push(c.clone());
        let reference = floc_observed(&m, &config, Some(&mut obs)).unwrap();
        assert!(
            snapshots.len() >= 2,
            "need at least one intermediate snapshot"
        );
        for ckpt in &snapshots {
            let resumed = floc_resume(&m, ckpt, &config, None).unwrap();
            assert_eq!(
                resumed.clusters, reference.clusters,
                "at iter {}",
                ckpt.iterations
            );
            assert_eq!(resumed.residues, reference.residues);
            assert_eq!(resumed.avg_residue, reference.avg_residue);
            assert_eq!(resumed.iterations, reference.iterations);
            assert_eq!(resumed.stop_reason, reference.stop_reason);
            assert_eq!(resumed.trace, reference.trace);
        }
    }

    #[test]
    fn interrupted_run_resumes_to_the_uninterrupted_result() {
        use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
        use std::sync::Arc;
        let m = planted(30, 15, 10, 6, 41);
        let base = FlocConfig::builder(2).seed(13).build();
        let reference = floc(&m, &base).unwrap();
        assert!(reference.iterations >= 2, "need a multi-iteration run");

        // Interrupt after the first completed iteration (raised from the
        // observer — fully deterministic, unlike a timer).
        let flag = Arc::new(AtomicBool::new(false));
        let mut interruptible = base.clone();
        interruptible.interrupt = crate::config::InterruptFlag::new(Arc::clone(&flag));
        let mut last: Option<crate::checkpoint::FlocCheckpoint> = None;
        let mut obs = |c: &crate::checkpoint::FlocCheckpoint| {
            flag.store(true, AtomicOrdering::SeqCst);
            last = Some(c.clone());
        };
        let partial = floc_observed(&m, &interruptible, Some(&mut obs)).unwrap();
        assert_eq!(partial.stop_reason, crate::history::StopReason::Interrupted);
        assert!(partial.iterations < reference.iterations);

        let ckpt = last.unwrap();
        assert_eq!(ckpt.stop, None, "interrupt checkpoints stay resumable");
        let resumed = floc_resume(&m, &ckpt, &base, None).unwrap();
        assert_eq!(resumed.clusters, reference.clusters);
        assert_eq!(resumed.residues, reference.residues);
        assert_eq!(resumed.avg_residue, reference.avg_residue);
        assert_eq!(resumed.iterations, reference.iterations);
        assert_eq!(resumed.trace, reference.trace);
    }

    #[test]
    fn tight_budget_checkpoint_resumes_to_the_uninterrupted_result() {
        // A budget small enough to fire mid-iteration on most machines;
        // whichever boundary it hits (iteration top or mid-action), the
        // emitted checkpoint must resume to the uninterrupted result.
        let m = planted(60, 30, 20, 10, 51);
        let base = FlocConfig::builder(3).seed(29).build();
        let reference = floc(&m, &base).unwrap();

        let mut budgeted = base.clone();
        budgeted.time_budget = Some(std::time::Duration::from_micros(500));
        let mut last: Option<crate::checkpoint::FlocCheckpoint> = None;
        let mut obs = |c: &crate::checkpoint::FlocCheckpoint| last = Some(c.clone());
        let partial = floc_observed(&m, &budgeted, Some(&mut obs)).unwrap();
        let ckpt = last.unwrap();
        if partial.stop_reason == crate::history::StopReason::Budget {
            assert_eq!(ckpt.stop, None, "budget checkpoints stay resumable");
        }
        let resumed = floc_resume(&m, &ckpt, &base, None).unwrap();
        assert_eq!(resumed.clusters, reference.clusters);
        assert_eq!(resumed.avg_residue, reference.avg_residue);
        assert_eq!(resumed.iterations, reference.iterations);
    }

    #[test]
    fn resuming_a_terminal_checkpoint_returns_immediately() {
        let m = planted(25, 12, 8, 5, 3);
        let config = FlocConfig::builder(2).seed(17).build();
        let mut last: Option<crate::checkpoint::FlocCheckpoint> = None;
        let mut obs = |c: &crate::checkpoint::FlocCheckpoint| last = Some(c.clone());
        let reference = floc_observed(&m, &config, Some(&mut obs)).unwrap();
        let terminal = last.unwrap();
        assert_eq!(terminal.stop, Some(reference.stop_reason));
        let resumed = floc_resume(&m, &terminal, &config, None).unwrap();
        assert_eq!(resumed.clusters, reference.clusters);
        assert_eq!(resumed.iterations, reference.iterations);
        assert_eq!(resumed.stop_reason, reference.stop_reason);
    }

    #[test]
    fn resume_rejects_a_different_matrix_or_config() {
        let m = planted(25, 12, 8, 5, 3);
        let config = FlocConfig::builder(2).seed(17).build();
        let mut last: Option<crate::checkpoint::FlocCheckpoint> = None;
        let mut obs = |c: &crate::checkpoint::FlocCheckpoint| last = Some(c.clone());
        let _ = floc_observed(&m, &config, Some(&mut obs)).unwrap();
        let ckpt = last.unwrap();

        let other = planted(25, 12, 8, 5, 4);
        let err = floc_resume(&other, &ckpt, &config, None).unwrap_err();
        assert!(matches!(
            err,
            FlocError::Resume(ResumeError::MatrixMismatch { .. })
        ));

        let other_cfg = FlocConfig::builder(2).seed(18).build();
        let err = floc_resume(&m, &ckpt, &other_cfg, None).unwrap_err();
        assert!(matches!(
            err,
            FlocError::Resume(ResumeError::ConfigMismatch { field: "seed" })
        ));
        assert!(err.to_string().contains("seed"));
    }

    #[test]
    fn all_orderings_produce_valid_results() {
        let m = planted(25, 12, 8, 5, 19);
        for ord in [Ordering::Fixed, Ordering::Random, Ordering::Weighted] {
            let r = floc(&m, &FlocConfig::builder(2).ordering(ord).seed(77).build()).unwrap();
            assert_eq!(r.clusters.len(), 2, "{ord:?}");
            assert!(r.avg_residue.is_finite(), "{ord:?}");
        }
    }
}
