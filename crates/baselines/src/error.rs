//! Typed errors for baseline algorithm runs.

/// Why a baseline algorithm could not produce a clustering.
///
/// Cooperative stops (interrupt, time budget) are *not* errors — they
/// surface as [`crate::FitStop`] on a successful result carrying the best
/// clustering found so far, mirroring FLOC's `StopReason` contract.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The matrix has no specified entries to cluster.
    EmptyMatrix,
    /// A configuration parameter is out of range for this input
    /// (e.g. more medoids than rows, `avg_dims` above the column count).
    InvalidConfig(String),
    /// The wrapped algorithm itself failed.
    Algorithm(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::EmptyMatrix => f.write_str("matrix has no specified entries"),
            BaselineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BaselineError::Algorithm(msg) => write!(f, "algorithm error: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            BaselineError::EmptyMatrix.to_string(),
            "matrix has no specified entries"
        );
        assert!(BaselineError::InvalidConfig("k > rows".into())
            .to_string()
            .contains("k > rows"));
        assert!(BaselineError::Algorithm("seed failed".into())
            .to_string()
            .contains("seed failed"));
    }
}
