//! PROCLUS — medoid-based projected clustering (Aggarwal, Wolf, Yu,
//! Procopiuc, Park: *Fast Algorithms for Projected Clustering*, SIGMOD
//! 1999).
//!
//! Three phases, faithful to the paper's structure:
//!
//! 1. **Initialization** — draw a random sample of `sample_factor · k`
//!    points, then greedily (farthest-first) keep `candidate_factor · k`
//!    well-separated medoid candidates.
//! 2. **Iteration** — hill-climb over k-subsets of the candidates: for the
//!    current medoids, select each medoid's dimensions from the locality
//!    of points inside its nearest-medoid radius (smallest standardized
//!    per-dimension mean distance, ≥ 2 per medoid, `k · avg_dims` total),
//!    assign every point to the nearest medoid under Manhattan *segmental*
//!    distance on that medoid's dimensions, score the clustering, and
//!    replace the bad medoids of the best solution with random candidates.
//! 3. **Refinement** — redo dimension selection once from the actual best
//!    clusters (not localities), reassign, and discard outliers farther
//!    from every medoid than that medoid's sphere of influence.
//!
//! Deviation from the paper: cluster dispersion is measured to the medoid
//! rather than the centroid (one less pass, no behavioral difference on
//! the synthetic grids we evaluate), and missing entries — which the
//! original algorithm does not model — are skipped pairwise by the
//! segmental distance.
//!
//! Determinism: all randomness flows from one seeded [`StdRng`]; threads
//! only parallelize independent per-point distance evaluations, reduced in
//! index order.

use crate::error::BaselineError;
use crate::par::map_indexed;
use crate::traits::{FitContext, FitStop, SubspaceAlgorithm, SubspaceClustering};
use dc_floc::DeltaCluster;
use dc_matrix::DataMatrix;
use dc_obs::Field;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// PROCLUS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProclusConfig {
    /// Number of clusters (medoids) to search for.
    pub k: usize,
    /// Average projected dimensionality `l`: `k · l` dimensions are
    /// distributed over the medoids (each gets at least 2).
    pub avg_dims: usize,
    /// Sample size as a multiple of `k` (the paper's `A = a · k`).
    pub sample_factor: usize,
    /// Medoid-candidate set size as a multiple of `k` (the paper's
    /// `B = b · k`); candidates are drawn greedily from the sample.
    pub candidate_factor: usize,
    /// Hard cap on hill-climbing iterations.
    pub max_iterations: usize,
    /// Consecutive non-improving iterations before declaring convergence.
    pub stale_limit: usize,
    /// A cluster holding fewer than `min_deviation · n / k` points marks
    /// its medoid as bad.
    pub min_deviation: f64,
    /// RNG seed; equal seeds yield bit-identical clusterings.
    pub seed: u64,
}

impl Default for ProclusConfig {
    fn default() -> Self {
        ProclusConfig {
            k: 5,
            avg_dims: 4,
            sample_factor: 10,
            candidate_factor: 3,
            max_iterations: 30,
            stale_limit: 5,
            min_deviation: 0.1,
            seed: 0,
        }
    }
}

/// The PROCLUS algorithm behind the [`SubspaceAlgorithm`] interface.
#[derive(Debug, Clone, Default)]
pub struct Proclus {
    /// Algorithm parameters.
    pub config: ProclusConfig,
}

impl Proclus {
    /// Convenience constructor.
    pub fn new(config: ProclusConfig) -> Self {
        Proclus { config }
    }
}

/// Manhattan segmental distance between rows `a` and `b` over `dims`:
/// the *average* per-dimension absolute difference, over the dimensions
/// specified in both rows. No shared dimension ⇒ `∞`.
fn segmental(matrix: &DataMatrix, a: usize, b: usize, dims: &[usize]) -> f64 {
    let mut sum = 0.0;
    let mut used = 0usize;
    for &d in dims {
        if let (Some(x), Some(y)) = (matrix.get(a, d), matrix.get(b, d)) {
            sum += (x - y).abs();
            used += 1;
        }
    }
    if used == 0 {
        f64::INFINITY
    } else {
        sum / used as f64
    }
}

/// One candidate solution: medoids plus their selected dimensions.
struct Solution {
    medoids: Vec<usize>,
    /// `dims[i]` — ascending dimension list of medoid `i`.
    dims: Vec<Vec<usize>>,
    /// `assign[p]` — medoid index, or `usize::MAX` for unassignable points.
    assign: Vec<usize>,
    objective: f64,
}

impl SubspaceAlgorithm for Proclus {
    fn name(&self) -> &'static str {
        "proclus"
    }

    fn fit(
        &self,
        matrix: &DataMatrix,
        ctx: &FitContext,
    ) -> Result<SubspaceClustering, BaselineError> {
        let cfg = &self.config;
        let n = matrix.rows();
        let d = matrix.cols();
        if n == 0 || d == 0 || matrix.specified_count() == 0 {
            return Err(BaselineError::EmptyMatrix);
        }
        if cfg.k == 0 {
            return Err(BaselineError::InvalidConfig("k must be at least 1".into()));
        }
        if cfg.k > n {
            return Err(BaselineError::InvalidConfig(format!(
                "k = {} exceeds the {} rows",
                cfg.k, n
            )));
        }
        if cfg.avg_dims < 2 {
            return Err(BaselineError::InvalidConfig(
                "avg_dims must be at least 2 (each medoid needs 2 dimensions)".into(),
            ));
        }
        if cfg.avg_dims > d {
            return Err(BaselineError::InvalidConfig(format!(
                "avg_dims = {} exceeds the {} columns",
                cfg.avg_dims, d
            )));
        }

        let started = Instant::now();
        let deadline = ctx.deadline();
        let threads = ctx.effective_threads();
        let span = ctx.obs.span("proclus.fit");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let all_dims: Vec<usize> = (0..d).collect();

        // Phase 1: sample, then greedy farthest-first candidates.
        let sample = sample_rows(n, cfg.sample_factor.max(1) * cfg.k, &mut rng);
        let b = (cfg.candidate_factor.max(1) * cfg.k).clamp(cfg.k, sample.len());
        let candidates = greedy_candidates(matrix, &sample, b, &all_dims);

        // Phase 2: hill-climb over medoid subsets.
        let mut current: Vec<usize> = candidates[..cfg.k].to_vec();
        let mut best: Option<Solution> = None;
        let mut stale = 0usize;
        let mut stop = FitStop::Capped;
        for iteration in 0..cfg.max_iterations {
            if let Some(s) = deadline.check() {
                stop = s;
                break;
            }
            let sol = evaluate_medoids(matrix, &current, cfg, &all_dims, threads);
            let improved = match &best {
                Some(b) => sol.objective < b.objective,
                None => true,
            };
            if ctx.obs.enabled() {
                ctx.obs.emit(
                    "proclus.iteration",
                    &[
                        Field::new("iteration", iteration as u64),
                        Field::new("objective", sol.objective),
                        Field::new("improved", improved),
                    ],
                );
            }
            if improved {
                best = Some(sol);
                stale = 0;
            } else {
                stale += 1;
                if stale >= cfg.stale_limit {
                    stop = FitStop::Converged;
                    break;
                }
            }
            let incumbent = best.as_ref().expect("best set after first iteration");
            match replace_bad_medoids(incumbent, cfg, n, &candidates, &mut rng) {
                Some(next) => current = next,
                None => {
                    // Candidate pool exhausted: nothing left to try.
                    stop = FitStop::Converged;
                    break;
                }
            }
        }
        let Some(best) = best else {
            // Stopped (or capped at zero iterations) before any medoid set
            // was evaluated: report an empty best-so-far clustering.
            span.finish(&[Field::new("clusters", 0u64)]);
            return Ok(SubspaceClustering::from_clusters(
                self.name(),
                matrix,
                Vec::new(),
                started.elapsed(),
                stop,
            ));
        };

        // Phase 3: refinement from the actual clusters, then outliers.
        let refined = refine(matrix, &best, cfg, threads);
        let clusters = collect_clusters(matrix, &refined);
        span.finish(&[
            Field::new("clusters", clusters.len() as u64),
            Field::new("objective", refined.objective),
        ]);
        Ok(SubspaceClustering::from_clusters(
            self.name(),
            matrix,
            clusters,
            started.elapsed(),
            stop,
        ))
    }
}

/// Draws `want` distinct row indices uniformly (all rows when `want ≥ n`).
fn sample_rows(n: usize, want: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let want = want.min(n);
    // Fisher–Yates prefix: after the loop, idx[..want] is a uniform sample.
    for i in 0..want {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(want);
    idx
}

/// Farthest-first traversal over the sample: candidates end up mutually
/// well-separated, so a k-prefix pierces k distinct natural clusters with
/// good probability (the paper's Lemma 3.1 argument).
fn greedy_candidates(
    matrix: &DataMatrix,
    sample: &[usize],
    want: usize,
    all_dims: &[usize],
) -> Vec<usize> {
    let mut chosen = vec![sample[0]];
    let mut dist: Vec<f64> = sample
        .iter()
        .map(|&p| finite_or_max(segmental(matrix, p, sample[0], all_dims)))
        .collect();
    while chosen.len() < want {
        let mut far = 0usize;
        for i in 1..sample.len() {
            if dist[i] > dist[far] {
                far = i;
            }
        }
        let next = sample[far];
        chosen.push(next);
        for (i, &p) in sample.iter().enumerate() {
            let d = finite_or_max(segmental(matrix, p, next, all_dims));
            if d < dist[i] {
                dist[i] = d;
            }
        }
    }
    chosen
}

/// Maps `∞` (no shared specified dimension) to `f64::MAX` so farthest-first
/// comparisons stay total without drowning real distances.
fn finite_or_max(d: f64) -> f64 {
    if d.is_finite() {
        d
    } else {
        f64::MAX
    }
}

/// Dimension selection + assignment + scoring for one medoid set.
fn evaluate_medoids(
    matrix: &DataMatrix,
    medoids: &[usize],
    cfg: &ProclusConfig,
    all_dims: &[usize],
    threads: usize,
) -> Solution {
    let n = matrix.rows();
    let k = medoids.len();

    // Full-dimensional distance from every point to every medoid (the
    // locality test and the radius both need it).
    let point_dist: Vec<Vec<f64>> = map_indexed(n, threads, |p| {
        medoids
            .iter()
            .map(|&m| segmental(matrix, p, m, all_dims))
            .collect()
    });

    // δ_i — distance to the nearest other medoid; with k = 1 every point
    // is local.
    let localities: Vec<Vec<usize>> = (0..k)
        .map(|i| {
            let delta = (0..k)
                .filter(|&j| j != i)
                .map(|j| finite_or_max(point_dist[medoids[j]][i]))
                .fold(f64::MAX, f64::min);
            (0..n).filter(|&p| point_dist[p][i] <= delta).collect()
        })
        .collect();

    let dims = select_dimensions(matrix, medoids, &localities, cfg.avg_dims);
    let (assign, objective) = assign_and_score(matrix, medoids, &dims, threads);
    Solution {
        medoids: medoids.to_vec(),
        dims,
        assign,
        objective,
    }
}

/// The paper's dimension-selection step: per-medoid per-dimension mean
/// absolute deviation over a point set, standardized within the medoid,
/// then a greedy global pick of `k · avg_dims` dimensions with ≥ 2 per
/// medoid (smallest standardized deviation first).
fn select_dimensions(
    matrix: &DataMatrix,
    medoids: &[usize],
    point_sets: &[Vec<usize>],
    avg_dims: usize,
) -> Vec<Vec<usize>> {
    let d = matrix.cols();
    let k = medoids.len();

    // X[i][j]: mean |p_j − m_j| over the medoid's point set (∞ when no
    // pair of specified values exists).
    let x: Vec<Vec<f64>> = (0..k)
        .map(|i| {
            let m = medoids[i];
            let mut sums = vec![0.0f64; d];
            let mut counts = vec![0usize; d];
            for &p in &point_sets[i] {
                for j in 0..d {
                    if let (Some(a), Some(b)) = (matrix.get(p, j), matrix.get(m, j)) {
                        sums[j] += (a - b).abs();
                        counts[j] += 1;
                    }
                }
            }
            (0..d)
                .map(|j| {
                    if counts[j] == 0 {
                        f64::INFINITY
                    } else {
                        sums[j] / counts[j] as f64
                    }
                })
                .collect()
        })
        .collect();

    // Standardize within each medoid over its finite dimensions.
    let mut scored: Vec<(f64, usize, usize)> = Vec::with_capacity(k * d);
    for (i, row) in x.iter().enumerate() {
        let finite: Vec<f64> = row.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            continue;
        }
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        let var = if finite.len() > 1 {
            finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (finite.len() - 1) as f64
        } else {
            0.0
        };
        let sd = var.sqrt();
        for (j, &v) in row.iter().enumerate() {
            if v.is_finite() {
                let z = if sd > 0.0 { (v - mean) / sd } else { 0.0 };
                scored.push((z, i, j));
            }
        }
    }
    scored.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });

    let total = k * avg_dims;
    let mut dims: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut picked = 0usize;
    // First pass: guarantee two dimensions per medoid.
    for &(_, i, j) in &scored {
        if dims[i].len() < 2 {
            dims[i].push(j);
            picked += 1;
        }
    }
    // Second pass: spend the rest of the budget globally.
    for &(_, i, j) in &scored {
        if picked >= total {
            break;
        }
        if !dims[i].contains(&j) {
            dims[i].push(j);
            picked += 1;
        }
    }
    for dl in &mut dims {
        dl.sort_unstable();
    }
    dims
}

/// Nearest-medoid assignment under each medoid's own dimensions, plus the
/// dispersion objective (mean segmental distance to the assigned medoid).
fn assign_and_score(
    matrix: &DataMatrix,
    medoids: &[usize],
    dims: &[Vec<usize>],
    threads: usize,
) -> (Vec<usize>, f64) {
    let n = matrix.rows();
    let assign_dist: Vec<(usize, f64)> = map_indexed(n, threads, |p| {
        let mut which = usize::MAX;
        let mut best = f64::INFINITY;
        for (i, m) in medoids.iter().enumerate() {
            if dims[i].is_empty() {
                continue;
            }
            let dist = segmental(matrix, p, *m, &dims[i]);
            if dist < best {
                best = dist;
                which = i;
            }
        }
        (which, best)
    });
    let mut sum = 0.0;
    let mut assigned = 0usize;
    let mut assign = Vec::with_capacity(n);
    for &(which, dist) in &assign_dist {
        assign.push(which);
        if which != usize::MAX {
            sum += dist;
            assigned += 1;
        }
    }
    let objective = if assigned == 0 {
        f64::INFINITY
    } else {
        sum / assigned as f64
    };
    (assign, objective)
}

/// Swaps the bad medoids of the best solution (smallest cluster plus any
/// below the deviation floor) for random unused candidates. `None` when
/// the candidate pool cannot cover the swap.
fn replace_bad_medoids(
    best: &Solution,
    cfg: &ProclusConfig,
    n: usize,
    candidates: &[usize],
    rng: &mut StdRng,
) -> Option<Vec<usize>> {
    let k = best.medoids.len();
    let mut sizes = vec![0usize; k];
    for &a in &best.assign {
        if a != usize::MAX {
            sizes[a] += 1;
        }
    }
    let floor = (cfg.min_deviation * n as f64 / k as f64) as usize;
    let smallest = (0..k).min_by_key(|&i| (sizes[i], i)).expect("k >= 1");
    let mut bad: Vec<usize> = (0..k)
        .filter(|&i| i == smallest || sizes[i] < floor)
        .collect();
    if bad.is_empty() {
        bad.push(smallest);
    }
    let mut next = best.medoids.clone();
    let mut pool: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|c| !next.contains(c))
        .collect();
    for &i in &bad {
        if pool.is_empty() {
            return None;
        }
        let pick = rng.gen_range(0..pool.len());
        next[i] = pool.swap_remove(pick);
    }
    Some(next)
}

/// The refinement pass: dimensions recomputed from the actual clusters,
/// one final reassignment, and the paper's outlier test (a point beyond
/// every medoid's sphere of influence is discarded).
fn refine(matrix: &DataMatrix, best: &Solution, cfg: &ProclusConfig, threads: usize) -> Solution {
    let k = best.medoids.len();
    let clusters: Vec<Vec<usize>> = {
        let mut cs: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (p, &a) in best.assign.iter().enumerate() {
            if a != usize::MAX {
                cs[a].push(p);
            }
        }
        cs
    };
    // Empty clusters fall back to the medoid itself so selection stays
    // defined.
    let sets: Vec<Vec<usize>> = clusters
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if c.is_empty() {
                vec![best.medoids[i]]
            } else {
                c.clone()
            }
        })
        .collect();
    let dims = select_dimensions(matrix, &best.medoids, &sets, cfg.avg_dims);
    let (mut assign, objective) = assign_and_score(matrix, &best.medoids, &dims, threads);

    // Sphere of influence Δ_i: distance from medoid i to its nearest other
    // medoid, measured in medoid i's own subspace. Points farther than Δ
    // from every medoid are outliers.
    if k > 1 {
        let delta: Vec<f64> = (0..k)
            .map(|i| {
                (0..k)
                    .filter(|&j| j != i)
                    .map(|j| {
                        finite_or_max(segmental(
                            matrix,
                            best.medoids[i],
                            best.medoids[j],
                            &dims[i],
                        ))
                    })
                    .fold(f64::MAX, f64::min)
            })
            .collect();
        let outlier: Vec<bool> = map_indexed(matrix.rows(), threads, |p| {
            (0..k).all(|i| {
                dims[i].is_empty() || segmental(matrix, p, best.medoids[i], &dims[i]) > delta[i]
            })
        });
        for (p, is_out) in outlier.iter().enumerate() {
            if *is_out {
                assign[p] = usize::MAX;
            }
        }
    }
    Solution {
        medoids: best.medoids.clone(),
        dims,
        assign,
        objective,
    }
}

/// Materializes the solution as δ-clusters (rows = members, cols = the
/// medoid's selected dimensions). Medoids always belong to their own
/// cluster.
fn collect_clusters(matrix: &DataMatrix, sol: &Solution) -> Vec<DeltaCluster> {
    let k = sol.medoids.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (p, &a) in sol.assign.iter().enumerate() {
        if a != usize::MAX {
            members[a].push(p);
        }
    }
    for (i, m) in members.iter_mut().enumerate() {
        let medoid = sol.medoids[i];
        if !m.contains(&medoid) {
            m.push(medoid);
            m.sort_unstable();
        }
    }
    (0..k)
        .map(|i| {
            DeltaCluster::from_indices(
                matrix.rows(),
                matrix.cols(),
                members[i].iter().copied(),
                sol.dims[i].iter().copied(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two projected clusters: rows 0..20 coherent on dims 0..3, rows
    /// 20..40 coherent on dims 3..6, noise elsewhere.
    fn planted(seed: u64) -> DataMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DataMatrix::builder(50, 8).build();
        for r in 0..50 {
            for c in 0..8 {
                let v = if r < 20 && c < 3 {
                    10.0 + c as f64 + rng.gen_range(-0.1..0.1)
                } else if (20..40).contains(&r) && (3..6).contains(&c) {
                    60.0 + c as f64 + rng.gen_range(-0.1..0.1)
                } else {
                    rng.gen_range(0.0..200.0)
                };
                m.set(r, c, v);
            }
        }
        m
    }

    fn config() -> ProclusConfig {
        ProclusConfig {
            k: 2,
            avg_dims: 3,
            seed: 7,
            ..ProclusConfig::default()
        }
    }

    #[test]
    fn recovers_the_planted_projected_clusters() {
        let m = planted(1);
        let out = Proclus::new(config())
            .fit(&m, &FitContext::serial())
            .unwrap();
        assert_eq!(out.clusters.len(), 2);
        // Each planted group should dominate one cluster.
        let mut found_first = false;
        let mut found_second = false;
        for c in &out.clusters {
            let lo = c.rows.iter().filter(|&r| r < 20).count();
            let hi = c.rows.iter().filter(|&r| (20..40).contains(&r)).count();
            if lo > c.row_count() / 2 {
                found_first = true;
            }
            if hi > c.row_count() / 2 {
                found_second = true;
            }
        }
        assert!(found_first && found_second, "{out:?}");
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let m = planted(2);
        let ctx = FitContext::serial();
        let p = Proclus::new(config());
        let a = p.fit(&m, &ctx).unwrap();
        let b = p.fit(&m, &ctx).unwrap();
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.residues, b.residues);
    }

    #[test]
    fn thread_count_does_not_change_the_clustering() {
        let m = planted(3);
        let p = Proclus::new(config());
        let serial = p.fit(&m, &FitContext::serial()).unwrap();
        for threads in [2, 4] {
            let par = p
                .fit(&m, &FitContext::serial().with_threads(threads))
                .unwrap();
            assert_eq!(serial.clusters, par.clusters, "threads={threads}");
        }
    }

    #[test]
    fn every_cluster_gets_at_least_two_dimensions() {
        let m = planted(4);
        let out = Proclus::new(config())
            .fit(&m, &FitContext::serial())
            .unwrap();
        for c in &out.clusters {
            assert!(c.col_count() >= 2, "{c:?}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected_with_typed_errors() {
        let m = planted(5);
        let ctx = FitContext::serial();
        let bad_k = Proclus::new(ProclusConfig { k: 0, ..config() });
        assert!(matches!(
            bad_k.fit(&m, &ctx),
            Err(BaselineError::InvalidConfig(_))
        ));
        let k_too_big = Proclus::new(ProclusConfig { k: 51, ..config() });
        assert!(matches!(
            k_too_big.fit(&m, &ctx),
            Err(BaselineError::InvalidConfig(_))
        ));
        let thin_dims = Proclus::new(ProclusConfig {
            avg_dims: 1,
            ..config()
        });
        assert!(matches!(
            thin_dims.fit(&m, &ctx),
            Err(BaselineError::InvalidConfig(_))
        ));
        let empty = DataMatrix::builder(3, 3).build();
        assert!(matches!(
            Proclus::new(config()).fit(&empty, &ctx),
            Err(BaselineError::EmptyMatrix)
        ));
    }

    #[test]
    fn raised_interrupt_stops_with_best_so_far() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let m = planted(6);
        let flag = Arc::new(AtomicBool::new(true)); // raised before the run
        let ctx = FitContext::serial().with_interrupt(flag);
        let out = Proclus::new(config()).fit(&m, &ctx).unwrap();
        assert_eq!(out.stop, FitStop::Interrupted);
    }
}
