//! SUBCLU — density-connected subspace clustering (Kailing, Kriegel,
//! Kröger: *Density-Connected Subspace Clustering for High-Dimensional
//! Data*, SDM 2004).
//!
//! Bottom-up lattice walk over subspaces, powered by the shared
//! [`crate::dbscan`] engine:
//!
//! 1. Run DBSCAN in every 1-dimensional subspace; keep the dimensions that
//!    contain clusters.
//! 2. Level `s → s+1`: generate candidate `(s+1)`-subspaces by the
//!    Apriori join (two `s`-subspaces sharing an `(s−1)`-prefix), pruning
//!    any candidate with an `s`-subset that produced no clusters — density
//!    connectivity is anti-monotone, so no cluster can exist there.
//! 3. For each surviving candidate, rerun DBSCAN *only inside the
//!    clusters* of its cheapest `s`-subspace (fewest clustered points),
//!    which is what keeps the walk tractable.
//!
//! Every cluster found at any level is reported (optionally capped to the
//! best-by-residue `keep`); a candidate budget bounds the combinatorial
//! worst case and reports [`FitStop::Capped`] when it trips.

use crate::dbscan::{dbscan, DbscanParams};
use crate::error::BaselineError;
use crate::traits::{FitContext, FitStop, SubspaceAlgorithm, SubspaceClustering};
use dc_floc::{cluster_residue, DeltaCluster, ResidueMean};
use dc_matrix::DataMatrix;
use dc_obs::Field;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Instant;

/// SUBCLU parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubcluConfig {
    /// DBSCAN neighborhood radius, shared by every subspace.
    pub eps: f64,
    /// DBSCAN core-point threshold (the point itself counts).
    pub min_pts: usize,
    /// Maximum subspace dimensionality to explore.
    pub max_dims: usize,
    /// Budget on candidate subspaces examined at levels ≥ 2 (0 =
    /// unbounded). Exceeding it stops the walk with [`FitStop::Capped`].
    pub max_candidates: usize,
    /// Minimum rows for a cluster to be reported (0 ⇒ `min_pts`).
    pub min_rows: usize,
    /// Report only the `keep` lowest-residue clusters (0 = all).
    pub keep: usize,
}

impl Default for SubcluConfig {
    fn default() -> Self {
        SubcluConfig {
            eps: 4.0,
            min_pts: 8,
            max_dims: 3,
            max_candidates: 512,
            min_rows: 0,
            keep: 0,
        }
    }
}

/// The SUBCLU algorithm behind the [`SubspaceAlgorithm`] interface.
#[derive(Debug, Clone, Default)]
pub struct Subclu {
    /// Algorithm parameters.
    pub config: SubcluConfig,
}

impl Subclu {
    /// Convenience constructor.
    pub fn new(config: SubcluConfig) -> Self {
        Subclu { config }
    }
}

/// One subspace with its density-connected clusters.
struct Subspace {
    dims: Vec<usize>,
    clusters: Vec<Vec<usize>>,
    /// Total clustered points, the "cheapest subspace" criterion.
    weight: usize,
}

impl SubspaceAlgorithm for Subclu {
    fn name(&self) -> &'static str {
        "subclu"
    }

    fn fit(
        &self,
        matrix: &DataMatrix,
        ctx: &FitContext,
    ) -> Result<SubspaceClustering, BaselineError> {
        let cfg = &self.config;
        if matrix.rows() == 0 || matrix.cols() == 0 || matrix.specified_count() == 0 {
            return Err(BaselineError::EmptyMatrix);
        }
        if !cfg.eps.is_finite() || cfg.eps <= 0.0 {
            return Err(BaselineError::InvalidConfig("eps must be positive".into()));
        }
        if cfg.min_pts == 0 {
            return Err(BaselineError::InvalidConfig(
                "min_pts must be at least 1".into(),
            ));
        }
        if cfg.max_dims == 0 {
            return Err(BaselineError::InvalidConfig(
                "max_dims must be at least 1".into(),
            ));
        }

        let started = Instant::now();
        let deadline = ctx.deadline();
        let threads = ctx.effective_threads();
        let span = ctx.obs.span("subclu.fit");
        let params = DbscanParams {
            eps: cfg.eps,
            min_pts: cfg.min_pts,
        };
        let all_rows: Vec<usize> = (0..matrix.rows()).collect();
        let mut stop = FitStop::Converged;
        let mut found: Vec<(Vec<usize>, Vec<usize>)> = Vec::new(); // (dims, rows)

        // Level 1: every single dimension.
        let mut current: Vec<Subspace> = Vec::new();
        'level1: for d in 0..matrix.cols() {
            if let Some(s) = deadline.check() {
                stop = s;
                break 'level1;
            }
            let clusters = dbscan(matrix, &[d], &all_rows, params, threads);
            if clusters.is_empty() {
                continue;
            }
            let weight = clusters.iter().map(Vec::len).sum();
            for c in &clusters {
                found.push((vec![d], c.clone()));
            }
            current.push(Subspace {
                dims: vec![d],
                clusters,
                weight,
            });
        }
        emit_level(ctx, 1, current.len(), found.len());

        // Levels 2..=max_dims: Apriori walk.
        let mut budget = cfg.max_candidates;
        let mut level = 1usize;
        'walk: while stop == FitStop::Converged && level < cfg.max_dims && current.len() > 1 {
            level += 1;
            let alive: HashSet<&[usize]> = current.iter().map(|s| s.dims.as_slice()).collect();
            let mut next: Vec<Subspace> = Vec::new();
            let mut candidates = 0usize;
            for i in 0..current.len() {
                for j in (i + 1)..current.len() {
                    let (a, b) = (&current[i].dims, &current[j].dims);
                    // Join: equal prefix, distinct last dimension.
                    if a[..a.len() - 1] != b[..b.len() - 1] {
                        continue;
                    }
                    let mut cand = a.clone();
                    cand.push(*b.last().expect("non-empty dims"));
                    cand.sort_unstable();
                    // Monotonicity prune: every s-subset must be alive.
                    let mut sub = cand.clone();
                    let prunable = (0..cand.len()).any(|skip| {
                        sub.clear();
                        sub.extend(
                            cand.iter()
                                .enumerate()
                                .filter_map(|(idx, &d)| (idx != skip).then_some(d)),
                        );
                        !alive.contains(sub.as_slice())
                    });
                    if prunable {
                        continue;
                    }
                    if let Some(s) = deadline.check() {
                        stop = s;
                        break 'walk;
                    }
                    if cfg.max_candidates > 0 {
                        if budget == 0 {
                            stop = FitStop::Capped;
                            break 'walk;
                        }
                        budget -= 1;
                    }
                    candidates += 1;
                    // Cheapest s-subset restricts the DBSCAN input.
                    let cheapest = cheapest_subset(&cand, &current);
                    let mut clusters: Vec<Vec<usize>> = Vec::new();
                    for base in &current[cheapest].clusters {
                        clusters.extend(dbscan(matrix, &cand, base, params, threads));
                    }
                    if clusters.is_empty() {
                        continue;
                    }
                    let weight = clusters.iter().map(Vec::len).sum();
                    for c in &clusters {
                        found.push((cand.clone(), c.clone()));
                    }
                    next.push(Subspace {
                        dims: cand,
                        clusters,
                        weight,
                    });
                }
            }
            emit_level(ctx, level, candidates, found.len());
            if next.is_empty() {
                break;
            }
            current = next;
        }

        // Report: size floor, then optional best-by-residue cap.
        let min_rows = if cfg.min_rows == 0 {
            cfg.min_pts
        } else {
            cfg.min_rows
        };
        let mut clusters: Vec<DeltaCluster> = found
            .into_iter()
            .filter(|(_, rows)| rows.len() >= min_rows)
            .map(|(dims, rows)| {
                DeltaCluster::from_indices(matrix.rows(), matrix.cols(), rows, dims)
            })
            .collect();
        if cfg.keep > 0 && clusters.len() > cfg.keep {
            let mut scored: Vec<(f64, DeltaCluster)> = clusters
                .into_iter()
                .map(|c| (cluster_residue(matrix, &c, ResidueMean::Arithmetic), c))
                .collect();
            scored.sort_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then_with(|| b.1.footprint().cmp(&a.1.footprint()))
            });
            scored.truncate(cfg.keep);
            clusters = scored.into_iter().map(|(_, c)| c).collect();
        }
        span.finish(&[
            Field::new("clusters", clusters.len() as u64),
            Field::new("levels", level as u64),
        ]);
        Ok(SubspaceClustering::from_clusters(
            self.name(),
            matrix,
            clusters,
            started.elapsed(),
            stop,
        ))
    }
}

/// Index (into `current`) of the candidate's `s`-subset with the fewest
/// clustered points. Every subset is alive — the prune ran first.
fn cheapest_subset(cand: &[usize], current: &[Subspace]) -> usize {
    let mut best = usize::MAX;
    let mut best_weight = usize::MAX;
    for (idx, s) in current.iter().enumerate() {
        if s.dims.iter().all(|d| cand.contains(d)) && s.weight < best_weight {
            best = idx;
            best_weight = s.weight;
        }
    }
    debug_assert!(best != usize::MAX, "prune guarantees a live subset");
    best
}

fn emit_level(ctx: &FitContext, level: usize, subspaces: usize, clusters_so_far: usize) {
    if ctx.obs.enabled() {
        ctx.obs.emit(
            "subclu.level",
            &[
                Field::new("level", level as u64),
                Field::new("subspaces", subspaces as u64),
                Field::new("clusters_so_far", clusters_so_far as u64),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Rows 0..15 dense on dims {0,1,2}; everything else uniform noise.
    fn planted(seed: u64) -> DataMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = DataMatrix::builder(40, 6).build();
        for r in 0..40 {
            for c in 0..6 {
                let v = if r < 15 && c < 3 {
                    20.0 + rng.gen_range(-0.5..0.5)
                } else {
                    rng.gen_range(0.0..500.0)
                };
                m.set(r, c, v);
            }
        }
        m
    }

    fn config() -> SubcluConfig {
        SubcluConfig {
            eps: 2.0,
            min_pts: 5,
            max_dims: 3,
            ..SubcluConfig::default()
        }
    }

    #[test]
    fn finds_the_planted_dense_subspace() {
        let m = planted(1);
        let out = Subclu::new(config())
            .fit(&m, &FitContext::serial())
            .unwrap();
        assert!(!out.clusters.is_empty());
        // Some reported cluster must cover the planted block at ≥ 2 dims.
        let hit = out.clusters.iter().any(|c| {
            c.col_count() >= 2
                && c.cols.iter().all(|d| d < 3)
                && c.rows.iter().filter(|&r| r < 15).count() >= 10
        });
        assert!(hit, "planted subspace not recovered: {out:?}");
        assert_eq!(out.stop, FitStop::Converged);
    }

    #[test]
    fn same_input_is_bit_identical_across_runs_and_threads() {
        let m = planted(2);
        let s = Subclu::new(config());
        let a = s.fit(&m, &FitContext::serial()).unwrap();
        let b = s.fit(&m, &FitContext::serial()).unwrap();
        assert_eq!(a.clusters, b.clusters);
        for threads in [2, 4] {
            let t = s
                .fit(&m, &FitContext::serial().with_threads(threads))
                .unwrap();
            assert_eq!(a.clusters, t.clusters, "threads={threads}");
        }
    }

    #[test]
    fn candidate_budget_caps_the_walk() {
        let m = planted(3);
        let mut cfg = config();
        cfg.eps = 100.0; // everything is dense everywhere
        cfg.max_candidates = 2;
        let out = Subclu::new(cfg).fit(&m, &FitContext::serial()).unwrap();
        assert_eq!(out.stop, FitStop::Capped);
    }

    #[test]
    fn keep_caps_the_report_to_lowest_residue() {
        let m = planted(4);
        let mut cfg = config();
        cfg.keep = 2;
        let out = Subclu::new(cfg).fit(&m, &FitContext::serial()).unwrap();
        assert!(out.clusters.len() <= 2);
        for pair in out.residues.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12, "sorted by residue: {out:?}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let m = planted(5);
        let ctx = FitContext::serial();
        for bad in [
            SubcluConfig {
                eps: 0.0,
                ..config()
            },
            SubcluConfig {
                min_pts: 0,
                ..config()
            },
            SubcluConfig {
                max_dims: 0,
                ..config()
            },
        ] {
            assert!(matches!(
                Subclu::new(bad).fit(&m, &ctx),
                Err(BaselineError::InvalidConfig(_))
            ));
        }
        let empty = DataMatrix::builder(2, 2).build();
        assert!(matches!(
            Subclu::new(config()).fit(&empty, &ctx),
            Err(BaselineError::EmptyMatrix)
        ));
    }

    #[test]
    fn raised_interrupt_reports_partial_results() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let m = planted(6);
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = FitContext::serial().with_interrupt(flag);
        let out = Subclu::new(config()).fit(&m, &ctx).unwrap();
        assert_eq!(out.stop, FitStop::Interrupted);
    }
}
