//! Deterministic data-parallel helper.
//!
//! Baselines parallelize only *independent per-index* computations, then
//! reduce serially in index order — the same strategy FLOC's gain
//! evaluation uses — so any thread count yields bit-identical results.

/// Computes `f(i)` for `i in 0..n`, fanning out over at most `threads`
/// contiguous chunks. The output is always in index order; with
/// `threads <= 1` this is a plain serial map.
pub(crate) fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut slots: Vec<Option<Vec<T>>> = (0..workers).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (i, slot) in slots.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let lo = i * chunk;
                let hi = ((i + 1) * chunk).min(n);
                *slot = Some((lo..hi).map(f).collect());
            });
        }
    })
    .expect("baseline worker panicked");
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(slot.expect("every chunk is filled before the scope ends"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_in_index_order_for_any_thread_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [0, 1, 2, 3, 4, 16, 200] {
            assert_eq!(map_indexed(97, threads, |i| i * i), expect, "{threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }
}
