//! The unified algorithm interface every baseline implements.
//!
//! `dc-eval` and the experiment harness consume clusterings as
//! `Vec<DeltaCluster>`; this module fixes that as the common currency so
//! FLOC, PROCLUS, SUBCLU, Cheng–Church, and the CLIQUE alternative can be
//! compared head-to-head by one loop. Algorithm-specific parameters live
//! on the implementing struct; the runtime plumbing every run shares —
//! observability, cooperative interruption, a wall-clock budget, a thread
//! budget — travels in a [`FitContext`].

use crate::error::BaselineError;
use dc_floc::{cluster_residue, DeltaCluster, ResidueMean};
use dc_matrix::DataMatrix;
use dc_obs::Obs;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared runtime context for a [`SubspaceAlgorithm::fit`] call.
///
/// This is deliberately *not* part of any algorithm's identity: two runs
/// with the same algorithm parameters and seed produce bit-identical
/// clusterings regardless of the context — threads only parallelize
/// independent per-point computations, observation never changes results,
/// and budget/interrupt merely truncate the search at a safe boundary.
#[derive(Clone, Default)]
pub struct FitContext {
    /// Structured-event destination ([`Obs::null`] = disabled).
    pub obs: Obs,
    /// Cooperative cancellation handle polled at safe boundaries.
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Wall-clock budget; exceeded ⇒ stop with [`FitStop::Budget`].
    pub time_budget: Option<Duration>,
    /// Worker-thread budget (0 or 1 = serial).
    pub threads: usize,
}

impl FitContext {
    /// Serial, unobserved, uninterruptible: the default for tests.
    pub fn serial() -> Self {
        FitContext::default()
    }

    /// Sets the thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the observability handle.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Wires a cancellation flag.
    pub fn with_interrupt(mut self, handle: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(handle);
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Effective worker count (≥ 1).
    pub fn effective_threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Starts the budget/interrupt clock for one fit.
    pub(crate) fn deadline(&self) -> Deadline {
        Deadline {
            interrupt: self.interrupt.clone(),
            started: Instant::now(),
            budget: self.time_budget,
        }
    }
}

impl std::fmt::Debug for FitContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitContext")
            .field("obs", &self.obs.enabled())
            .field("interrupt", &self.interrupt.is_some())
            .field("time_budget", &self.time_budget)
            .field("threads", &self.threads)
            .finish()
    }
}

/// Tracks the cooperative-stop conditions during one fit.
pub(crate) struct Deadline {
    interrupt: Option<Arc<AtomicBool>>,
    started: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    /// `Some(stop)` when the run should end now (interrupt wins over
    /// budget, matching FLOC's precedence).
    pub(crate) fn check(&self) -> Option<FitStop> {
        if self
            .interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
        {
            return Some(FitStop::Interrupted);
        }
        if self.budget.is_some_and(|b| self.started.elapsed() >= b) {
            return Some(FitStop::Budget);
        }
        None
    }
}

/// Why a fit ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitStop {
    /// The algorithm ran to its natural completion.
    Converged,
    /// The iteration cap was exhausted first.
    Capped,
    /// The wall-clock budget elapsed; the result is best-so-far.
    Budget,
    /// The interrupt flag was raised; the result is best-so-far.
    Interrupted,
}

impl std::fmt::Display for FitStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FitStop::Converged => "converged",
            FitStop::Capped => "iteration cap",
            FitStop::Budget => "time budget exhausted",
            FitStop::Interrupted => "interrupted",
        })
    }
}

/// The uniform outcome of any baseline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubspaceClustering {
    /// Which algorithm produced this (e.g. `"proclus"`).
    pub algorithm: String,
    /// Discovered clusters in the δ-cluster representation.
    pub clusters: Vec<DeltaCluster>,
    /// Arithmetic residue of each cluster, index-aligned with `clusters`.
    pub residues: Vec<f64>,
    /// Wall-clock duration of the fit.
    pub elapsed: Duration,
    /// Why the fit ended.
    pub stop: FitStop,
}

impl SubspaceClustering {
    /// Assembles a result: drops degenerate (empty-row or empty-column)
    /// clusters and scores the rest with the δ-cluster residue so every
    /// algorithm is graded on the paper's own objective.
    pub fn from_clusters(
        algorithm: &str,
        matrix: &DataMatrix,
        clusters: Vec<DeltaCluster>,
        elapsed: Duration,
        stop: FitStop,
    ) -> Self {
        let clusters: Vec<DeltaCluster> = clusters
            .into_iter()
            .filter(|c| c.row_count() > 0 && c.col_count() > 0)
            .collect();
        let residues = clusters
            .iter()
            .map(|c| cluster_residue(matrix, c, ResidueMean::Arithmetic))
            .collect();
        SubspaceClustering {
            algorithm: algorithm.to_string(),
            clusters,
            residues,
            elapsed,
            stop,
        }
    }

    /// Mean residue across clusters (0.0 when empty — defined, not NaN).
    pub fn avg_residue(&self) -> f64 {
        if self.residues.is_empty() {
            0.0
        } else {
            self.residues.iter().sum::<f64>() / self.residues.len() as f64
        }
    }

    /// One human-readable line per run, used by the CLI and smoke tests.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} cluster(s), avg residue {:.4}, {:.3}s ({})",
            self.algorithm,
            self.clusters.len(),
            self.avg_residue(),
            self.elapsed.as_secs_f64(),
            self.stop,
        )
    }
}

/// A subspace/projected clustering algorithm comparable to FLOC.
///
/// Contract:
/// - **Deterministic**: same parameters + seed ⇒ bit-identical clusters,
///   independent of `ctx.threads`, observation, and storage backend.
/// - **Cooperative**: polls `ctx.interrupt`/`ctx.time_budget` at safe
///   boundaries; on a stop, returns `Ok` with best-so-far clusters and the
///   corresponding [`FitStop`], never an error.
/// - **Observable**: emits dc-obs spans/points under its own name prefix.
pub trait SubspaceAlgorithm {
    /// Stable identifier (`"proclus"`, `"subclu"`, …) used by the CLI's
    /// `--algorithm` flag and benchmark reports.
    fn name(&self) -> &'static str;

    /// Runs the algorithm over `matrix` under the shared runtime context.
    fn fit(
        &self,
        matrix: &DataMatrix,
        ctx: &FitContext,
    ) -> Result<SubspaceClustering, BaselineError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_clusters_drops_degenerate_and_scores_the_rest() {
        let m = DataMatrix::builder(3, 3).from_rows(vec![
            1.0, 2.0, 3.0, //
            2.0, 3.0, 4.0, //
            9.0, 1.0, 7.0,
        ]);
        let good = DeltaCluster::from_indices(3, 3, [0, 1], [0, 1, 2]);
        let no_rows = DeltaCluster::empty(3, 3);
        let out = SubspaceClustering::from_clusters(
            "test",
            &m,
            vec![good, no_rows],
            Duration::from_millis(5),
            FitStop::Converged,
        );
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.residues.len(), 1);
        assert!(out.residues[0] < 1e-9, "additive block residue ~0");
        assert!(out.summary().contains("test"));
    }

    #[test]
    fn avg_residue_of_empty_clustering_is_defined() {
        let m = DataMatrix::builder(2, 2).from_rows(vec![1.0, 2.0, 3.0, 4.0]);
        let out = SubspaceClustering::from_clusters(
            "empty",
            &m,
            vec![],
            Duration::ZERO,
            FitStop::Converged,
        );
        assert_eq!(out.avg_residue(), 0.0);
        assert!(!out.avg_residue().is_nan());
    }

    #[test]
    fn deadline_honours_interrupt_over_budget() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctx = FitContext::serial()
            .with_interrupt(flag.clone())
            .with_time_budget(Duration::ZERO);
        let deadline = ctx.deadline();
        // Zero budget is already exhausted…
        assert_eq!(deadline.check(), Some(FitStop::Budget));
        // …but a raised interrupt takes precedence.
        flag.store(true, Ordering::Relaxed);
        assert_eq!(deadline.check(), Some(FitStop::Interrupted));
    }

    #[test]
    fn unwired_context_never_stops() {
        let deadline = FitContext::serial().deadline();
        assert_eq!(deadline.check(), None);
    }
}
