//! Subspace-restricted DBSCAN — the density engine shared by SUBCLU.
//!
//! Classic DBSCAN (Ester et al., KDD 1996) over the rows of a
//! [`DataMatrix`], with distances computed only along a caller-chosen set
//! of columns. SUBCLU calls this once per candidate subspace; the
//! single-dimension case seeds its bottom-up lattice walk.
//!
//! Determinism: rows are visited in ascending index order, each point's
//! ε-neighborhood is materialized up front (in ascending order), and
//! cluster expansion is a serial FIFO walk — so labels depend only on the
//! data, never on scheduling. The neighborhood precomputation is the only
//! parallel part (independent per point, reduced in index order via
//! [`crate::par::map_indexed`]).

use crate::par::map_indexed;
use dc_matrix::DataMatrix;
use std::collections::VecDeque;

/// Density parameters of one DBSCAN run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighborhood radius (Euclidean, over the chosen dimensions).
    pub eps: f64,
    /// Minimum neighborhood size (the point itself counts) for a core
    /// point.
    pub min_pts: usize,
}

/// Runs DBSCAN over `rows` of `matrix`, measuring distance only along
/// `dims`. Rows missing a value in any of `dims` are ignored (a point must
/// exist in the subspace to participate). Returns clusters as ascending
/// row-index vectors, ordered by their smallest member; noise points are
/// simply absent.
pub fn dbscan(
    matrix: &DataMatrix,
    dims: &[usize],
    rows: &[usize],
    params: DbscanParams,
    threads: usize,
) -> Vec<Vec<usize>> {
    assert!(params.eps >= 0.0, "eps must be non-negative");
    assert!(params.min_pts >= 1, "min_pts must be at least 1");
    if dims.is_empty() || rows.is_empty() {
        return Vec::new();
    }

    // Project the participating rows into a dense `points × dims` table.
    let mut ids: Vec<usize> = Vec::with_capacity(rows.len());
    let mut coords: Vec<f64> = Vec::with_capacity(rows.len() * dims.len());
    'rows: for &r in rows {
        let mut tuple = Vec::with_capacity(dims.len());
        for &d in dims {
            match matrix.get(r, d) {
                Some(v) => tuple.push(v),
                None => continue 'rows,
            }
        }
        ids.push(r);
        coords.extend(tuple);
    }
    let n = ids.len();
    if n == 0 {
        return Vec::new();
    }

    // ε-neighborhoods, independent per point.
    let d = dims.len();
    let eps2 = params.eps * params.eps;
    let neighbors: Vec<Vec<u32>> = map_indexed(n, threads, |i| {
        let a = &coords[i * d..(i + 1) * d];
        let mut near = Vec::new();
        for j in 0..n {
            let b = &coords[j * d..(j + 1) * d];
            let mut dist2 = 0.0;
            for k in 0..d {
                let diff = a[k] - b[k];
                dist2 += diff * diff;
                if dist2 > eps2 {
                    break;
                }
            }
            if dist2 <= eps2 {
                near.push(j as u32);
            }
        }
        near
    });

    // Serial expansion: border points go to the first cluster that reaches
    // them (ascending seed order), exactly the textbook tie-break.
    const UNLABELED: u32 = u32::MAX;
    let mut label = vec![UNLABELED; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for seed in 0..n {
        if label[seed] != UNLABELED || neighbors[seed].len() < params.min_pts {
            continue;
        }
        let id = clusters.len() as u32;
        let mut members: Vec<usize> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        label[seed] = id;
        members.push(seed);
        queue.push_back(seed);
        while let Some(p) = queue.pop_front() {
            for &q in &neighbors[p] {
                let q = q as usize;
                if label[q] != UNLABELED {
                    continue;
                }
                label[q] = id;
                members.push(q);
                if neighbors[q].len() >= params.min_pts {
                    queue.push_back(q);
                }
            }
        }
        members.sort_unstable();
        clusters.push(members.into_iter().map(|i| ids[i]).collect());
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eps: f64, min_pts: usize) -> DbscanParams {
        DbscanParams { eps, min_pts }
    }

    /// Two tight 1-d blobs far apart, plus one straggler.
    fn two_blob_matrix() -> DataMatrix {
        let values = [0.0, 0.2, 0.4, 10.0, 10.1, 10.3, 55.0];
        let mut m = DataMatrix::builder(7, 2).build();
        for (r, &v) in values.iter().enumerate() {
            m.set(r, 0, v);
            m.set(r, 1, 100.0); // constant second dim, irrelevant unless selected
        }
        m
    }

    #[test]
    fn finds_the_two_blobs_and_drops_noise() {
        let m = two_blob_matrix();
        let rows: Vec<usize> = (0..7).collect();
        let clusters = dbscan(&m, &[0], &rows, params(0.5, 2), 1);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn distance_uses_only_the_selected_dims() {
        let m = two_blob_matrix();
        let rows: Vec<usize> = (0..7).collect();
        // Along the constant dim 1, every point is identical: one cluster.
        let clusters = dbscan(&m, &[1], &rows, params(0.5, 2), 1);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 7);
    }

    #[test]
    fn rows_missing_a_selected_dim_are_excluded() {
        let mut m = DataMatrix::builder(4, 1).build();
        m.set(0, 0, 1.0);
        m.set(1, 0, 1.1);
        m.set(2, 0, 1.2);
        // Row 3 stays missing.
        let clusters = dbscan(&m, &[0], &[0, 1, 2, 3], params(0.5, 2), 1);
        assert_eq!(clusters, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn restricting_the_candidate_rows_restricts_the_result() {
        let m = two_blob_matrix();
        let clusters = dbscan(&m, &[0], &[3, 4, 5], params(0.5, 2), 1);
        assert_eq!(clusters, vec![vec![3, 4, 5]]);
    }

    #[test]
    fn min_pts_gates_density() {
        let m = two_blob_matrix();
        let rows: Vec<usize> = (0..7).collect();
        // min_pts 4 > blob size 3: nothing is dense.
        assert!(dbscan(&m, &[0], &rows, params(0.5, 4), 1).is_empty());
    }

    #[test]
    fn thread_count_does_not_change_labels() {
        let mut m = DataMatrix::builder(60, 3).build();
        // Deterministic pseudo-random scatter with two planted blobs.
        let mut x = 12345u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64) / (u32::MAX as f64) * 100.0
        };
        for r in 0..60 {
            for c in 0..3 {
                let v = if r < 20 {
                    next() * 0.02 // blob near the origin
                } else if r < 40 {
                    50.0 + next() * 0.02 // blob near 50
                } else {
                    next() // scatter
                };
                m.set(r, c, v);
            }
        }
        let rows: Vec<usize> = (0..60).collect();
        let serial = dbscan(&m, &[0, 1, 2], &rows, params(2.0, 3), 1);
        for threads in [2, 4, 7] {
            assert_eq!(
                dbscan(&m, &[0, 1, 2], &rows, params(2.0, 3), threads),
                serial,
                "threads={threads}"
            );
        }
        assert!(serial.len() >= 2, "both planted blobs found: {serial:?}");
    }

    #[test]
    fn empty_inputs_yield_no_clusters() {
        let m = two_blob_matrix();
        assert!(dbscan(&m, &[], &[0, 1], params(1.0, 2), 1).is_empty());
        assert!(dbscan(&m, &[0], &[], params(1.0, 2), 1).is_empty());
    }
}
