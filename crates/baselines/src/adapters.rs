//! Adapters exposing the repo's pre-existing algorithms — FLOC itself,
//! Cheng–Church biclustering, and the §4.4 CLIQUE "alternative" — through
//! the [`SubspaceAlgorithm`] interface, so the head-to-head harness runs
//! one loop over every contender.
//!
//! FLOC maps losslessly (its config already carries threads, budget, and
//! interrupt wiring). Cheng–Church and the CLIQUE alternative are
//! single-shot algorithms without cooperative cancellation points; their
//! adapters honor an *already-raised* interrupt before starting and
//! otherwise run to completion — best-effort, documented here rather than
//! papered over.

use crate::error::BaselineError;
use crate::traits::{FitContext, FitStop, SubspaceAlgorithm, SubspaceClustering};
use dc_bicluster::{cheng_church, ChengChurchConfig};
use dc_floc::{floc_with, DeltaCluster, FlocConfig, InterruptFlag, StopReason};
use dc_matrix::DataMatrix;
use dc_subspace::alternative;
use std::time::Instant;

// Re-exported so downstream users (the CLI, the benchmark harness) can
// configure every adapter from this one crate.
pub use dc_subspace::{AlternativeConfig, CliqueConfig};

/// FLOC behind the baseline interface.
#[derive(Debug, Clone)]
pub struct FlocBaseline {
    /// The full FLOC search configuration; runtime plumbing (threads,
    /// budget, interrupt) is overridden from the [`FitContext`] per fit.
    pub config: FlocConfig,
}

impl FlocBaseline {
    /// Convenience constructor.
    pub fn new(config: FlocConfig) -> Self {
        FlocBaseline { config }
    }
}

impl SubspaceAlgorithm for FlocBaseline {
    fn name(&self) -> &'static str {
        "floc"
    }

    fn fit(
        &self,
        matrix: &DataMatrix,
        ctx: &FitContext,
    ) -> Result<SubspaceClustering, BaselineError> {
        let mut config = self.config.clone();
        config.parallelism.threads = ctx.effective_threads();
        if ctx.time_budget.is_some() {
            config.time_budget = ctx.time_budget;
        }
        if let Some(handle) = &ctx.interrupt {
            config.interrupt = InterruptFlag::new(handle.clone());
        }
        let result = floc_with(matrix, &config, &ctx.obs).map_err(|e| match e {
            dc_floc::FlocError::EmptyMatrix => BaselineError::EmptyMatrix,
            other => BaselineError::Algorithm(other.to_string()),
        })?;
        let stop = match result.stop_reason {
            StopReason::Converged => FitStop::Converged,
            StopReason::MaxIterations => FitStop::Capped,
            StopReason::Budget => FitStop::Budget,
            StopReason::Interrupted => FitStop::Interrupted,
        };
        Ok(SubspaceClustering::from_clusters(
            self.name(),
            matrix,
            result.clusters,
            result.elapsed,
            stop,
        ))
    }
}

/// Cheng–Church biclustering behind the baseline interface.
#[derive(Debug, Clone)]
pub struct ChengChurchBaseline {
    /// Cheng–Church parameters (`k`, `δ`, deletion thresholds, seed).
    pub config: ChengChurchConfig,
}

impl ChengChurchBaseline {
    /// Convenience constructor.
    pub fn new(config: ChengChurchConfig) -> Self {
        ChengChurchBaseline { config }
    }
}

impl SubspaceAlgorithm for ChengChurchBaseline {
    fn name(&self) -> &'static str {
        "cheng-church"
    }

    fn fit(
        &self,
        matrix: &DataMatrix,
        ctx: &FitContext,
    ) -> Result<SubspaceClustering, BaselineError> {
        if matrix.rows() == 0 || matrix.cols() == 0 || matrix.specified_count() == 0 {
            return Err(BaselineError::EmptyMatrix);
        }
        if let Some(stop) = ctx.deadline().check() {
            return Ok(SubspaceClustering::from_clusters(
                self.name(),
                matrix,
                Vec::new(),
                std::time::Duration::ZERO,
                stop,
            ));
        }
        let span = ctx.obs.span("cheng_church.fit");
        let started = Instant::now();
        let result = cheng_church(matrix, &self.config);
        let clusters: Vec<DeltaCluster> = result
            .biclusters
            .iter()
            .map(|b| {
                DeltaCluster::from_indices(
                    matrix.rows(),
                    matrix.cols(),
                    b.rows.iter(),
                    b.cols.iter(),
                )
            })
            .collect();
        span.finish(&[]);
        Ok(SubspaceClustering::from_clusters(
            self.name(),
            matrix,
            clusters,
            started.elapsed(),
            FitStop::Converged,
        ))
    }
}

/// The δ-cluster paper's own §4.4 alternative (derived attributes +
/// CLIQUE + clique extraction) behind the baseline interface.
#[derive(Debug, Clone)]
pub struct CliqueBaseline {
    /// Alternative-algorithm parameters (CLIQUE grid, clique caps, `k`).
    pub config: AlternativeConfig,
}

impl CliqueBaseline {
    /// Convenience constructor.
    pub fn new(config: AlternativeConfig) -> Self {
        CliqueBaseline { config }
    }
}

impl SubspaceAlgorithm for CliqueBaseline {
    fn name(&self) -> &'static str {
        "clique"
    }

    fn fit(
        &self,
        matrix: &DataMatrix,
        ctx: &FitContext,
    ) -> Result<SubspaceClustering, BaselineError> {
        if matrix.rows() == 0 || matrix.cols() == 0 || matrix.specified_count() == 0 {
            return Err(BaselineError::EmptyMatrix);
        }
        if let Some(stop) = ctx.deadline().check() {
            return Ok(SubspaceClustering::from_clusters(
                self.name(),
                matrix,
                Vec::new(),
                std::time::Duration::ZERO,
                stop,
            ));
        }
        let span = ctx.obs.span("clique_alternative.fit");
        let result = alternative(matrix, &self.config);
        span.finish(&[]);
        Ok(SubspaceClustering::from_clusters(
            self.name(),
            matrix,
            result.clusters,
            result.elapsed,
            FitStop::Converged,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// A matrix with an additive block on rows 0..6 × cols 0..4.
    fn planted() -> DataMatrix {
        let mut m = DataMatrix::builder(12, 6).build();
        for r in 0..12 {
            for c in 0..6 {
                let v = if r < 6 && c < 4 {
                    (r as f64) * 2.0 + (c as f64) * 3.0
                } else {
                    ((r * 31 + c * 17) % 97) as f64
                };
                m.set(r, c, v);
            }
        }
        m
    }

    #[test]
    fn floc_adapter_round_trips_the_result() {
        let m = planted();
        let algo = FlocBaseline::new(FlocConfig::builder(2).seed(3).build());
        let out = algo.fit(&m, &FitContext::serial()).unwrap();
        assert_eq!(out.algorithm, "floc");
        assert!(!out.clusters.is_empty());
        assert_eq!(out.clusters.len(), out.residues.len());
    }

    #[test]
    fn cheng_church_adapter_maps_biclusters_to_delta_clusters() {
        let m = planted();
        let algo = ChengChurchBaseline::new(ChengChurchConfig::new(2, 1.0));
        let out = algo.fit(&m, &FitContext::serial()).unwrap();
        assert_eq!(out.algorithm, "cheng-church");
        assert!(!out.clusters.is_empty());
        assert_eq!(out.stop, FitStop::Converged);
    }

    #[test]
    fn clique_adapter_runs_the_alternative_algorithm() {
        let m = planted();
        let algo = CliqueBaseline::new(AlternativeConfig {
            min_cols: 3,
            ..AlternativeConfig::default()
        });
        let out = algo.fit(&m, &FitContext::serial()).unwrap();
        assert_eq!(out.algorithm, "clique");
        // The alternative may or may not recover something on a tiny
        // matrix; the contract here is a defined, well-formed result.
        assert_eq!(out.clusters.len(), out.residues.len());
    }

    #[test]
    fn single_shot_adapters_honor_a_pre_raised_interrupt() {
        let m = planted();
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = FitContext::serial().with_interrupt(flag);
        let cc = ChengChurchBaseline::new(ChengChurchConfig::new(2, 1.0));
        assert_eq!(cc.fit(&m, &ctx).unwrap().stop, FitStop::Interrupted);
        let cl = CliqueBaseline::new(AlternativeConfig::default());
        assert_eq!(cl.fit(&m, &ctx).unwrap().stop, FitStop::Interrupted);
    }

    #[test]
    fn adapters_reject_an_empty_matrix() {
        let empty = DataMatrix::builder(3, 3).build();
        let ctx = FitContext::serial();
        assert!(matches!(
            ChengChurchBaseline::new(ChengChurchConfig::new(1, 1.0)).fit(&empty, &ctx),
            Err(BaselineError::EmptyMatrix)
        ));
        assert!(matches!(
            CliqueBaseline::new(AlternativeConfig::default()).fit(&empty, &ctx),
            Err(BaselineError::EmptyMatrix)
        ));
        assert!(matches!(
            FlocBaseline::new(FlocConfig::builder(1).build()).fit(&empty, &ctx),
            Err(BaselineError::EmptyMatrix)
        ));
    }
}
