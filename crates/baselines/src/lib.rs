//! # dc-baselines
//!
//! Competitor subspace-clustering algorithms for head-to-head comparison
//! against FLOC — the experimental backbone of the δ-cluster paper's
//! comparative claims, extended beyond the paper's own two baselines:
//!
//! * [`proclus`] — PROCLUS (Aggarwal et al., SIGMOD 1999): medoid-based
//!   *projected* clustering with locality-driven per-medoid dimension
//!   selection and hill-climbing medoid replacement.
//! * [`subclu`] — SUBCLU (Kailing et al., SDM 2004): bottom-up
//!   density-based subspace clustering, DBSCAN per candidate subspace with
//!   the Apriori monotonicity prune.
//! * [`dbscan`] — the shared density engine behind SUBCLU.
//! * [`adapters`] — FLOC, Cheng–Church, and the §4.4 CLIQUE alternative
//!   retrofitted behind the same interface.
//!
//! Everything implements [`SubspaceAlgorithm`]: `fit(&DataMatrix,
//! &FitContext) → SubspaceClustering`, with δ-clusters as the common
//! output currency so `dc-eval`'s recall/precision/residue machinery and
//! the benchmark harness treat every algorithm identically.
//!
//! Determinism contract (pinned by property tests): same parameters and
//! seed ⇒ bit-identical clusters, regardless of thread count, observation,
//! or storage backend (memory ≡ paged).

pub mod adapters;
pub mod dbscan;
pub mod error;
mod par;
pub mod proclus;
pub mod subclu;
pub mod traits;

pub use adapters::{
    AlternativeConfig, ChengChurchBaseline, CliqueBaseline, CliqueConfig, FlocBaseline,
};
pub use dbscan::{dbscan, DbscanParams};
pub use dc_bicluster::ChengChurchConfig;
pub use error::BaselineError;
pub use proclus::{Proclus, ProclusConfig};
pub use subclu::{Subclu, SubcluConfig};
pub use traits::{FitContext, FitStop, SubspaceAlgorithm, SubspaceClustering};

/// Stable names of every bundled algorithm, in benchmark-report order.
pub const ALGORITHM_NAMES: [&str; 5] = ["floc", "proclus", "subclu", "cheng-church", "clique"];
