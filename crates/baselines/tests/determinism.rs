//! The determinism contract of the new baselines, pinned by property
//! tests: same seed ⇒ bit-identical clusterings, independent of thread
//! count (`threads ∈ {1, 2, 4}`) and storage backend (memory ≡ paged).

use dc_baselines::{FitContext, Proclus, ProclusConfig, Subclu, SubcluConfig, SubspaceAlgorithm};
use dc_matrix::DataMatrix;
use proptest::prelude::*;

/// A small matrix with a planted coherent block in deterministic noise —
/// enough structure that the algorithms usually find something, so the
/// equality assertions compare non-trivial results.
fn arb_matrix() -> impl Strategy<Value = DataMatrix> {
    (12usize..40, 4usize..8, 0u64..1_000).prop_map(|(rows, cols, seed)| {
        let mut m = DataMatrix::builder(rows, cols).build();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let block_rows = rows / 2;
        let block_cols = cols / 2;
        for r in 0..rows {
            for c in 0..cols {
                let v = if r < block_rows && c < block_cols {
                    30.0 + c as f64 + next()
                } else {
                    next() * 300.0
                };
                // A sprinkle of missing entries outside the block.
                if r >= block_rows && next() < 0.05 {
                    continue;
                }
                m.set(r, c, v);
            }
        }
        m
    })
}

/// The paged twin of an in-memory matrix, in a unique scratch directory.
fn paged_twin(m: &DataMatrix, tag: &str) -> DataMatrix {
    let dir = std::env::temp_dir().join(format!(
        "dc-baselines-prop-{tag}-{}-{}x{}",
        std::process::id(),
        m.rows(),
        m.cols()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let data: Vec<Option<f64>> = (0..m.rows() * m.cols())
        .map(|cell| m.get(cell / m.cols(), cell % m.cols()))
        .collect();
    DataMatrix::builder(m.rows(), m.cols())
        .paged(dir)
        .chunk_rows(7)
        .from_options(data)
        .expect("paged twin")
}

fn proclus_for(m: &DataMatrix, seed: u64) -> Proclus {
    Proclus::new(ProclusConfig {
        k: 2,
        avg_dims: (m.cols() / 2).max(2),
        max_iterations: 8,
        seed,
        ..ProclusConfig::default()
    })
}

fn subclu_for(_m: &DataMatrix) -> Subclu {
    Subclu::new(SubcluConfig {
        eps: 3.0,
        min_pts: 4,
        max_dims: 3,
        max_candidates: 64,
        ..SubcluConfig::default()
    })
}

proptest! {
    /// PROCLUS: seed-deterministic, thread-invariant, backend-agnostic.
    #[test]
    fn proclus_is_deterministic_everywhere(m in arb_matrix(), seed in 0u64..1_000) {
        let algo = proclus_for(&m, seed);
        let baseline = algo.fit(&m, &FitContext::serial()).unwrap();

        // Re-run, same seed: bit-identical.
        let rerun = algo.fit(&m, &FitContext::serial()).unwrap();
        prop_assert_eq!(&baseline.clusters, &rerun.clusters);
        prop_assert_eq!(&baseline.residues, &rerun.residues);

        // Thread ladder: bit-identical.
        for threads in [2usize, 4] {
            let t = algo.fit(&m, &FitContext::serial().with_threads(threads)).unwrap();
            prop_assert_eq!(&baseline.clusters, &t.clusters, "threads={}", threads);
        }

        // Paged backend: bit-identical.
        let paged = paged_twin(&m, "proclus");
        let p = algo.fit(&paged, &FitContext::serial()).unwrap();
        prop_assert_eq!(&baseline.clusters, &p.clusters);
        prop_assert_eq!(&baseline.residues, &p.residues);
    }

    /// SUBCLU: deterministic (it has no RNG), thread-invariant,
    /// backend-agnostic.
    #[test]
    fn subclu_is_deterministic_everywhere(m in arb_matrix()) {
        let algo = subclu_for(&m);
        let baseline = algo.fit(&m, &FitContext::serial()).unwrap();

        let rerun = algo.fit(&m, &FitContext::serial()).unwrap();
        prop_assert_eq!(&baseline.clusters, &rerun.clusters);
        prop_assert_eq!(&baseline.residues, &rerun.residues);

        for threads in [2usize, 4] {
            let t = algo.fit(&m, &FitContext::serial().with_threads(threads)).unwrap();
            prop_assert_eq!(&baseline.clusters, &t.clusters, "threads={}", threads);
        }

        let paged = paged_twin(&m, "subclu");
        let p = algo.fit(&paged, &FitContext::serial()).unwrap();
        prop_assert_eq!(&baseline.clusters, &p.clusters);
        prop_assert_eq!(&baseline.residues, &p.residues);
    }

    /// Different seeds are allowed to differ, but must stay well-formed:
    /// aligned residues, non-degenerate clusters, ≥ 2 dims per PROCLUS
    /// cluster.
    #[test]
    fn proclus_results_are_well_formed(m in arb_matrix(), seed in 0u64..1_000) {
        let out = proclus_for(&m, seed).fit(&m, &FitContext::serial()).unwrap();
        prop_assert_eq!(out.clusters.len(), out.residues.len());
        for (c, r) in out.clusters.iter().zip(&out.residues) {
            prop_assert!(c.row_count() > 0 && c.col_count() >= 2);
            prop_assert!(r.is_finite() && *r >= 0.0);
        }
        prop_assert!(!out.avg_residue().is_nan());
    }
}
