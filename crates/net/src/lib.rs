//! # dc-net — zero-dependency HTTP serving for the δ-cluster query engine
//!
//! Puts `dc_serve::QueryEngine` behind a plain-`std` HTTP/1.1 server:
//! `TcpListener`, a fixed worker pool, and hand-rolled parsing — no
//! external crates, matching the workspace's vendored-shim policy.
//!
//! ```text
//!             ┌────────────┐   try_push    ┌──────────────┐
//!  TCP ──────▶│ accept loop│──────────────▶│ BoundedQueue │──▶ workers (N)
//!             └────────────┘  full → 503   └──────────────┘       │
//!                                                     HttpReader keep-alive loop
//!                                                                 │
//!                                                        api::handle(state, req)
//!                                                                 │
//!                                                      RwLock<Arc<QueryEngine>>
//! ```
//!
//! Design invariants, pinned by the chaos and integration suites:
//!
//! - **Bounded memory.** Admission stops at the queue, never in buffers:
//!   a full queue answers `503` with `Retry-After` at accept time.
//! - **No panics on hostile input.** Every malformed, truncated, or
//!   oversized request surfaces as a typed [`http::RecvError`] mapped to a
//!   clean 4xx/501 (or a silent close) — `tests/chaos.rs` drives the
//!   parser through `dc-fault` to keep this true.
//! - **Graceful shutdown.** The server watches a shared `AtomicBool` (the
//!   CLI wires the SIGINT flag): stop accepting, answer what's in flight,
//!   close idle keep-alives, all under a deadline.
//! - **Observable.** Every answered request emits a `net.request` event
//!   through `dc-obs` and lands in counters + a log₂ latency histogram
//!   served back on `GET /metrics` (JSON or Prometheus text).
//!
//! ## Quickstart
//!
//! ```no_run
//! use dc_net::{serve, AppState, ServerConfig};
//! use std::sync::Arc;
//! use std::sync::atomic::AtomicBool;
//!
//! # fn model() -> dc_serve::ServeModel { unimplemented!() }
//! let state = Arc::new(AppState::new(model(), None, 4, dc_obs::Obs::null()));
//! let stop = Arc::new(AtomicBool::new(false));
//! let handle = serve(ServerConfig::default(), state, stop).unwrap();
//! println!("listening on {}", handle.addr());
//! handle.wait(); // parks until the stop flag rises, then drains
//! ```

pub mod api;
pub mod client;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod server;
pub mod state;

pub use client::{ClientConfig, ClientError, ClientPool, ClientResponse, HttpClient};
pub use http::{Limits, Method, RecvError, Request, Response};
pub use metrics::{MetricsReport, ServerMetrics};
pub use pool::{BoundedQueue, PushError, WorkerPool};
pub use server::{serve, serve_handler, RequestHandler, ServerConfig, ServerHandle};
pub use state::{AppState, ModelMeta};
