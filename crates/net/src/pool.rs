//! Bounded work queue + fixed worker pool.
//!
//! The accept loop pushes accepted connections through [`BoundedQueue::try_push`];
//! when the queue is full the push fails *immediately* and the caller answers
//! `503 Service Unavailable` with `Retry-After` instead of buffering without
//! bound. Workers block on [`BoundedQueue::pop`] and drain whatever is queued
//! even after [`BoundedQueue::close`] — closing stops *admission*, not
//! *completion*, which is the drain half of graceful shutdown.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a push was refused; the item comes back so it can be answered.
#[derive(Debug)]
pub enum PushError<T> {
    /// Queue at capacity — the backpressure signal (503 + Retry-After).
    Full(T),
    /// Queue closed for admission — the server is shutting down.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue. Pops block; pushes never do.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Arc<BoundedQueue<T>> {
        Arc::new(BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            capacity: capacity.max(1),
            available: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits `item` unless the queue is full or closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available. Returns `None` once the queue is
    /// closed *and* drained — the worker-exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admission and wakes every blocked popper. Queued items are
    /// still handed out; only new pushes fail.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting (racy; for metrics/tests only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Fixed set of worker threads draining one [`BoundedQueue`].
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers that run `work` on each popped item and
    /// exit when the queue closes and drains.
    pub fn spawn<T, F>(
        queue: Arc<BoundedQueue<T>>,
        threads: usize,
        name: &str,
        work: F,
    ) -> WorkerPool
    where
        T: Send + 'static,
        F: Fn(T) + Send + Sync + 'static,
    {
        let work = Arc::new(work);
        let handles = (0..threads.max(1))
            .map(|i| {
                let queue = queue.clone();
                let work = work.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Some(item) = queue.pop() {
                            work(item);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Waits for every worker to finish, up to `deadline`. Returns `true`
    /// if all exited in time; stragglers are detached, not killed, so a
    /// wedged connection can't hold up process exit.
    pub fn join_with_deadline(self, deadline: Duration) -> bool {
        let end = Instant::now() + deadline;
        let mut all_done = true;
        for handle in self.handles {
            // JoinHandle has no timed join; poll is_finished in short
            // sleeps so the total wait respects the shared deadline.
            while !handle.is_finished() && Instant::now() < end {
                std::thread::sleep(Duration::from_millis(5));
            }
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                all_done = false; // detach: dropping the handle
            }
        }
        all_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        // Popping one frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(3)) => {}
            other => panic!("expected Closed(3), got {other:?}"),
        }
        // Items queued before close still come out.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q: Arc<BoundedQueue<u32>> = BoundedQueue::new(1);
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn pool_processes_everything_then_exits() {
        let q = BoundedQueue::new(64);
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = done.clone();
            WorkerPool::spawn(q.clone(), 4, "test-worker", move |n: usize| {
                done.fetch_add(n, Ordering::Relaxed);
            })
        };
        for _ in 0..50 {
            // Workers drain concurrently, so pushes may briefly race a full
            // queue; retry like the accept loop would.
            let mut item = 1usize;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(PushError::Closed(_)) => panic!("queue closed early"),
                }
            }
        }
        q.close();
        assert!(pool.join_with_deadline(Duration::from_secs(5)));
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn deadline_join_detaches_stragglers() {
        let q = BoundedQueue::new(1);
        let release = Arc::new(AtomicUsize::new(0));
        let pool = {
            let release = release.clone();
            WorkerPool::spawn(q.clone(), 1, "slow-worker", move |_: u8| {
                while release.load(Ordering::Relaxed) == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        q.try_push(0).unwrap();
        q.close();
        // Worker is wedged: the deadline join gives up quickly.
        assert!(!pool.join_with_deadline(Duration::from_millis(50)));
        release.store(1, Ordering::Relaxed); // let the detached thread finish
    }

    /// Closing while the queue sits at capacity, with pushers hammering
    /// and poppers draining concurrently, must lose nothing and hang
    /// nobody: every admitted item is popped exactly once, every pusher
    /// eventually observes `Closed`, and every popper exits via `None`.
    #[test]
    fn close_while_full_neither_loses_items_nor_hangs() {
        const PUSHERS: u64 = 4;
        const POPPERS: usize = 4;
        let q: Arc<BoundedQueue<u64>> = BoundedQueue::new(4);

        // Pre-fill to capacity so close() really races a full queue.
        let mut expected = 0u64;
        for i in 0..4 {
            q.try_push(i).unwrap();
            expected += 1;
        }

        let pushers: Vec<_> = (0..PUSHERS)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    // Distinct ids per pusher: pusher tag in the high
                    // bits, sequence in the low (no collisions, ever).
                    let mut pushed = Vec::new();
                    let mut seq = 0u64;
                    loop {
                        let id = ((p + 1) << 32) | seq;
                        match q.try_push(id) {
                            Ok(()) => {
                                pushed.push(id);
                                seq += 1;
                            }
                            Err(PushError::Full(_)) => std::thread::yield_now(),
                            Err(PushError::Closed(_)) => return pushed,
                        }
                    }
                })
            })
            .collect();

        let poppers: Vec<_> = (0..POPPERS)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got // exited via None: saw close + drained
                })
            })
            .collect();

        // Let the race build up real contention, then slam the door.
        std::thread::sleep(Duration::from_millis(30));
        q.close();

        let mut all: Vec<u64> = Vec::new();
        for p in pushers {
            let pushed = p.join().unwrap();
            expected += pushed.len() as u64;
            all.extend(pushed);
        }
        all.extend(0..4);
        let mut popped: Vec<u64> = Vec::new();
        for c in poppers {
            popped.extend(c.join().unwrap());
        }

        assert_eq!(popped.len() as u64, expected, "item lost or duplicated");
        let unique: std::collections::HashSet<u64> = popped.iter().copied().collect();
        assert_eq!(unique.len() as u64, expected, "duplicate delivery");
        let admitted: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique, admitted, "popped set must equal admitted set");

        // And the door really is shut.
        assert!(matches!(q.try_push(9), Err(PushError::Closed(9))));
    }
}
