//! The JSON API served over HTTP.
//!
//! | Route | Method | Body / behavior |
//! |---|---|---|
//! | `/v1/predict` | POST | `{"row": r, "col": c}` → one prediction; `{"queries": [[r, c], ...]}` → batch fanned through `predict_batch` |
//! | `/v1/model` | GET | artifact metadata + matrix fingerprint |
//! | `/v1/models` | GET | registry catalog (404 without `--models`) |
//! | `/v1/models/<name>/predict` | POST | same bodies as `/v1/predict`, answered by the named registry model |
//! | `/healthz` | GET | liveness: 200 while the process runs |
//! | `/readyz` | GET | readiness: 503 during model load/swap |
//! | `/metrics` | GET | JSON by default; Prometheus text with `?format=prometheus` or `Accept: text/plain` |
//!
//! Handlers are pure `(state, request) → response` functions — no IO — so
//! the whole surface is unit-testable without a socket.

use crate::http::{Method, Request, Response};
use crate::state::AppState;
use dc_serve::PredictError;
use serde::Value;

/// Upper bound on queries per batch request; protects the worker from a
/// single request monopolizing the pool (the body size limit bounds bytes,
/// this bounds work).
pub const MAX_BATCH: usize = 100_000;

/// Routes one request. Never panics; unknown paths are 404, wrong methods
/// 405, bad bodies 400.
pub fn handle(state: &AppState, req: &Request) -> Response {
    match (&req.method, req.path.as_str()) {
        (Method::Get | Method::Head, "/healthz") => healthz(state),
        (Method::Get | Method::Head, "/readyz") => readyz(state),
        (Method::Get | Method::Head, "/v1/model") => model(state),
        (Method::Get | Method::Head, "/v1/models") => models(state),
        (Method::Get | Method::Head, "/metrics") => metrics(state, req),
        (Method::Post, "/v1/predict") => predict(state, req),
        (method, path) if named_model_of(path).is_some() => {
            if *method == Method::Post {
                predict_named(state, req, named_model_of(path).unwrap())
            } else {
                Response::error(405, "use POST").header("Allow", "POST")
            }
        }
        (_, "/healthz" | "/readyz" | "/v1/model" | "/v1/models" | "/metrics") => {
            Response::error(405, "use GET").header("Allow", "GET, HEAD")
        }
        (_, "/v1/predict") => Response::error(405, "use POST").header("Allow", "POST"),
        _ => Response::error(404, &format!("no route for {}", req.path)),
    }
}

/// The model name in a `/v1/models/<name>/predict` path, if it is one.
pub fn named_model_of(path: &str) -> Option<&str> {
    let name = path.strip_prefix("/v1/models/")?.strip_suffix("/predict")?;
    (!name.is_empty() && !name.contains('/')).then_some(name)
}

/// Whether a path answers predictions (default or named model).
pub fn is_predict_path(path: &str) -> bool {
    path == "/v1/predict" || named_model_of(path).is_some()
}

/// Number of predictions a response carried, for the predictions counter.
pub fn predictions_in(req: &Request, resp: &Response) -> u64 {
    if is_predict_path(&req.path) && resp.status == 200 {
        // Cheap structural count: one result object per "outcome" key.
        let body = String::from_utf8_lossy(&resp.body);
        body.matches("\"outcome\"").count() as u64
    } else {
        0
    }
}

fn healthz(state: &AppState) -> Response {
    let mut body = format!(
        "{{\"status\": \"ok\", \"uptime_secs\": {:.3}",
        state.uptime_secs()
    );
    for (key, fragment) in state.status_fragments() {
        let key = key.replace('\\', "\\\\").replace('"', "\\\"");
        body.push_str(&format!(", \"{key}\": {fragment}"));
    }
    body.push_str("}\n");
    Response::json(200, body)
}

fn readyz(state: &AppState) -> Response {
    if state.is_ready() {
        Response::json(200, "{\"ready\": true}\n")
    } else {
        let mut r = Response::json(503, "{\"ready\": false}\n");
        r.headers.push(("Retry-After".into(), "1".into()));
        r
    }
}

fn model(state: &AppState) -> Response {
    match serde_json::to_string_pretty(&state.meta()) {
        Ok(body) => {
            // Splice status fragments (e.g. the miner's state) in as extra
            // top-level keys, before the object's closing brace.
            let mut body = body;
            let fragments = state.status_fragments();
            if !fragments.is_empty() {
                if let Some(at) = body.rfind('}') {
                    let mut extra = String::new();
                    for (key, fragment) in fragments {
                        let key = key.replace('\\', "\\\\").replace('"', "\\\"");
                        extra.push_str(&format!(",\n  \"{key}\": {fragment}"));
                    }
                    extra.push('\n');
                    body.insert_str(at, &extra);
                }
            }
            Response::json(200, body + "\n")
        }
        Err(e) => Response::error(500, &format!("metadata serialization failed: {e}")),
    }
}

/// `GET /v1/models`: the registry catalog with residency flags.
fn models(state: &AppState) -> Response {
    let Some(registry) = state.registry() else {
        return Response::error(404, "no model registry (start with --models DIR)");
    };
    let mut body = String::from("{\"models\": [");
    for (i, info) in registry.list().iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        let name = info.name.replace('\\', "\\\\").replace('"', "\\\"");
        let version = info.version.replace('\\', "\\\\").replace('"', "\\\"");
        body.push_str(&format!(
            "{{\"name\": \"{name}\", \"version\": \"{version}\", \"bytes\": {}, \"resident\": {}}}",
            info.bytes, info.resident
        ));
    }
    body.push_str("]}\n");
    Response::json(200, body)
}

fn metrics(state: &AppState, req: &Request) -> Response {
    let wants_prometheus = req
        .query
        .as_deref()
        .is_some_and(|q| q.split('&').any(|kv| kv == "format=prometheus"))
        || req
            .header("accept")
            .is_some_and(|a| a.contains("text/plain"));
    let snap = state.metrics.snapshot();
    let gauges = state.gauges();
    if wants_prometheus {
        let mut text = snap.to_prometheus();
        for (name, value) in gauges {
            text.push_str(&format!("# TYPE dc_{name} gauge\ndc_{name} {value}\n"));
        }
        Response::text(200, text)
    } else {
        let mut body = snap.to_json();
        if !gauges.is_empty() {
            // Splice a "gauges" object in before the closing brace.
            if let Some(at) = body.rfind('}') {
                let entries: Vec<String> = gauges
                    .iter()
                    .map(|(k, v)| {
                        let k = k.replace('\\', "\\\\").replace('"', "\\\"");
                        format!("\"{k}\": {v}")
                    })
                    .collect();
                body.insert_str(
                    at,
                    &format!(",\n  \"gauges\": {{{}}}\n", entries.join(", ")),
                );
            }
        }
        Response::json(200, body)
    }
}

fn outcome_str(result: &Result<f64, PredictError>) -> &'static str {
    match result {
        Ok(_) => "hit",
        Err(PredictError::NotCovered) => "miss",
        Err(PredictError::DegenerateCluster) => "degenerate",
    }
}

fn result_json(row: usize, col: usize, result: &Result<f64, PredictError>) -> String {
    let prediction = match result {
        Ok(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_string(),
    };
    format!(
        "{{\"row\": {row}, \"col\": {col}, \"outcome\": \"{}\", \"prediction\": {prediction}}}",
        outcome_str(result)
    )
}

/// Pulls `(row, col)` out of a JSON object with `row` and `col` fields.
fn cell_of(fields: &[(String, Value)]) -> Result<(usize, usize), String> {
    let field = |name: &str| -> Result<usize, String> {
        match fields.iter().find(|(k, _)| k == name) {
            Some((_, v)) => v
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("field `{name}` must be a non-negative integer")),
            None => Err(format!("missing field `{name}`")),
        }
    };
    Ok((field("row")?, field("col")?))
}

fn predict(state: &AppState, req: &Request) -> Response {
    // Deliberately NOT gated on readiness: the installed snapshot is always
    // a complete model, so queries arriving mid-swap answer from whichever
    // snapshot the lock hands them — old or new, never an error, never a
    // mix. `/readyz` stays the place where load balancers see the swap.
    predict_with(state, req, &state.engine())
}

/// `POST /v1/models/<name>/predict`: same bodies as `/v1/predict`,
/// answered by a registry model (lazily loaded on first use).
fn predict_named(state: &AppState, req: &Request, name: &str) -> Response {
    let Some(registry) = state.registry() else {
        return Response::error(404, "no model registry (start with --models DIR)");
    };
    match registry.get(name) {
        Ok(engine) => predict_with(state, req, &engine),
        Err(e @ dc_serve::RegistryError::UnknownModel(_)) => Response::error(404, &e.to_string()),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

fn predict_with(state: &AppState, req: &Request, engine: &dc_serve::QueryEngine) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not valid UTF-8"),
    };
    let value = match serde_json::parse_value(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
    };
    let Some(fields) = value.as_object() else {
        return Response::error(400, "body must be a JSON object");
    };

    if let Some((_, queries)) = fields.iter().find(|(k, _)| k == "queries") {
        let Some(items) = queries.as_array() else {
            return Response::error(400, "`queries` must be an array of [row, col] pairs");
        };
        if items.len() > MAX_BATCH {
            return Response::error(
                413,
                &format!("batch of {} exceeds {MAX_BATCH}", items.len()),
            );
        }
        let mut cells = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let pair = item.as_array().and_then(|a| {
                if a.len() == 2 {
                    Some((a[0].as_u64()?, a[1].as_u64()?))
                } else {
                    None
                }
            });
            match pair {
                Some((r, c)) => cells.push((r as usize, c as usize)),
                None => {
                    return Response::error(
                        400,
                        &format!("query #{i} is not a [row, col] pair of non-negative integers"),
                    );
                }
            }
        }
        // Fan a batch out over worker threads only when it is big enough to
        // amortize the spawn cost; small batches answer serially (request-
        // level parallelism already comes from the connection worker pool).
        let fanout = (cells.len() / 256).clamp(1, state.batch_threads);
        let results = engine.predict_batch(&cells, fanout);
        let mut body = String::from("{\"results\": [");
        for (i, ((row, col), result)) in cells.iter().zip(&results).enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&result_json(*row, *col, result));
        }
        body.push_str("]}\n");
        return Response::json(200, body);
    }

    match cell_of(fields) {
        Ok((row, col)) => {
            let result = engine.predict(row, col);
            Response::json(200, result_json(row, col, &result) + "\n")
        }
        Err(msg) => Response::error(400, &msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Limits;
    use crate::state::ModelMeta;
    use dc_floc::DeltaCluster;
    use dc_matrix::DataMatrix;
    use dc_obs::Obs;
    use dc_serve::ServeModel;

    fn model_4x4() -> ServeModel {
        let mut m = DataMatrix::builder(4, 4).build();
        for r in 0..3 {
            for c in 0..3 {
                m.set(r, c, (r + 2 * c) as f64);
            }
        }
        let cluster = DeltaCluster::from_indices(4, 4, 0..3, 0..3);
        ServeModel::new(m, vec![cluster], vec![0.0], 0.0).unwrap()
    }

    fn state() -> AppState {
        AppState::new(model_4x4(), Some("fixture.dcm"), 2, Obs::null())
    }

    fn get(path: &str) -> Request {
        request("GET", path, None)
    }

    fn request(method: &str, target: &str, body: Option<&str>) -> Request {
        let body = body.unwrap_or("");
        let raw = format!(
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        crate::http::HttpReader::new(raw.as_bytes(), Limits::default())
            .next_request(None)
            .unwrap()
    }

    fn body_str(r: &Response) -> String {
        String::from_utf8(r.body.clone()).unwrap()
    }

    #[test]
    fn healthz_and_readyz() {
        let s = state();
        let r = handle(&s, &get("/healthz"));
        assert_eq!(r.status, 200);
        assert!(body_str(&r).contains("\"status\": \"ok\""));

        assert_eq!(handle(&s, &get("/readyz")).status, 200);
        s.set_ready(false);
        let r = handle(&s, &get("/readyz"));
        assert_eq!(r.status, 503);
        assert!(r.headers.iter().any(|(k, _)| k == "Retry-After"));
    }

    #[test]
    fn model_metadata_round_trips() {
        let s = state();
        let r = handle(&s, &get("/v1/model"));
        assert_eq!(r.status, 200);
        let meta: ModelMeta = serde_json::from_str(body_str(&r).trim()).unwrap();
        assert_eq!((meta.rows, meta.cols, meta.clusters), (4, 4, 1));
        assert_eq!(meta.path.as_deref(), Some("fixture.dcm"));
    }

    #[test]
    fn single_predict_hit_and_miss() {
        let s = state();
        let r = handle(
            &s,
            &request("POST", "/v1/predict", Some("{\"row\":1,\"col\":1}")),
        );
        assert_eq!(r.status, 200);
        let body = body_str(&r);
        assert!(body.contains("\"outcome\": \"hit\""), "{body}");
        serde_json::parse_value(&body).unwrap();

        let r = handle(
            &s,
            &request("POST", "/v1/predict", Some("{\"row\":3,\"col\":3}")),
        );
        let body = body_str(&r);
        assert!(body.contains("\"outcome\": \"miss\""), "{body}");
        assert!(body.contains("\"prediction\": null"), "{body}");
    }

    #[test]
    fn batch_predict_preserves_order_and_counts() {
        let s = state();
        let req = request(
            "POST",
            "/v1/predict",
            Some("{\"queries\": [[0,0],[3,3],[1,2]]}"),
        );
        let r = handle(&s, &req);
        assert_eq!(r.status, 200);
        let body = body_str(&r);
        let parsed = serde_json::parse_value(&body).unwrap();
        let results = parsed.as_object().unwrap()[0].1.as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(predictions_in(&req, &r), 3);
        // Order preserved: second query (3,3) is the miss.
        let outcome = |i: usize| {
            results[i].as_object().unwrap()[2]
                .1
                .as_str()
                .unwrap()
                .to_string()
        };
        assert_eq!(outcome(0), "hit");
        assert_eq!(outcome(1), "miss");
        assert_eq!(outcome(2), "hit");
    }

    #[test]
    fn predict_rejects_bad_bodies_with_400() {
        let s = state();
        for bad in [
            "",
            "not json",
            "[1,2]",
            "{\"row\": 1}",
            "{\"row\": -1, \"col\": 0}",
            "{\"row\": 1.5, \"col\": 0}",
            "{\"queries\": 7}",
            "{\"queries\": [[1]]}",
            "{\"queries\": [[1, \"x\"]]}",
        ] {
            let r = handle(&s, &request("POST", "/v1/predict", Some(bad)));
            assert_eq!(r.status, 400, "{bad:?} -> {}", body_str(&r));
            serde_json::parse_value(&body_str(&r)).expect("error body is JSON");
        }
    }

    /// Mid-swap, `/readyz` turns traffic away (for load balancers) but
    /// predicts already in flight keep answering from the installed
    /// snapshot — the promotion-never-errors contract.
    #[test]
    fn predict_answers_during_swap() {
        let s = state();
        s.set_ready(false);
        assert_eq!(handle(&s, &get("/readyz")).status, 503);
        let r = handle(
            &s,
            &request("POST", "/v1/predict", Some("{\"row\":0,\"col\":0}")),
        );
        assert_eq!(r.status, 200);
        assert!(body_str(&r).contains("\"outcome\": \"hit\""));
    }

    #[test]
    fn unknown_routes_and_methods() {
        let s = state();
        assert_eq!(handle(&s, &get("/nope")).status, 404);
        let r = handle(&s, &request("POST", "/healthz", None));
        assert_eq!(r.status, 405);
        assert!(r
            .headers
            .iter()
            .any(|(k, v)| k == "Allow" && v.contains("GET")));
        assert_eq!(handle(&s, &get("/v1/predict")).status, 405);
        let delete = Request {
            method: Method::Other("DELETE".into()),
            ..get("/metrics")
        };
        assert_eq!(handle(&s, &delete).status, 405);
    }

    #[test]
    fn metrics_formats() {
        let s = state();
        s.metrics.record_request(
            &Obs::null(),
            "GET",
            "/healthz",
            200,
            std::time::Duration::from_micros(5),
            0,
        );
        let r = handle(&s, &get("/metrics"));
        assert_eq!(r.content_type, "application/json");
        serde_json::parse_value(&body_str(&r)).unwrap();

        let r = handle(&s, &get("/metrics?format=prometheus"));
        assert!(r.content_type.starts_with("text/plain"));
        assert!(body_str(&r).contains("dc_net_requests_total"));

        let mut req = get("/metrics");
        req.headers.push(("accept".into(), "text/plain".into()));
        let r = handle(&s, &req);
        assert!(body_str(&r).contains("# TYPE"));
    }

    #[test]
    fn status_fragments_surface_on_healthz_and_model() {
        let s = state();
        s.set_status_fragment("miner", "{\"state\": \"running\", \"generation\": 3}");

        let r = handle(&s, &get("/healthz"));
        assert_eq!(r.status, 200);
        let body = body_str(&r);
        assert!(
            body.contains("\"miner\": {\"state\": \"running\""),
            "{body}"
        );
        serde_json::parse_value(&body).unwrap();

        let r = handle(&s, &get("/v1/model"));
        assert_eq!(r.status, 200);
        let body = body_str(&r);
        assert!(body.contains("\"generation\": 3"), "{body}");
        assert!(body.contains("\"version\": 1"), "{body}");
        serde_json::parse_value(&body).unwrap();
    }

    #[test]
    fn gauges_render_in_both_metrics_formats() {
        let s = state();
        s.set_gauge("miner_promotions_total", 7);
        let r = handle(&s, &get("/metrics"));
        let body = body_str(&r);
        assert!(body.contains("\"miner_promotions_total\": 7"), "{body}");
        serde_json::parse_value(&body).unwrap();

        let r = handle(&s, &get("/metrics?format=prometheus"));
        let body = body_str(&r);
        assert!(
            body.contains("# TYPE dc_miner_promotions_total gauge"),
            "{body}"
        );
        assert!(body.contains("dc_miner_promotions_total 7"), "{body}");
    }

    #[test]
    fn models_routes_404_without_a_registry() {
        let s = state();
        assert_eq!(handle(&s, &get("/v1/models")).status, 404);
        let r = handle(
            &s,
            &request(
                "POST",
                "/v1/models/x/predict",
                Some("{\"row\":0,\"col\":0}"),
            ),
        );
        assert_eq!(r.status, 404);
    }

    #[test]
    fn named_model_paths_parse_strictly() {
        assert_eq!(named_model_of("/v1/models/abc/predict"), Some("abc"));
        assert_eq!(named_model_of("/v1/models//predict"), None);
        assert_eq!(named_model_of("/v1/models/a/b/predict"), None);
        assert_eq!(named_model_of("/v1/models/predict"), None);
        assert_eq!(named_model_of("/v1/models"), None);
        assert!(is_predict_path("/v1/predict"));
        assert!(is_predict_path("/v1/models/m/predict"));
        assert!(!is_predict_path("/v1/models"));
    }

    #[test]
    fn registry_backed_routes_list_and_predict() {
        let dir = std::env::temp_dir().join(format!("dc-api-registry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dc_serve::save(&model_4x4(), dir.join("fixture@1.dcm")).unwrap();
        let registry =
            std::sync::Arc::new(dc_serve::ModelRegistry::open(&dir, 2, Obs::null()).unwrap());
        let s = state().with_registry(registry);

        let r = handle(&s, &get("/v1/models"));
        assert_eq!(r.status, 200);
        let body = body_str(&r);
        assert!(body.contains("\"name\": \"fixture\""), "{body}");
        assert!(body.contains("\"resident\": false"), "{body}");
        serde_json::parse_value(&body).unwrap();

        // Named predict answers exactly like the default model.
        let body = "{\"queries\": [[0,0],[3,3],[1,2]]}";
        let named = handle(
            &s,
            &request("POST", "/v1/models/fixture/predict", Some(body)),
        );
        let default = handle(&s, &request("POST", "/v1/predict", Some(body)));
        assert_eq!(named.status, 200);
        assert_eq!(
            named.body, default.body,
            "registry model must answer identically"
        );
        let req = request("POST", "/v1/models/fixture/predict", Some(body));
        assert_eq!(predictions_in(&req, &named), 3);

        // Unknown names 404; wrong method 405.
        let r = handle(&s, &request("POST", "/v1/models/nope/predict", Some(body)));
        assert_eq!(r.status, 404);
        assert_eq!(handle(&s, &get("/v1/models/fixture/predict")).status, 405);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_batch_is_413() {
        let s = state();
        let queries: String = (0..MAX_BATCH + 1)
            .map(|_| "[0,0]")
            .collect::<Vec<_>>()
            .join(",");
        // Build the request directly; the HTTP-level body limit is a
        // separate guard tested in http.rs.
        let req = Request {
            method: Method::Post,
            path: "/v1/predict".into(),
            query: None,
            headers: vec![],
            body: format!("{{\"queries\": [{queries}]}}").into_bytes(),
            keep_alive: true,
        };
        assert_eq!(handle(&s, &req).status, 413);
    }
}
