//! Server-side request metrics: counters and latency histograms reusing
//! the `dc-obs` primitives, rendered as JSON (`GET /metrics`) or Prometheus
//! text exposition (`GET /metrics?format=prometheus` or an
//! `Accept: text/plain` header).
//!
//! All mutation goes through one mutex taken once per request — the same
//! "aggregate under a lock touched rarely" pattern `QueryStats` uses — so
//! the serving hot path pays a short uncontended lock, not per-field
//! atomics.

use dc_obs::{bucket_of, Counter, EventKind, Field, Histogram, Obs};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

#[derive(Debug, Default)]
struct Inner {
    requests: Counter,
    /// Responses by status class index (2 → 2xx, 4 → 4xx, 5 → 5xx, ...).
    by_class: [Counter; 6],
    by_route: BTreeMap<String, u64>,
    /// Connections rejected with 503 by queue backpressure.
    rejected: Counter,
    connections_opened: Counter,
    connections_closed: Counter,
    /// Predictions answered (batch requests count every query).
    predictions: Counter,
    latency: Histogram,
}

/// Shared, thread-safe request metrics for one server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    inner: Mutex<Inner>,
    /// Connections currently inside a worker (gauge; atomic so the accept
    /// loop can read it without the lock).
    active: AtomicU64,
}

fn relock(inner: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl ServerMetrics {
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Records one answered request and emits the `net.request` event.
    pub fn record_request(
        &self,
        obs: &Obs,
        method: &str,
        path: &str,
        status: u16,
        latency: Duration,
        predictions: u64,
    ) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        {
            let mut m = relock(&self.inner);
            m.requests.inc();
            m.by_class[(status as usize / 100).min(5)].inc();
            *m.by_route.entry(route_key(method, path)).or_insert(0) += 1;
            m.predictions.add(predictions);
            m.latency.record(nanos);
        }
        if obs.enabled() {
            obs.emit_full(
                EventKind::Span,
                "net.request",
                &[
                    Field::new("method", method),
                    Field::new("path", path),
                    Field::new("status", status as u64),
                    Field::new("duration_nanos", nanos),
                    Field::new("latency_bucket", bucket_of(nanos) as u64),
                ],
                None,
            );
        }
    }

    /// Records a connection rejected by backpressure (503 at accept time).
    pub fn record_rejected(&self, obs: &Obs) {
        relock(&self.inner).rejected.inc();
        if obs.enabled() {
            obs.emit("net.rejected", &[Field::new("status", 503u64)]);
        }
    }

    pub fn connection_opened(&self) {
        relock(&self.inner).connections_opened.inc();
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    pub fn connection_closed(&self) {
        relock(&self.inner).connections_closed.inc();
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter, for rendering and tests.
    pub fn snapshot(&self) -> MetricsReport {
        let m = relock(&self.inner);
        MetricsReport {
            requests: m.requests.get(),
            responses_2xx: m.by_class[2].get(),
            responses_4xx: m.by_class[4].get(),
            responses_5xx: m.by_class[5].get(),
            by_route: m.by_route.clone(),
            rejected: m.rejected.get(),
            connections_opened: m.connections_opened.get(),
            connections_closed: m.connections_closed.get(),
            active_connections: self.active_connections(),
            predictions: m.predictions.get(),
            latency: m.latency.clone(),
        }
    }
}

fn route_key(method: &str, path: &str) -> String {
    format!("{method} {path}")
}

/// Rendered view of [`ServerMetrics`].
#[derive(Debug, Clone)]
pub struct MetricsReport {
    pub requests: u64,
    pub responses_2xx: u64,
    pub responses_4xx: u64,
    pub responses_5xx: u64,
    pub by_route: BTreeMap<String, u64>,
    pub rejected: u64,
    pub connections_opened: u64,
    pub connections_closed: u64,
    pub active_connections: u64,
    pub predictions: u64,
    pub latency: Histogram,
}

impl MetricsReport {
    /// The `GET /metrics` JSON body.
    pub fn to_json(&self) -> String {
        let mut routes = String::new();
        for (i, (route, count)) in self.by_route.iter().enumerate() {
            if i > 0 {
                routes.push_str(", ");
            }
            let route = route.replace('\\', "\\\\").replace('"', "\\\"");
            routes.push_str(&format!("\"{route}\": {count}"));
        }
        format!(
            "{{\n  \"requests\": {},\n  \"responses\": {{\"2xx\": {}, \"4xx\": {}, \"5xx\": {}}},\n  \
             \"by_route\": {{{routes}}},\n  \"rejected\": {},\n  \
             \"connections\": {{\"opened\": {}, \"closed\": {}, \"active\": {}}},\n  \
             \"predictions\": {},\n  \
             \"latency_nanos\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}}\n}}\n",
            self.requests,
            self.responses_2xx,
            self.responses_4xx,
            self.responses_5xx,
            self.rejected,
            self.connections_opened,
            self.connections_closed,
            self.active_connections,
            self.predictions,
            self.latency.count(),
            self.latency.mean(),
            self.latency.quantile(0.5),
            self.latency.quantile(0.99),
        )
    }

    /// Prometheus text exposition format (version 0.0.4).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter("dc_net_requests_total", "Requests answered", self.requests);
        counter(
            "dc_net_rejected_total",
            "Connections rejected by queue backpressure",
            self.rejected,
        );
        counter(
            "dc_net_predictions_total",
            "Point predictions answered (batch requests count each query)",
            self.predictions,
        );
        counter(
            "dc_net_connections_opened_total",
            "Connections accepted into the worker pool",
            self.connections_opened,
        );
        counter(
            "dc_net_connections_closed_total",
            "Connections fully handled and closed",
            self.connections_closed,
        );
        out.push_str(
            "# HELP dc_net_responses_total Responses by status class\n\
             # TYPE dc_net_responses_total counter\n",
        );
        for (class, value) in [
            ("2xx", self.responses_2xx),
            ("4xx", self.responses_4xx),
            ("5xx", self.responses_5xx),
        ] {
            out.push_str(&format!(
                "dc_net_responses_total{{class=\"{class}\"}} {value}\n"
            ));
        }
        out.push_str(&format!(
            "# HELP dc_net_active_connections Connections currently inside a worker\n\
             # TYPE dc_net_active_connections gauge\n\
             dc_net_active_connections {}\n",
            self.active_connections
        ));
        out.push_str(&format!(
            "# HELP dc_net_request_latency_seconds Request latency (log2-bucket estimate)\n\
             # TYPE dc_net_request_latency_seconds summary\n\
             dc_net_request_latency_seconds{{quantile=\"0.5\"}} {}\n\
             dc_net_request_latency_seconds{{quantile=\"0.99\"}} {}\n\
             dc_net_request_latency_seconds_sum {}\n\
             dc_net_request_latency_seconds_count {}\n",
            self.latency.quantile(0.5) as f64 / 1e9,
            self.latency.quantile(0.99) as f64 / 1e9,
            self.latency.total() as f64 / 1e9,
            self.latency.count(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_obs::MemorySink;

    #[test]
    fn records_requests_and_classes() {
        let m = ServerMetrics::new();
        let obs = Obs::null();
        m.record_request(&obs, "GET", "/healthz", 200, Duration::from_micros(10), 0);
        m.record_request(
            &obs,
            "POST",
            "/v1/predict",
            200,
            Duration::from_micros(50),
            3,
        );
        m.record_request(&obs, "GET", "/nope", 404, Duration::from_micros(5), 0);
        m.record_rejected(&obs);
        let snap = m.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.responses_2xx, 2);
        assert_eq!(snap.responses_4xx, 1);
        assert_eq!(snap.responses_5xx, 0);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.predictions, 3);
        assert_eq!(snap.by_route.get("GET /healthz"), Some(&1));
        assert_eq!(snap.latency.count(), 3);
    }

    #[test]
    fn connection_gauge_balances() {
        let m = ServerMetrics::new();
        m.connection_opened();
        m.connection_opened();
        assert_eq!(m.active_connections(), 2);
        m.connection_closed();
        m.connection_closed();
        assert_eq!(m.active_connections(), 0);
        let snap = m.snapshot();
        assert_eq!(snap.connections_opened, 2);
        assert_eq!(snap.connections_closed, 2);
    }

    #[test]
    fn json_rendering_is_valid_json() {
        let m = ServerMetrics::new();
        m.record_request(
            &Obs::null(),
            "GET",
            "/metrics",
            200,
            Duration::from_micros(7),
            0,
        );
        let text = m.snapshot().to_json();
        serde_json::parse_value(&text).expect("metrics JSON must parse");
        assert!(text.contains("\"requests\": 1"), "{text}");
        assert!(text.contains("\"GET /metrics\": 1"), "{text}");
    }

    #[test]
    fn prometheus_rendering_has_types_and_samples() {
        let m = ServerMetrics::new();
        m.record_request(
            &Obs::null(),
            "POST",
            "/v1/predict",
            200,
            Duration::from_millis(1),
            1,
        );
        let text = m.snapshot().to_prometheus();
        assert!(
            text.contains("# TYPE dc_net_requests_total counter"),
            "{text}"
        );
        assert!(text.contains("dc_net_requests_total 1"), "{text}");
        assert!(
            text.contains("dc_net_responses_total{class=\"2xx\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dc_net_request_latency_seconds_count 1"),
            "{text}"
        );
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }

    #[test]
    fn net_request_event_carries_the_envelope() {
        let sink = MemorySink::new();
        let obs = Obs::new(sink.clone());
        let m = ServerMetrics::new();
        m.record_request(&obs, "GET", "/healthz", 200, Duration::from_micros(3), 0);
        let events = sink.named("net.request");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].str_field("method"), Some("GET"));
        assert_eq!(events[0].str_field("path"), Some("/healthz"));
        assert_eq!(events[0].u64_field("status"), Some(200));
        assert!(events[0].u64_field("duration_nanos").is_some());
        assert!(events[0].u64_field("latency_bucket").is_some());
    }
}
