//! Incremental HTTP/1.1 request parsing and response serialization.
//!
//! The reader is deliberately defensive: every way a peer can misbehave —
//! garbage bytes, a truncated head, an oversized header block, a body
//! larger than advertised limits, a mid-request stall — surfaces as a typed
//! [`RecvError`] that maps to a clean 4xx response (or a silent close),
//! never a panic. The chaos suite in `tests/chaos.rs` drives this parser
//! through `dc-fault` wrappers to pin that contract.
//!
//! Parsing is incremental over any [`Read`]: bytes accumulate in a
//! per-connection buffer, so pipelined requests that arrive in one TCP
//! segment are handed out one at a time with no data loss between calls.

use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Hard limits a connection enforces while reading requests.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers (431 beyond this).
    pub max_head_bytes: usize,
    /// Maximum declared/actual body size (413 beyond this).
    pub max_body_bytes: usize,
    /// How long a connection may sit idle between requests before the
    /// server closes it (no error response; the peer just went away).
    pub idle_timeout: Duration,
    /// How long a single request may take to arrive once its first byte
    /// has been seen (408 beyond this).
    pub read_timeout: Duration,
    /// Deadline for writing a response before the connection is dropped.
    pub write_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            idle_timeout: Duration::from_secs(15),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Request methods the API layer routes on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
    Head,
    /// Anything else; routed to 405 by the API layer.
    Other(String),
}

impl Method {
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
            Method::Other(s) => s,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Header pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the connection may serve another request afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to a well-defined
/// close behavior via [`RecvError::response`].
#[derive(Debug)]
pub enum RecvError {
    /// Clean EOF before any byte of a request: the peer closed. Silent.
    Closed,
    /// The idle deadline passed with no request bytes. Silent close.
    IdleTimeout,
    /// The server is shutting down and no request was in flight. Silent.
    ShuttingDown,
    /// A request started arriving but stalled past the read deadline → 408.
    Timeout,
    /// Request line + headers exceeded [`Limits::max_head_bytes`] → 431.
    HeadTooLarge,
    /// Declared or delivered body exceeded [`Limits::max_body_bytes`] → 413.
    BodyTooLarge,
    /// Syntactically invalid input → 400. The string says what broke.
    Malformed(String),
    /// Syntactically valid but unimplemented (e.g. chunked bodies) → 501.
    Unsupported(String),
    /// Transport error mid-read. Connection is unusable; close silently.
    Io(std::io::Error),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed by peer"),
            RecvError::IdleTimeout => write!(f, "idle timeout"),
            RecvError::ShuttingDown => write!(f, "server shutting down"),
            RecvError::Timeout => write!(f, "request read timed out"),
            RecvError::HeadTooLarge => write!(f, "request head too large"),
            RecvError::BodyTooLarge => write!(f, "request body too large"),
            RecvError::Malformed(m) => write!(f, "malformed request: {m}"),
            RecvError::Unsupported(m) => write!(f, "unsupported request: {m}"),
            RecvError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl RecvError {
    /// The error response owed to the peer, or `None` when the connection
    /// should simply be closed.
    pub fn response(&self) -> Option<Response> {
        let (status, msg) = match self {
            RecvError::Timeout => (408, "request timed out".to_string()),
            RecvError::HeadTooLarge => (431, "request header fields too large".to_string()),
            RecvError::BodyTooLarge => (413, "request body too large".to_string()),
            RecvError::Malformed(m) => (400, m.clone()),
            RecvError::Unsupported(m) => (501, m.clone()),
            _ => return None,
        };
        Some(Response::error(status, &msg))
    }
}

/// Reads requests incrementally from `inner`, carrying leftover bytes
/// between calls so pipelined requests are never dropped.
///
/// For network streams, set the socket read timeout to a short slice (the
/// server uses [`HttpReader::POLL_SLICE`]); `next_request` treats
/// `WouldBlock`/`TimedOut` as "no bytes yet" and re-checks its own idle /
/// read deadlines and the shutdown flag, which keeps the blocking read
/// responsive to graceful shutdown without platform-specific polling.
pub struct HttpReader<R> {
    inner: R,
    buf: Vec<u8>,
    limits: Limits,
}

impl<R: Read> HttpReader<R> {
    /// Socket-level read timeout the server pairs with this reader, so a
    /// blocked read wakes often enough to notice deadlines and shutdown.
    pub const POLL_SLICE: Duration = Duration::from_millis(50);

    pub fn new(inner: R, limits: Limits) -> Self {
        HttpReader {
            inner,
            buf: Vec::new(),
            limits,
        }
    }

    /// Bytes buffered but not yet consumed (start of a pipelined request).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Reads the next request. `stop`, when provided and raised, aborts
    /// cleanly *between* requests (a request whose bytes have started
    /// arriving is still read to completion so it can be answered before
    /// the connection drains).
    pub fn next_request(&mut self, stop: Option<&AtomicBool>) -> Result<Request, RecvError> {
        let started = Instant::now();
        let mut saw_bytes = !self.buf.is_empty();

        // Phase 1: accumulate until the head terminator.
        let head_end = loop {
            if let Some(end) = find_head_end(&self.buf) {
                break end;
            }
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(RecvError::HeadTooLarge);
            }
            match self.fill(started, saw_bytes, stop)? {
                0 => {
                    return if saw_bytes {
                        Err(RecvError::Malformed(
                            "unexpected end of request head".into(),
                        ))
                    } else {
                        Err(RecvError::Closed)
                    };
                }
                _ => saw_bytes = true,
            }
        };
        if head_end > self.limits.max_head_bytes {
            return Err(RecvError::HeadTooLarge);
        }

        let head = self.buf[..head_end].to_vec();
        let mut request = parse_head(&head)?;

        // Phase 2: the body, if one was declared.
        let body_len = match request.header("transfer-encoding") {
            Some(te) if !te.eq_ignore_ascii_case("identity") => {
                return Err(RecvError::Unsupported(format!(
                    "transfer-encoding {te:?} not implemented"
                )));
            }
            _ => match request.header("content-length") {
                None => 0,
                Some(raw) => {
                    let n: u64 = raw.trim().parse().map_err(|_| {
                        RecvError::Malformed(format!("invalid content-length {raw:?}"))
                    })?;
                    if n > self.limits.max_body_bytes as u64 {
                        return Err(RecvError::BodyTooLarge);
                    }
                    n as usize
                }
            },
        };
        let body_start = head_end + 4;
        while self.buf.len() < body_start + body_len {
            if self.fill(started, true, stop)? == 0 {
                return Err(RecvError::Malformed(
                    "unexpected end of request body".into(),
                ));
            }
        }
        request.body = self.buf[body_start..body_start + body_len].to_vec();
        // Keep pipelined leftovers for the next call.
        self.buf.drain(..body_start + body_len);
        Ok(request)
    }

    /// One read into the buffer. Returns bytes added; 0 means EOF.
    /// Timeout-kind errors are folded into deadline/shutdown checks.
    fn fill(
        &mut self,
        started: Instant,
        saw_bytes: bool,
        stop: Option<&AtomicBool>,
    ) -> Result<usize, RecvError> {
        loop {
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // No bytes this slice: consult the higher-level clocks.
                    if !saw_bytes {
                        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                            return Err(RecvError::ShuttingDown);
                        }
                        if started.elapsed() >= self.limits.idle_timeout {
                            return Err(RecvError::IdleTimeout);
                        }
                    } else if started.elapsed() >= self.limits.read_timeout {
                        return Err(RecvError::Timeout);
                    }
                    continue;
                }
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
    }
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses request line + headers (everything before the blank line).
fn parse_head(head: &[u8]) -> Result<Request, RecvError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| RecvError::Malformed("request head is not valid UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| RecvError::Malformed("empty request head".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RecvError::Malformed(format!(
                "bad request line {request_line:?}"
            )));
        }
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "HEAD" => Method::Head,
        other if other.chars().all(|c| c.is_ascii_uppercase()) => Method::Other(other.to_string()),
        other => return Err(RecvError::Malformed(format!("bad method {other:?}"))),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(RecvError::Unsupported(format!(
                "http version {other:?} not implemented"
            )));
        }
    };
    if !target.starts_with('/') {
        return Err(RecvError::Malformed(format!(
            "bad request target {target:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RecvError::Malformed(format!("bad header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(RecvError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        keep_alive: http11,
    };
    request.keep_alive = match request.header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => http11,
    };
    Ok(request)
}

/// A response under construction; serialized by [`Response::write_to`].
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    /// Extra headers beyond the auto-generated ones.
    pub headers: Vec<(String, String)>,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into(),
        }
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// The uniform error payload: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let escaped = message.replace('\\', "\\\\").replace('"', "\\\"");
        let mut r = Response::json(status, format!("{{\"error\": \"{escaped}\"}}\n"));
        if status == 503 {
            r.headers.push(("Retry-After".into(), "1".into()));
        }
        r
    }

    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes status line, headers, and body. `head_only` omits the
    /// body (HEAD requests) while keeping the Content-Length honest.
    pub fn write_to<W: std::io::Write>(
        &self,
        w: &mut W,
        keep_alive: bool,
        head_only: bool,
    ) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        // One write per response: head and body in separate writes would
        // emit two TCP segments and interact badly with delayed ACKs.
        let mut frame = head.into_bytes();
        if !head_only {
            frame.extend_from_slice(&self.body);
        }
        w.write_all(&frame)?;
        w.flush()
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reader(bytes: &[u8]) -> HttpReader<&[u8]> {
        HttpReader::new(bytes, Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let mut r = reader(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = r.next_request(None).unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, None);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_query_string_and_connection_close() {
        let mut r = reader(b"GET /metrics?format=prometheus HTTP/1.1\r\nConnection: close\r\n\r\n");
        let req = r.next_request(None).unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query.as_deref(), Some("format=prometheus"));
        assert!(!req.keep_alive);
    }

    #[test]
    fn parses_post_with_body_and_pipelined_followup() {
        let bytes = b"POST /v1/predict HTTP/1.1\r\ncontent-length: 17\r\n\r\n\
                      {\"row\":1,\"col\":2}GET /healthz HTTP/1.1\r\n\r\n";
        let mut r = reader(bytes);
        let first = r.next_request(None).unwrap();
        assert_eq!(first.method, Method::Post);
        assert_eq!(first.body, b"{\"row\":1,\"col\":2}");
        // The pipelined second request survives in the buffer.
        let second = r.next_request(None).unwrap();
        assert_eq!(second.path, "/healthz");
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let mut r = reader(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r.next_request(None).unwrap().keep_alive);
        let mut r = reader(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.next_request(None).unwrap().keep_alive);
    }

    #[test]
    fn clean_eof_is_closed_mid_head_is_malformed() {
        assert!(matches!(
            reader(b"").next_request(None),
            Err(RecvError::Closed)
        ));
        assert!(matches!(
            reader(b"GET / HTTP/1.1\r\n").next_request(None),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            reader(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc").next_request(None),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn garbage_inputs_are_malformed_not_panics() {
        for garbage in [
            &b"\x00\x01\x02\x03\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"G=T / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let err = reader(garbage).next_request(None).unwrap_err();
            assert!(
                matches!(err, RecvError::Malformed(_)),
                "{garbage:?} -> {err:?}"
            );
            assert_eq!(err.response().unwrap().status, 400);
        }
    }

    #[test]
    fn unsupported_version_and_chunked_are_501() {
        let err = reader(b"GET / HTTP/2.0\r\n\r\n")
            .next_request(None)
            .unwrap_err();
        assert!(matches!(err, RecvError::Unsupported(_)));
        let err = reader(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
            .next_request(None)
            .unwrap_err();
        assert_eq!(err.response().unwrap().status, 501);
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let mut huge = b"GET / HTTP/1.1\r\n".to_vec();
        huge.extend(std::iter::repeat_n(b'a', 20_000));
        let mut r = HttpReader::new(
            &huge[..],
            Limits {
                max_head_bytes: 1024,
                ..Limits::default()
            },
        );
        let err = r.next_request(None).unwrap_err();
        assert!(matches!(err, RecvError::HeadTooLarge));
        assert_eq!(err.response().unwrap().status, 431);

        let body = b"POST / HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n";
        let mut r = HttpReader::new(
            &body[..],
            Limits {
                max_body_bytes: 64,
                ..Limits::default()
            },
        );
        let err = r.next_request(None).unwrap_err();
        assert!(matches!(err, RecvError::BodyTooLarge));
        assert_eq!(err.response().unwrap().status, 413);
    }

    #[test]
    fn responses_serialize_with_auto_headers() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .header("x-test", "1")
            .write_to(&mut out, true, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11"), "{text}");
        assert!(text.contains("connection: keep-alive"), "{text}");
        assert!(text.contains("x-test: 1"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");

        let mut head_only = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut head_only, false, true)
            .unwrap();
        let text = String::from_utf8(head_only).unwrap();
        assert!(text.contains("content-length: 11"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.ends_with("\r\n\r\n"), "{text}");
    }

    #[test]
    fn error_503_carries_retry_after() {
        let r = Response::error(503, "queue full");
        assert!(r
            .headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && v == "1"));
        let r = Response::error(400, "quote \" and backslash \\");
        let body = String::from_utf8(r.body).unwrap();
        serde_json::parse_value(&body).expect("error body must stay valid JSON");
    }

    #[test]
    fn shutdown_flag_aborts_idle_reads() {
        // A reader that always reports WouldBlock simulates an idle socket.
        struct Idle;
        impl Read for Idle {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        let stop = AtomicBool::new(true);
        let mut r = HttpReader::new(Idle, Limits::default());
        assert!(matches!(
            r.next_request(Some(&stop)),
            Err(RecvError::ShuttingDown)
        ));
    }

    #[test]
    fn idle_and_mid_request_timeouts_are_distinguished() {
        struct Idle;
        impl Read for Idle {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::TimedOut))
            }
        }
        let limits = Limits {
            idle_timeout: Duration::ZERO,
            read_timeout: Duration::ZERO,
            ..Limits::default()
        };
        // Nothing buffered: the peer is idle, close silently.
        let mut r = HttpReader::new(Idle, limits.clone());
        let err = r.next_request(None).unwrap_err();
        assert!(matches!(err, RecvError::IdleTimeout), "{err:?}");
        assert!(err.response().is_none());

        // A partial request is buffered: that's a 408.
        let mut r = HttpReader::new(Idle, limits);
        r.buf.extend_from_slice(b"GET / HT");
        let err = r.next_request(None).unwrap_err();
        assert!(matches!(err, RecvError::Timeout), "{err:?}");
        assert_eq!(err.response().unwrap().status, 408);
    }
}
