//! Shared per-server state: the installed model, readiness, and metadata.
//!
//! The engine and its metadata live *together* in one [`Installed`]
//! snapshot behind an `RwLock<Arc<Installed>>`: request workers take a
//! cheap read lock, clone the `Arc`, and answer from an immutable,
//! internally consistent view — a concurrent
//! [`swap_model`](AppState::swap_model) never blocks in-flight queries and
//! can never be observed half-applied (engine from one model, metadata or
//! version from another). Readiness is a separate atomic that flips `false`
//! for the duration of a swap, which is exactly what `GET /readyz` (and a
//! load balancer probing it) wants to observe; the predict path keeps
//! answering from its snapshot throughout.
//!
//! The state also carries two small maps the online miner feeds:
//! integer **gauges** rendered on `/metrics`, and raw-JSON **status
//! fragments** spliced into `/healthz` and `/v1/model` (e.g. the miner's
//! generation and last promotion).

use crate::metrics::ServerMetrics;
use dc_obs::Obs;
use dc_serve::{ModelRegistry, QueryEngine, ServeModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Identity of the model currently being served; the `GET /v1/model` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelMeta {
    /// Where the artifact was loaded from, when it came from a file.
    pub path: Option<String>,
    /// Monotonic install counter: 1 for the model the server started with,
    /// bumped by every [`AppState::swap_model`]. Lets clients observe
    /// promotions without comparing fingerprints.
    pub version: u64,
    pub rows: usize,
    pub cols: usize,
    pub clusters: usize,
    pub specified_cells: usize,
    pub avg_residue: f64,
    /// FNV-1a content fingerprint of the served matrix, as fixed-width hex
    /// (the same fingerprint checkpoint resume validates against).
    pub fingerprint: String,
}

impl ModelMeta {
    pub fn of(model: &ServeModel, path: Option<&str>) -> ModelMeta {
        ModelMeta {
            path: path.map(str::to_string),
            version: 1,
            rows: model.matrix().rows(),
            cols: model.matrix().cols(),
            clusters: model.k(),
            specified_cells: model.matrix().specified_count(),
            avg_residue: model.avg_residue(),
            fingerprint: format!("{:016x}", model.matrix().fingerprint()),
        }
    }
}

/// One installed model: the engine and the metadata describing it, bound
/// into a single immutable snapshot.
pub struct Installed {
    pub engine: Arc<QueryEngine>,
    pub meta: ModelMeta,
}

fn read_poisoned<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_poisoned<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Everything request handlers share. One per server, behind an `Arc`.
pub struct AppState {
    installed: RwLock<Arc<Installed>>,
    /// Next value of [`ModelMeta::version`]; monotonic across swaps.
    next_version: AtomicU64,
    ready: AtomicBool,
    started: Instant,
    /// How many worker threads a batch predict may fan out over.
    pub batch_threads: usize,
    pub metrics: ServerMetrics,
    pub obs: Obs,
    /// Named-model registry behind `/v1/models`, when serving started with
    /// one (`serve --models DIR`). The default model keeps `/v1/predict`.
    registry: Option<Arc<ModelRegistry>>,
    /// Integer gauges rendered on `/metrics` (`set_gauge`).
    gauges: RwLock<BTreeMap<String, u64>>,
    /// Raw-JSON fragments spliced into `/healthz` and `/v1/model`
    /// (`set_status_fragment`). Keys become top-level JSON keys.
    status: RwLock<BTreeMap<String, String>>,
}

impl AppState {
    pub fn new(model: ServeModel, path: Option<&str>, batch_threads: usize, obs: Obs) -> AppState {
        let meta = ModelMeta::of(&model, path);
        AppState {
            installed: RwLock::new(Arc::new(Installed {
                engine: Arc::new(QueryEngine::new(model)),
                meta,
            })),
            next_version: AtomicU64::new(2),
            ready: AtomicBool::new(true),
            started: Instant::now(),
            batch_threads: batch_threads.max(1),
            metrics: ServerMetrics::new(),
            obs,
            registry: None,
            gauges: RwLock::new(BTreeMap::new()),
            status: RwLock::new(BTreeMap::new()),
        }
    }

    /// Attaches a model registry, enabling `GET /v1/models` and
    /// `POST /v1/models/<name>/predict` alongside the default model.
    pub fn with_registry(mut self, registry: Arc<ModelRegistry>) -> AppState {
        self.registry = Some(registry);
        self
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&Arc<ModelRegistry>> {
        self.registry.as_ref()
    }

    /// The consistent engine+metadata snapshot a request answers from.
    pub fn installed(&self) -> Arc<Installed> {
        read_poisoned(&self.installed).clone()
    }

    /// The engine snapshot a request should answer from.
    pub fn engine(&self) -> Arc<QueryEngine> {
        self.installed().engine.clone()
    }

    /// Metadata for the model currently installed.
    pub fn meta(&self) -> ModelMeta {
        self.installed().meta.clone()
    }

    /// Whether `/readyz` should answer 200. False during a model swap.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Manually flips readiness (e.g. pre-drain in an orchestrator).
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::Release);
    }

    /// Seconds since the server started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Sets an integer gauge rendered on `/metrics` (JSON `gauges` object
    /// and Prometheus `# TYPE … gauge` samples). Names should be
    /// `snake_case` identifiers.
    pub fn set_gauge(&self, name: &str, value: u64) {
        write_poisoned(&self.gauges).insert(name.to_string(), value);
    }

    /// A point-in-time copy of every gauge.
    pub fn gauges(&self) -> BTreeMap<String, u64> {
        read_poisoned(&self.gauges).clone()
    }

    /// Publishes a raw-JSON fragment under `key` on `/healthz` and
    /// `/v1/model` (e.g. `set_status_fragment("miner", "{\"state\": …}")`).
    /// The fragment must be a complete JSON value; the caller owns its
    /// validity.
    pub fn set_status_fragment(&self, key: &str, fragment: &str) {
        write_poisoned(&self.status).insert(key.to_string(), fragment.to_string());
    }

    /// A point-in-time copy of every status fragment.
    pub fn status_fragments(&self) -> BTreeMap<String, String> {
        read_poisoned(&self.status).clone()
    }

    /// Installs a new model, bumping [`ModelMeta::version`]. Readiness
    /// drops for the duration of the swap and recovers afterwards; queries
    /// already holding a snapshot finish unaffected, and queries arriving
    /// mid-swap answer from whichever complete snapshot the lock hands
    /// them — old or new, never a mix.
    pub fn swap_model(&self, model: ServeModel, path: Option<&str>) -> u64 {
        self.set_ready(false);
        // Held open by chaos tests (delay) to observe /readyz mid-swap, or
        // aborted to simulate a kill at the most hostile instant.
        dc_fault::chaos::safepoint("net.swap.not_ready");
        let mut meta = ModelMeta::of(&model, path);
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        meta.version = version;
        let installed = Arc::new(Installed {
            engine: Arc::new(QueryEngine::new(model)),
            meta,
        });
        *write_poisoned(&self.installed) = installed;
        dc_fault::chaos::safepoint("net.swap.installed");
        self.set_ready(true);
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_floc::DeltaCluster;
    use dc_matrix::DataMatrix;

    pub(crate) fn tiny_model(fill: f64) -> ServeModel {
        let mut m = DataMatrix::builder(4, 4).build();
        for r in 0..4 {
            for c in 0..4 {
                m.set(r, c, fill * (r + c) as f64);
            }
        }
        let cluster = DeltaCluster::from_indices(4, 4, 0..4, 0..4);
        ServeModel::new(m, vec![cluster], vec![0.0], 0.0).unwrap()
    }

    #[test]
    fn meta_reports_shape_and_fingerprint() {
        let state = AppState::new(tiny_model(1.0), Some("m.dcm"), 2, Obs::null());
        let meta = state.meta();
        assert_eq!((meta.rows, meta.cols, meta.clusters), (4, 4, 1));
        assert_eq!(meta.path.as_deref(), Some("m.dcm"));
        assert_eq!(meta.fingerprint.len(), 16);
        assert_eq!(meta.version, 1);
        assert!(state.is_ready());
        assert!(state.uptime_secs() >= 0.0);
    }

    #[test]
    fn swap_replaces_engine_and_restores_readiness() {
        let state = AppState::new(tiny_model(1.0), None, 1, Obs::null());
        let before = state.engine().predict(1, 1).unwrap();
        let old_fp = state.meta().fingerprint;
        // A snapshot held across the swap still answers from the old model.
        let held = state.engine();
        let v = state.swap_model(tiny_model(2.0), Some("new.dcm"));
        assert!(state.is_ready());
        assert_eq!(v, 2);
        assert_eq!(state.meta().version, 2);
        assert_ne!(state.meta().fingerprint, old_fp);
        let after = state.engine().predict(1, 1).unwrap();
        assert!((after - 2.0 * before).abs() < 1e-9);
        assert_eq!(held.predict(1, 1).unwrap(), before);
        assert_eq!(state.swap_model(tiny_model(3.0), None), 3);
    }

    /// The engine and metadata of one snapshot always describe the same
    /// model, even while another thread swaps continuously.
    #[test]
    fn installed_snapshot_is_never_torn() {
        let state = Arc::new(AppState::new(tiny_model(1.0), None, 1, Obs::null()));
        let stop = Arc::new(AtomicBool::new(false));
        let swapper = {
            let state = state.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut fill = 2.0;
                while !stop.load(Ordering::Relaxed) {
                    state.swap_model(tiny_model(fill), None);
                    fill += 1.0;
                }
            })
        };
        for _ in 0..2_000 {
            let snap = state.installed();
            let predicted = snap.engine.predict(0, 1).unwrap(); // fill * 1.0
            let expected_fp = format!("{:016x}", snap.engine.model().matrix().fingerprint());
            assert_eq!(snap.meta.fingerprint, expected_fp);
            assert!(predicted >= 1.0);
        }
        stop.store(true, Ordering::Relaxed);
        swapper.join().unwrap();
    }

    #[test]
    fn readiness_is_togglable() {
        let state = AppState::new(tiny_model(1.0), None, 1, Obs::null());
        state.set_ready(false);
        assert!(!state.is_ready());
        state.set_ready(true);
        assert!(state.is_ready());
    }

    #[test]
    fn gauges_and_status_fragments_round_trip() {
        let state = AppState::new(tiny_model(1.0), None, 1, Obs::null());
        assert!(state.gauges().is_empty());
        state.set_gauge("miner_events_total", 41);
        state.set_gauge("miner_events_total", 42);
        state.set_gauge("miner_generation", 3);
        let g = state.gauges();
        assert_eq!(g.get("miner_events_total"), Some(&42));
        assert_eq!(g.get("miner_generation"), Some(&3));

        state.set_status_fragment("miner", "{\"state\": \"running\"}");
        let s = state.status_fragments();
        assert_eq!(
            s.get("miner").map(String::as_str),
            Some("{\"state\": \"running\"}")
        );
    }
}
