//! Shared per-server state: the engine slot, readiness, and model metadata.
//!
//! The engine sits behind an `RwLock<Arc<QueryEngine>>` so request workers
//! take a cheap read lock, clone the `Arc`, and answer from an immutable
//! snapshot — a concurrent [`swap_model`](AppState::swap_model) never
//! blocks in-flight queries, it only redirects *future* ones. Readiness is
//! a separate atomic that flips `false` for the duration of a swap, which
//! is exactly what `GET /readyz` (and a load balancer probing it) wants to
//! observe.

use crate::metrics::ServerMetrics;
use dc_obs::Obs;
use dc_serve::{ModelRegistry, QueryEngine, ServeModel};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Identity of the model currently being served; the `GET /v1/model` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelMeta {
    /// Where the artifact was loaded from, when it came from a file.
    pub path: Option<String>,
    pub rows: usize,
    pub cols: usize,
    pub clusters: usize,
    pub specified_cells: usize,
    pub avg_residue: f64,
    /// FNV-1a content fingerprint of the served matrix, as fixed-width hex
    /// (the same fingerprint checkpoint resume validates against).
    pub fingerprint: String,
}

impl ModelMeta {
    pub fn of(model: &ServeModel, path: Option<&str>) -> ModelMeta {
        ModelMeta {
            path: path.map(str::to_string),
            rows: model.matrix().rows(),
            cols: model.matrix().cols(),
            clusters: model.k(),
            specified_cells: model.matrix().specified_count(),
            avg_residue: model.avg_residue(),
            fingerprint: format!("{:016x}", model.matrix().fingerprint()),
        }
    }
}

fn read_poisoned<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Everything request handlers share. One per server, behind an `Arc`.
pub struct AppState {
    engine: RwLock<Arc<QueryEngine>>,
    meta: RwLock<ModelMeta>,
    ready: AtomicBool,
    started: Instant,
    /// How many worker threads a batch predict may fan out over.
    pub batch_threads: usize,
    pub metrics: ServerMetrics,
    pub obs: Obs,
    /// Named-model registry behind `/v1/models`, when serving started with
    /// one (`serve --models DIR`). The default model keeps `/v1/predict`.
    registry: Option<Arc<ModelRegistry>>,
}

impl AppState {
    pub fn new(model: ServeModel, path: Option<&str>, batch_threads: usize, obs: Obs) -> AppState {
        let meta = ModelMeta::of(&model, path);
        AppState {
            engine: RwLock::new(Arc::new(QueryEngine::new(model))),
            meta: RwLock::new(meta),
            ready: AtomicBool::new(true),
            started: Instant::now(),
            batch_threads: batch_threads.max(1),
            metrics: ServerMetrics::new(),
            obs,
            registry: None,
        }
    }

    /// Attaches a model registry, enabling `GET /v1/models` and
    /// `POST /v1/models/<name>/predict` alongside the default model.
    pub fn with_registry(mut self, registry: Arc<ModelRegistry>) -> AppState {
        self.registry = Some(registry);
        self
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&Arc<ModelRegistry>> {
        self.registry.as_ref()
    }

    /// The engine snapshot a request should answer from.
    pub fn engine(&self) -> Arc<QueryEngine> {
        read_poisoned(&self.engine).clone()
    }

    /// Metadata for the model currently installed.
    pub fn meta(&self) -> ModelMeta {
        read_poisoned(&self.meta).clone()
    }

    /// Whether `/readyz` should answer 200. False during a model swap.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Manually flips readiness (e.g. pre-drain in an orchestrator).
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::Release);
    }

    /// Seconds since the server started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Installs a new model. Readiness drops for the duration of the swap
    /// and recovers afterwards; queries already holding the old engine
    /// snapshot finish unaffected.
    pub fn swap_model(&self, model: ServeModel, path: Option<&str>) {
        self.set_ready(false);
        let meta = ModelMeta::of(&model, path);
        let engine = Arc::new(QueryEngine::new(model));
        *self.engine.write().unwrap_or_else(|e| e.into_inner()) = engine;
        *self.meta.write().unwrap_or_else(|e| e.into_inner()) = meta;
        self.set_ready(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_floc::DeltaCluster;
    use dc_matrix::DataMatrix;

    pub(crate) fn tiny_model(fill: f64) -> ServeModel {
        let mut m = DataMatrix::new(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                m.set(r, c, fill * (r + c) as f64);
            }
        }
        let cluster = DeltaCluster::from_indices(4, 4, 0..4, 0..4);
        ServeModel::new(m, vec![cluster], vec![0.0], 0.0).unwrap()
    }

    #[test]
    fn meta_reports_shape_and_fingerprint() {
        let state = AppState::new(tiny_model(1.0), Some("m.dcm"), 2, Obs::null());
        let meta = state.meta();
        assert_eq!((meta.rows, meta.cols, meta.clusters), (4, 4, 1));
        assert_eq!(meta.path.as_deref(), Some("m.dcm"));
        assert_eq!(meta.fingerprint.len(), 16);
        assert!(state.is_ready());
        assert!(state.uptime_secs() >= 0.0);
    }

    #[test]
    fn swap_replaces_engine_and_restores_readiness() {
        let state = AppState::new(tiny_model(1.0), None, 1, Obs::null());
        let before = state.engine().predict(1, 1).unwrap();
        let old_fp = state.meta().fingerprint;
        // A snapshot held across the swap still answers from the old model.
        let held = state.engine();
        state.swap_model(tiny_model(2.0), Some("new.dcm"));
        assert!(state.is_ready());
        assert_ne!(state.meta().fingerprint, old_fp);
        let after = state.engine().predict(1, 1).unwrap();
        assert!((after - 2.0 * before).abs() < 1e-9);
        assert_eq!(held.predict(1, 1).unwrap(), before);
    }

    #[test]
    fn readiness_is_togglable() {
        let state = AppState::new(tiny_model(1.0), None, 1, Obs::null());
        state.set_ready(false);
        assert!(!state.is_ready());
        state.set_ready(true);
        assert!(state.is_ready());
    }
}
