//! Blocking HTTP/1.1 client machinery: a single persistent connection
//! ([`HttpClient`]) and a production per-host connection pool
//! ([`ClientPool`]).
//!
//! The single-connection client started life as test plumbing; the router
//! tier promoted it: every socket now carries connect/read/write deadlines
//! (an unresponsive peer surfaces as [`ClientError::Timeout`], never a
//! hang), failures are typed, and [`ClientPool`] adds keep-alive reuse,
//! pipelined batch sends over one connection, a hard per-host connection
//! cap (so a many-threaded caller never opens more sockets than a
//! thread-per-connection peer can serve), and `Retry-After`-aware
//! handling of `503 Service Unavailable` — the backpressure signal the
//! dc-net server emits when its queue is full.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Deadlines and pool sizing every client connection applies.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect deadline per resolved address.
    pub connect_timeout: Duration,
    /// Socket read deadline; a stalled response is an error, not a hang.
    pub read_timeout: Duration,
    /// Socket write deadline.
    pub write_timeout: Duration,
    /// Idle keep-alive connections [`ClientPool`] retains per host.
    pub max_idle_per_host: usize,
    /// Hard cap on *total* pool connections per host (in flight + idle).
    /// The dc-net server parks one worker thread per keep-alive
    /// connection, so a client that dials more connections than the peer
    /// has workers starves itself: the excess sockets sit in the peer's
    /// accept queue until a deadline fires. Bounding the pool below the
    /// peer's worker count (`serve` defaults to 4) keeps every connection
    /// servable.
    pub max_conns_per_host: usize,
    /// How long [`ClientPool`] waits for a pooled connection to free up
    /// when the host is at [`max_conns_per_host`](Self::max_conns_per_host)
    /// before giving up with [`ClientError::Timeout`].
    pub checkout_timeout: Duration,
    /// How many times [`ClientPool::request_retrying`] retries a 503.
    pub retries_503: u32,
    /// Cap on a server-suggested `Retry-After` pause (a hostile or confused
    /// peer cannot park the client for minutes).
    pub max_retry_pause: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_idle_per_host: 4,
            max_conns_per_host: 3,
            checkout_timeout: Duration::from_secs(10),
            retries_503: 1,
            max_retry_pause: Duration::from_secs(1),
        }
    }
}

/// Why a client call failed. Transport problems keep their `io::Error`
/// source; protocol problems say what byte-level contract broke.
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed or exceeded [`ClientConfig::connect_timeout`].
    Connect(io::Error),
    /// The read or write deadline passed mid-request.
    Timeout,
    /// The peer closed the connection before or during a response.
    Closed,
    /// The transport failed mid-request/response.
    Io(io::Error),
    /// The peer's bytes did not parse as an HTTP/1.1 response.
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::Closed => write!(f, "connection closed by peer"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect(e) | ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClientError> for io::Error {
    fn from(e: ClientError) -> io::Error {
        match e {
            ClientError::Connect(e) | ClientError::Io(e) => e,
            ClientError::Timeout => io::Error::new(io::ErrorKind::TimedOut, "request timed out"),
            ClientError::Closed => {
                io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed by peer")
            }
            ClientError::Malformed(m) => io::Error::new(io::ErrorKind::InvalidData, m),
        }
    }
}

/// Folds a transport error into the typed vocabulary: timeouts and EOFs
/// get their own variants so callers can distinguish "peer slow" from
/// "peer gone" from "wire garbage".
fn classify_io(e: io::Error) -> ClientError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout,
        io::ErrorKind::UnexpectedEof => ClientError::Closed,
        _ => ClientError::Io(e),
    }
}

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    /// Header pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The `Retry-After` pause a 503 suggested, if present and parseable
    /// (delay-seconds form only; HTTP-date is not worth implementing).
    pub fn retry_after(&self) -> Option<Duration> {
        self.header("retry-after")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_secs)
    }

    /// Whether the server asked for this connection to close.
    fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|c| c.eq_ignore_ascii_case("close"))
    }
}

/// A persistent connection. Drop to close.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the previous response (pipelined tail).
    buf: Vec<u8>,
    host: String,
}

impl HttpClient {
    /// Connects with the default deadlines. Kept `io::Result` for the
    /// existing test/bench callers; [`HttpClient::connect_with`] is the
    /// typed entry point.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> io::Result<HttpClient> {
        Self::connect_with(addr, &ClientConfig::default()).map_err(io::Error::from)
    }

    /// Connects with explicit deadlines. Every address the name resolves
    /// to is tried under [`ClientConfig::connect_timeout`]; the socket
    /// gets `TCP_NODELAY` plus the read/write deadlines, so no later call
    /// can block forever on an unresponsive peer.
    pub fn connect_with(
        addr: impl ToSocketAddrs + std::fmt::Display,
        config: &ClientConfig,
    ) -> Result<HttpClient, ClientError> {
        let host = addr.to_string();
        let addrs: Vec<_> = addr
            .to_socket_addrs()
            .map_err(ClientError::Connect)?
            .collect();
        let mut last = None;
        let mut stream = None;
        for a in &addrs {
            match TcpStream::connect_timeout(a, config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let stream = stream.ok_or_else(|| {
            ClientError::Connect(last.unwrap_or_else(|| {
                io::Error::new(
                    io::ErrorKind::AddrNotAvailable,
                    format!("{host} resolves to nothing"),
                )
            }))
        })?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(config.read_timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(config.write_timeout))
            .map_err(ClientError::Io)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
            host,
        })
    }

    /// Sends one request without waiting for the response — the pipelining
    /// primitive. Follow with one [`read_response`](Self::read_response)
    /// per queued request, in order.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<()> {
        self.send_typed(method, path, body).map_err(io::Error::from)
    }

    fn send_typed(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(), ClientError> {
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n",
            self.host,
            body.len()
        );
        let mut frame = head.into_bytes();
        frame.extend_from_slice(body);
        self.stream.write_all(&frame).map_err(classify_io)?;
        self.stream.flush().map_err(classify_io)
    }

    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        self.read_response_typed().map_err(io::Error::from)
    }

    fn read_response_typed(&mut self) -> Result<ClientResponse, ClientError> {
        read_response_typed_from(&mut self.stream, &mut self.buf)
    }

    /// Request + response in one call.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        self.request_typed(method, path, body)
            .map_err(io::Error::from)
    }

    fn request_typed(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, ClientError> {
        self.send_typed(method, path, body)?;
        self.read_response_typed()
    }

    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    pub fn post_json(&mut self, path: &str, json: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(json.as_bytes()))
    }

    /// Pipelines every request over this one connection — all sends first,
    /// then all responses in order. One round of syscalls per direction
    /// instead of one per request, which is what makes small-batch
    /// fan-out cheap.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, &str, Option<&[u8]>)],
    ) -> Result<Vec<ClientResponse>, ClientError> {
        let mut frame = Vec::new();
        for (method, path, body) in requests {
            let body = body.unwrap_or(&[]);
            frame.extend_from_slice(
                format!(
                    "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n",
                    self.host,
                    body.len()
                )
                .as_bytes(),
            );
            frame.extend_from_slice(body);
        }
        self.stream.write_all(&frame).map_err(classify_io)?;
        self.stream.flush().map_err(classify_io)?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            responses.push(self.read_response_typed()?);
        }
        Ok(responses)
    }

    /// Writes raw bytes straight to the socket — the chaos tests use this
    /// to deliver malformed or truncated requests.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Half-closes the write side, signalling EOF to the server while the
    /// response (if any) can still be read.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Hands over the raw stream (tests that want to read to EOF).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}

/// Per-host pool bookkeeping: parked idle connections plus the count of
/// every live connection (idle *and* checked out) for the hard cap.
#[derive(Default)]
struct HostConns {
    idle: Vec<HttpClient>,
    total: usize,
}

/// A per-host pool of keep-alive connections with a hard connection cap.
///
/// `request` checks out an idle connection (or dials a new one), runs the
/// exchange, and returns the connection to the pool unless the response
/// asked to close or the exchange failed. A reused connection that turns
/// out to be stale — the server closed it between requests — is silently
/// replaced by one fresh dial, so callers never see keep-alive races.
///
/// At most [`ClientConfig::max_conns_per_host`] connections exist per host
/// (in flight + idle); when the cap is reached, callers block up to
/// [`ClientConfig::checkout_timeout`] for a connection to free up. The cap
/// is what keeps a many-threaded caller from starving itself against a
/// thread-per-connection peer (see the config field docs).
pub struct ClientPool {
    config: ClientConfig,
    hosts: Mutex<HashMap<String, HostConns>>,
    freed: Condvar,
}

/// A connection slot held against a host's cap. Exactly one of the
/// `finish_*` methods (or `Drop`, on error paths) releases it.
struct Slot<'p> {
    pool: &'p ClientPool,
    host: &'p str,
    held: bool,
}

impl Slot<'_> {
    /// Parks a still-healthy connection for reuse, keeping or releasing
    /// the slot depending on whether the idle shelf has room.
    fn finish_park(mut self, conn: HttpClient) {
        self.held = false;
        let mut hosts = self.pool.lock();
        let entry = hosts.entry(self.host.to_string()).or_default();
        if entry.idle.len() < self.pool.config.max_idle_per_host {
            entry.idle.push(conn);
        } else {
            entry.total = entry.total.saturating_sub(1);
        }
        drop(hosts);
        // Either way a caller can now make progress: an idle connection
        // appeared, or the cap gained headroom.
        self.pool.freed.notify_one();
    }

    /// Releases the slot without parking (connection consumed or failed).
    fn finish_drop(mut self) {
        self.held = false;
        self.pool.release_slot(self.host);
    }
}

impl Drop for Slot<'_> {
    fn drop(&mut self) {
        if self.held {
            self.pool.release_slot(self.host);
        }
    }
}

impl ClientPool {
    pub fn new(config: ClientConfig) -> ClientPool {
        ClientPool {
            config,
            hosts: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Idle connections currently parked for `host` (tests/metrics).
    pub fn idle_count(&self, host: &str) -> usize {
        self.lock().get(host).map_or(0, |h| h.idle.len())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, HostConns>> {
        self.hosts.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn release_slot(&self, host: &str) {
        let mut hosts = self.lock();
        if let Some(entry) = hosts.get_mut(host) {
            entry.total = entry.total.saturating_sub(1);
        }
        drop(hosts);
        self.freed.notify_one();
    }

    /// Claims a connection slot for `host`, blocking while the host is at
    /// its cap. Returns the slot plus an idle connection to reuse, or
    /// `None` when the caller should dial fresh (under the claimed slot).
    fn acquire<'p>(&'p self, host: &'p str) -> Result<(Slot<'p>, Option<HttpClient>), ClientError> {
        let deadline = Instant::now() + self.config.checkout_timeout;
        let mut hosts = self.lock();
        loop {
            let entry = hosts.entry(host.to_string()).or_default();
            if let Some(conn) = entry.idle.pop() {
                return Ok((
                    Slot {
                        pool: self,
                        host,
                        held: true,
                    },
                    Some(conn),
                ));
            }
            if entry.total < self.config.max_conns_per_host.max(1) {
                entry.total += 1;
                return Ok((
                    Slot {
                        pool: self,
                        host,
                        held: true,
                    },
                    None,
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::Timeout);
            }
            hosts = self
                .freed
                .wait_timeout(hosts, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Drops every idle connection (tests; also useful after reconfiguring
    /// a fleet, when old addresses should not linger).
    pub fn clear(&self) {
        let mut hosts = self.lock();
        for entry in hosts.values_mut() {
            entry.total = entry.total.saturating_sub(entry.idle.len());
            entry.idle.clear();
        }
        drop(hosts);
        self.freed.notify_all();
    }

    /// One request/response exchange against `host`, with pooled reuse.
    ///
    /// A failure on a *reused* connection is retried once on a fresh dial
    /// (the stale-keep-alive race); a failure on a fresh connection is
    /// returned as-is.
    pub fn request(
        &self,
        host: &str,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, ClientError> {
        let (slot, reused) = self.acquire(host)?;
        if let Some(mut conn) = reused {
            match conn.request_typed(method, path, body) {
                Ok(resp) => {
                    if resp.wants_close() {
                        slot.finish_drop();
                    } else {
                        slot.finish_park(conn);
                    }
                    return Ok(resp);
                }
                // Stale reuse: fall through to one fresh dial below,
                // still under the same slot.
                Err(ClientError::Closed | ClientError::Io(_) | ClientError::Timeout) => {}
                Err(e) => {
                    slot.finish_drop();
                    return Err(e);
                }
            }
        }
        let mut conn = match HttpClient::connect_with(host, &self.config) {
            Ok(conn) => conn,
            Err(e) => {
                slot.finish_drop();
                return Err(e);
            }
        };
        match conn.request_typed(method, path, body) {
            Ok(resp) => {
                if resp.wants_close() {
                    slot.finish_drop();
                } else {
                    slot.finish_park(conn);
                }
                Ok(resp)
            }
            Err(e) => {
                slot.finish_drop();
                Err(e)
            }
        }
    }

    pub fn get(&self, host: &str, path: &str) -> Result<ClientResponse, ClientError> {
        self.request(host, "GET", path, None)
    }

    pub fn post_json(
        &self,
        host: &str,
        path: &str,
        json: &str,
    ) -> Result<ClientResponse, ClientError> {
        self.request(host, "POST", path, Some(json.as_bytes()))
    }

    /// Like [`request`](Self::request), but honors the server's
    /// backpressure protocol: a `503` with `Retry-After` is retried up to
    /// [`ClientConfig::retries_503`] times after the suggested pause
    /// (capped by [`ClientConfig::max_retry_pause`]).
    pub fn request_retrying(
        &self,
        host: &str,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, ClientError> {
        let mut attempts = 0;
        loop {
            let resp = self.request(host, method, path, body)?;
            if resp.status != 503 || attempts >= self.config.retries_503 {
                return Ok(resp);
            }
            let pause = resp
                .retry_after()
                .unwrap_or(Duration::from_millis(50))
                .min(self.config.max_retry_pause);
            std::thread::sleep(pause);
            attempts += 1;
        }
    }

    /// Sends a batch of same-host requests pipelined over one pooled
    /// connection and returns the responses in request order.
    pub fn pipeline(
        &self,
        host: &str,
        requests: &[(&str, &str, Option<&[u8]>)],
    ) -> Result<Vec<ClientResponse>, ClientError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let (slot, reused) = self.acquire(host)?;
        if let Some(mut conn) = reused {
            match conn.pipeline(requests) {
                Ok(resps) => {
                    if resps.last().is_some_and(ClientResponse::wants_close) {
                        slot.finish_drop();
                    } else {
                        slot.finish_park(conn);
                    }
                    return Ok(resps);
                }
                Err(ClientError::Closed | ClientError::Io(_) | ClientError::Timeout) => {}
                Err(e) => {
                    slot.finish_drop();
                    return Err(e);
                }
            }
        }
        let mut conn = match HttpClient::connect_with(host, &self.config) {
            Ok(conn) => conn,
            Err(e) => {
                slot.finish_drop();
                return Err(e);
            }
        };
        match conn.pipeline(requests) {
            Ok(resps) => {
                if resps.last().is_some_and(ClientResponse::wants_close) {
                    slot.finish_drop();
                } else {
                    slot.finish_park(conn);
                }
                Ok(resps)
            }
            Err(e) => {
                slot.finish_drop();
                Err(e)
            }
        }
    }
}

fn malformed(msg: String) -> ClientError {
    ClientError::Malformed(msg)
}

/// Reads one response from `r`, honoring bytes left over in `buf` from a
/// previous read and stashing any pipelined tail back into it. Kept
/// `io::Result` for existing callers; errors classify through the typed
/// path internally.
pub fn read_response_from<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<ClientResponse> {
    read_response_typed_from(r, buf).map_err(io::Error::from)
}

fn read_response_typed_from<R: Read>(
    r: &mut R,
    buf: &mut Vec<u8>,
) -> Result<ClientResponse, ClientError> {
    let head_end = loop {
        if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break end;
        }
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk).map_err(classify_io)? {
            0 => return Err(ClientError::Closed),
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| malformed("response head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let (proto, code) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if !proto.starts_with("HTTP/1.") {
        return Err(malformed(format!("bad status line {status_line:?}")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| malformed(format!("bad status code {code:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let body_len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);

    let body_start = head_end + 4;
    while buf.len() < body_start + body_len {
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk).map_err(classify_io)? {
            0 => return Err(malformed("connection closed mid-body".into())),
            n => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let body = buf[body_start..body_start + body_len].to_vec();
    buf.drain(..body_start + body_len);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_body() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
                    content-length: 11\r\n\r\n{\"ok\":true}";
        let mut buf = Vec::new();
        let resp = read_response_from(&mut &raw[..], &mut buf).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_str(), "{\"ok\":true}");
        assert!(buf.is_empty());
    }

    #[test]
    fn pipelined_responses_come_out_in_order() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 1\r\n\r\nA\
                    HTTP/1.1 404 Not Found\r\ncontent-length: 1\r\n\r\nB";
        let mut cursor = &raw[..];
        let mut buf = Vec::new();
        let first = read_response_from(&mut cursor, &mut buf).unwrap();
        let second = read_response_from(&mut cursor, &mut buf).unwrap();
        assert_eq!((first.status, first.body_str().as_str()), (200, "A"));
        assert_eq!((second.status, second.body_str().as_str()), (404, "B"));
    }

    #[test]
    fn truncation_is_an_error_not_a_hang() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 50\r\n\r\nshort";
        let mut buf = Vec::new();
        let err = read_response_from(&mut &raw[..], &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn typed_errors_classify_transport_failures() {
        let raw: &[u8] = b"";
        let mut buf = Vec::new();
        let err = read_response_typed_from(&mut &raw[..], &mut buf).unwrap_err();
        assert!(matches!(err, ClientError::Closed), "{err:?}");

        struct Stalled;
        impl Read for Stalled {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::from(io::ErrorKind::TimedOut))
            }
        }
        let err = read_response_typed_from(&mut Stalled, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, ClientError::Timeout), "{err:?}");

        // The io::Error conversions keep the kinds distinguishable.
        assert_eq!(
            io::Error::from(ClientError::Timeout).kind(),
            io::ErrorKind::TimedOut
        );
        assert_eq!(
            io::Error::from(ClientError::Closed).kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn retry_after_parses_delay_seconds() {
        let resp = ClientResponse {
            status: 503,
            headers: vec![("retry-after".into(), "2".into())],
            body: Vec::new(),
        };
        assert_eq!(resp.retry_after(), Some(Duration::from_secs(2)));
        let resp = ClientResponse {
            status: 503,
            headers: vec![("retry-after".into(), "soon".into())],
            body: Vec::new(),
        };
        assert_eq!(resp.retry_after(), None);
    }

    /// A single-threaded HTTP/1.1 echo server: accepts one connection at a
    /// time and serves it until close. Exactly the shape that starves an
    /// uncapped pool — a second pooled connection would never be accepted
    /// while the first stays keep-alive.
    fn one_at_a_time_server() -> (std::net::SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut served_conns = 0usize;
            // Serve until 300 ms pass with no new connection.
            listener.set_nonblocking(true).unwrap();
            let mut last = std::time::Instant::now();
            loop {
                match listener.accept() {
                    Ok((mut conn, _)) => {
                        served_conns += 1;
                        last = std::time::Instant::now();
                        conn.set_read_timeout(Some(Duration::from_millis(200)))
                            .unwrap();
                        let mut buf = [0u8; 4096];
                        while let Ok(n) = conn.read(&mut buf) {
                            if n == 0 {
                                break;
                            }
                            let body = b"ok";
                            let resp = format!(
                                "HTTP/1.1 200 OK\r\ncontent-length: {}\r\n\r\n",
                                body.len()
                            );
                            conn.write_all(resp.as_bytes()).unwrap();
                            conn.write_all(body).unwrap();
                        }
                    }
                    Err(_) => {
                        if last.elapsed() > Duration::from_millis(300) {
                            return served_conns;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn capped_pool_shares_one_connection_across_threads() {
        let (addr, server) = one_at_a_time_server();
        let pool = std::sync::Arc::new(ClientPool::new(ClientConfig {
            max_conns_per_host: 1,
            checkout_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        }));
        let host = addr.to_string();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                let host = host.clone();
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        let resp = pool.get(&host, "/x").expect("capped request");
                        assert_eq!(resp.status, 200);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        // 20 requests from 4 threads all rode the single permitted
        // connection; a server that can only accept one at a time never
        // saw a second concurrent dial.
        assert_eq!(pool.idle_count(&host), 1);
        drop(pool);
        let conns = server.join().unwrap();
        assert_eq!(conns, 1, "cap of 1 must mean exactly one connection");
    }

    #[test]
    fn exhausted_pool_times_out_with_typed_error() {
        // A server that accepts but never responds: the first request
        // parks the only slot until its read deadline, so a second
        // caller's checkout must give up quickly with Timeout.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Exactly one accept: the cap means the timed-out second
            // caller never even dials.
            let held = listener.accept();
            std::thread::sleep(Duration::from_millis(500));
            drop(held);
        });
        let pool = std::sync::Arc::new(ClientPool::new(ClientConfig {
            max_conns_per_host: 1,
            checkout_timeout: Duration::from_millis(50),
            read_timeout: Duration::from_millis(400),
            ..ClientConfig::default()
        }));
        let host = addr.to_string();
        let slow = {
            let pool = pool.clone();
            let host = host.clone();
            std::thread::spawn(move || pool.get(&host, "/slow"))
        };
        std::thread::sleep(Duration::from_millis(100)); // slot now held
        let started = std::time::Instant::now();
        let err = pool.get(&host, "/x").unwrap_err();
        assert!(matches!(err, ClientError::Timeout), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "checkout timeout did not bound the wait"
        );
        assert!(slow.join().unwrap().is_err(), "silent peer must error");
        server.join().unwrap();
    }

    #[test]
    fn unresponsive_peer_times_out_instead_of_hanging() {
        // A listener that accepts and then stays silent: without the read
        // deadline, read_response would block forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(conn);
        });
        let config = ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let started = std::time::Instant::now();
        let mut client = HttpClient::connect_with(addr, &config).unwrap();
        let err = client.request_typed("GET", "/healthz", None).unwrap_err();
        assert!(matches!(err, ClientError::Timeout), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "read did not honor its deadline"
        );
        server.join().unwrap();
    }
}
