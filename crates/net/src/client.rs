//! A minimal blocking HTTP/1.1 client: keep-alive, pipelining, nothing
//! else. Exists so the integration tests, the `http_bench` load generator,
//! and the serving example can talk to the server without external crates —
//! it is *not* a general-purpose client.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    /// Header pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent connection. Drop to close.
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the previous response (pipelined tail).
    buf: Vec<u8>,
    host: String,
}

impl HttpClient {
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> io::Result<HttpClient> {
        let host = addr.to_string();
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
            host,
        })
    }

    /// Sends one request without waiting for the response — the pipelining
    /// primitive. Follow with one [`read_response`](Self::read_response)
    /// per queued request, in order.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<()> {
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n",
            self.host,
            body.len()
        );
        let mut frame = head.into_bytes();
        frame.extend_from_slice(body);
        self.stream.write_all(&frame)?;
        self.stream.flush()
    }

    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        read_response_from(&mut self.stream, &mut self.buf)
    }

    /// Request + response in one call.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        self.send(method, path, body)?;
        self.read_response()
    }

    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    pub fn post_json(&mut self, path: &str, json: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(json.as_bytes()))
    }

    /// Writes raw bytes straight to the socket — the chaos tests use this
    /// to deliver malformed or truncated requests.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Half-closes the write side, signalling EOF to the server while the
    /// response (if any) can still be read.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Hands over the raw stream (tests that want to read to EOF).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads one response from `r`, honoring bytes left over in `buf` from a
/// previous read and stashing any pipelined tail back into it.
pub fn read_response_from<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<ClientResponse> {
    let head_end = loop {
        if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break end;
        }
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk)? {
            0 => return Err(bad("connection closed before response head".into())),
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| bad("response head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let (proto, code) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if !proto.starts_with("HTTP/1.") {
        return Err(bad(format!("bad status line {status_line:?}")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| bad(format!("bad status code {code:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let body_len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);

    let body_start = head_end + 4;
    while buf.len() < body_start + body_len {
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk)? {
            0 => return Err(bad("connection closed mid-body".into())),
            n => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let body = buf[body_start..body_start + body_len].to_vec();
    buf.drain(..body_start + body_len);
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_body() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
                    content-length: 11\r\n\r\n{\"ok\":true}";
        let mut buf = Vec::new();
        let resp = read_response_from(&mut &raw[..], &mut buf).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_str(), "{\"ok\":true}");
        assert!(buf.is_empty());
    }

    #[test]
    fn pipelined_responses_come_out_in_order() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 1\r\n\r\nA\
                    HTTP/1.1 404 Not Found\r\ncontent-length: 1\r\n\r\nB";
        let mut cursor = &raw[..];
        let mut buf = Vec::new();
        let first = read_response_from(&mut cursor, &mut buf).unwrap();
        let second = read_response_from(&mut cursor, &mut buf).unwrap();
        assert_eq!((first.status, first.body_str().as_str()), (200, "A"));
        assert_eq!((second.status, second.body_str().as_str()), (404, "B"));
    }

    #[test]
    fn truncation_is_an_error_not_a_hang() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 50\r\n\r\nshort";
        let mut buf = Vec::new();
        let err = read_response_from(&mut &raw[..], &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
