//! The TCP accept loop, connection lifecycle, and graceful shutdown.
//!
//! Data path: `TcpListener` → accept thread → [`BoundedQueue`] →
//! worker pool → [`HttpReader`] keep-alive loop → [`RequestHandler`] →
//! whatever the handler fronts (a `QueryEngine` for [`AppState`], a shard
//! fleet for `dc-router`). Backpressure lives at the queue boundary: a
//! full queue answers `503 Service Unavailable` with `Retry-After: 1` at
//! accept time and closes, so memory stays bounded no matter how fast
//! clients arrive.
//!
//! Shutdown follows the repo-wide `InterruptFlag` pattern: the server
//! watches a shared `AtomicBool` (the CLI passes the SIGINT flag). Once
//! raised, the accept loop stops admitting, the queue closes, queued
//! connections with bytes already in flight are answered, idle keep-alive
//! connections close cleanly, and [`ServerHandle::shutdown`] bounds the
//! whole drain with a deadline — stragglers are detached, never leaked
//! into a hang.

use crate::api;
use crate::http::{HttpReader, Limits, Method, RecvError, Request, Response};
use crate::metrics::ServerMetrics;
use crate::pool::{BoundedQueue, PushError, WorkerPool};
use crate::state::AppState;
use dc_obs::{Field, Obs};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the serving machinery needs from an application: route a request,
/// and expose the metrics/observability sinks the connection loop reports
/// into. [`AppState`] implements this for the single-model query API;
/// `dc-router` implements it for the scatter-gather front tier — both ride
/// the same accept loop, bounded queue, and drain logic.
pub trait RequestHandler: Send + Sync + 'static {
    /// Routes one request. Must not panic on hostile input.
    fn handle(&self, req: &Request) -> Response;

    /// The per-server request metrics the connection loop records into.
    fn metrics(&self) -> &ServerMetrics;

    /// The observability handle `net.request` events report through.
    fn obs(&self) -> &Obs;

    /// How many predictions `resp` answered for `req`, for the predictions
    /// counter. Defaults to none.
    fn predictions_in(&self, _req: &Request, _resp: &Response) -> u64 {
        0
    }
}

impl RequestHandler for AppState {
    fn handle(&self, req: &Request) -> Response {
        api::handle(self, req)
    }

    fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    fn obs(&self) -> &Obs {
        &self.obs
    }

    fn predictions_in(&self, req: &Request, resp: &Response) -> u64 {
        api::predictions_in(req, resp)
    }
}

/// Everything tunable about one server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Accepted connections that may wait for a worker before 503s start.
    pub queue_depth: usize,
    /// Per-connection parser limits and deadlines.
    pub limits: Limits,
    /// Grace period [`ServerHandle::shutdown`] grants the drain.
    pub shutdown_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            queue_depth: 128,
            limits: Limits::default(),
            shutdown_grace: Duration::from_secs(5),
        }
    }
}

/// A running server. Dropping the handle signals shutdown but does not
/// wait; call [`shutdown`](ServerHandle::shutdown) for the bounded drain.
///
/// Generic over the handler so the router tier reuses the machinery; the
/// default keeps existing `ServerHandle` (= `ServerHandle<AppState>`)
/// signatures compiling unchanged.
pub struct ServerHandle<H: RequestHandler = AppState> {
    addr: SocketAddr,
    state: Arc<H>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    queue: Arc<BoundedQueue<TcpStream>>,
    grace: Duration,
}

impl<H: RequestHandler> ServerHandle<H> {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> Arc<H> {
        self.state.clone()
    }

    /// The shutdown flag; raising it from anywhere (e.g. a SIGINT handler)
    /// starts the drain.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Signals shutdown and waits for the drain: accept loop exits, queued
    /// connections are answered, workers finish. Returns `true` when the
    /// drain completed within the grace period (`false` = stragglers were
    /// detached).
    pub fn shutdown(mut self) -> bool {
        let started = Instant::now();
        self.stop.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.queue.close();
        let drained = match self.pool.take() {
            Some(pool) => pool.join_with_deadline(self.grace),
            None => true,
        };
        if self.state.obs().enabled() {
            self.state.obs().emit(
                "net.shutdown",
                &[
                    Field::new("drained", drained),
                    Field::new("elapsed_millis", started.elapsed().as_millis() as u64),
                ],
            );
        }
        drained
    }

    /// Blocks until the stop flag is raised, then drains. The `serve` CLI
    /// command parks here while workers do everything.
    pub fn wait(self) -> bool {
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown()
    }
}

impl<H: RequestHandler> Drop for ServerHandle<H> {
    fn drop(&mut self) {
        // Best-effort signal so threads don't accept forever; no join here
        // (shutdown() consumes self when the caller wants the drain).
        self.stop.store(true, Ordering::Release);
        self.queue.close();
    }
}

/// Binds and starts serving the single-model query API. Requests are
/// answered from `state`; shutdown triggers when `stop` (typically the
/// process SIGINT flag) goes true.
pub fn serve(
    config: ServerConfig,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
) -> io::Result<ServerHandle> {
    serve_handler(config, state, stop)
}

/// Binds and starts serving an arbitrary [`RequestHandler`] — the same
/// accept loop, bounded queue, worker pool, and graceful drain `serve`
/// gives [`AppState`].
pub fn serve_handler<H: RequestHandler>(
    config: ServerConfig,
    state: Arc<H>,
    stop: Arc<AtomicBool>,
) -> io::Result<ServerHandle<H>> {
    let listener = TcpListener::bind(&config.addr)?;
    // Nonblocking accept + short sleeps keeps the loop responsive to the
    // stop flag without platform polling APIs.
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let queue: Arc<BoundedQueue<TcpStream>> = BoundedQueue::new(config.queue_depth);
    let limits = config.limits.clone();
    let pool = {
        let state = state.clone();
        let stop = stop.clone();
        WorkerPool::spawn(
            queue.clone(),
            config.threads,
            "dc-net-worker",
            move |conn| {
                handle_connection(&*state, conn, &limits, &stop);
            },
        )
    };

    let accept = {
        let state = state.clone();
        let stop = stop.clone();
        let queue = queue.clone();
        let write_timeout = config.limits.write_timeout;
        std::thread::Builder::new()
            .name("dc-net-accept".to_string())
            .spawn(move || accept_loop(listener, queue, state, stop, write_timeout))?
    };

    if state.obs().enabled() {
        let addr_text = addr.to_string();
        state.obs().emit(
            "net.listen",
            &[
                Field::new("addr", addr_text.as_str()),
                Field::new("threads", config.threads as u64),
                Field::new("queue_depth", config.queue_depth as u64),
            ],
        );
    }

    Ok(ServerHandle {
        addr,
        state,
        stop,
        accept: Some(accept),
        pool: Some(pool),
        queue,
        grace: config.shutdown_grace,
    })
}

fn accept_loop<H: RequestHandler>(
    listener: TcpListener,
    queue: Arc<BoundedQueue<TcpStream>>,
    state: Arc<H>,
    stop: Arc<AtomicBool>,
    write_timeout: Duration,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((conn, _peer)) => match queue.try_push(conn) {
                Ok(()) => {}
                Err(PushError::Full(conn)) | Err(PushError::Closed(conn)) => {
                    reject(conn, &*state, write_timeout);
                }
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept errors (e.g. EMFILE); back off briefly
                // rather than spinning or dying.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    // Listener drops here: new connections are refused at the TCP level
    // while queued ones drain.
}

/// Answers a connection the queue refused: 503 + Retry-After, then close.
fn reject<H: RequestHandler>(mut conn: TcpStream, state: &H, write_timeout: Duration) {
    state.metrics().record_rejected(state.obs());
    let _ = conn.set_write_timeout(Some(write_timeout));
    let resp = crate::http::Response::error(503, "server is at capacity, retry shortly");
    let _ = resp.write_to(&mut conn, false, false);
}

/// Serves one connection to completion: keep-alive loop, typed error
/// responses, metrics, and the `net.request` event per answered request.
fn handle_connection<H: RequestHandler>(
    state: &H,
    conn: TcpStream,
    limits: &Limits,
    stop: &AtomicBool,
) {
    state.metrics().connection_opened();
    serve_connection(state, conn, limits, stop);
    state.metrics().connection_closed();
}

fn serve_connection<H: RequestHandler>(
    state: &H,
    conn: TcpStream,
    limits: &Limits,
    stop: &AtomicBool,
) {
    // Accepted sockets must block with a short poll slice so reads notice
    // deadlines and the stop flag (see HttpReader docs). Nagle would add
    // whole milliseconds to small keep-alive responses, so it goes off.
    let _ = conn.set_nodelay(true);
    if conn.set_nonblocking(false).is_err()
        || conn
            .set_read_timeout(Some(HttpReader::<TcpStream>::POLL_SLICE))
            .is_err()
        || conn.set_write_timeout(Some(limits.write_timeout)).is_err()
    {
        return;
    }
    let mut writer = match conn.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = HttpReader::new(conn, limits.clone());

    loop {
        match reader.next_request(Some(stop)) {
            Ok(req) => {
                let started = Instant::now();
                let resp = state.handle(&req);
                let predictions = state.predictions_in(&req, &resp);
                // Stop renewing keep-alive once shutdown begins so drains
                // terminate instead of waiting out idle timeouts.
                let keep = req.keep_alive && !stop.load(Ordering::Acquire);
                let head_only = req.method == Method::Head;
                let wrote = resp.write_to(&mut writer, keep, head_only);
                state.metrics().record_request(
                    state.obs(),
                    req.method.as_str(),
                    &req.path,
                    resp.status,
                    started.elapsed(),
                    predictions,
                );
                if wrote.is_err() || !keep {
                    return;
                }
            }
            Err(err) => {
                if let Some(resp) = err.response() {
                    let _ = resp.write_to(&mut writer, false, false);
                    state.metrics().record_request(
                        state.obs(),
                        "-",
                        "-",
                        resp.status,
                        Duration::ZERO,
                        0,
                    );
                } else if matches!(err, RecvError::Io(_)) && state.obs().enabled() {
                    let text = err.to_string();
                    state
                        .obs()
                        .emit("net.conn_error", &[Field::new("error", text.as_str())]);
                }
                return;
            }
        }
    }
}
