//! Chaos suite: drives the HTTP parser and a live server through
//! `dc-fault` wrappers and raw-socket abuse. The contract under test:
//! hostile input produces typed 4xx/501 responses or clean closes —
//! never a panic, never a hang, never a leaked connection.

use dc_fault::FaultyReader;
use dc_net::http::{HttpReader, Limits, RecvError};
use dc_net::{serve, AppState, HttpClient, ServerConfig};
use dc_obs::Obs;
use dc_serve::ServeModel;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn tiny_model() -> ServeModel {
    let mut m = dc_matrix::DataMatrix::builder(6, 6).build();
    for r in 0..6 {
        for c in 0..6 {
            m.set(r, c, (r * 2 + c) as f64);
        }
    }
    let cluster = dc_floc::DeltaCluster::from_indices(6, 6, 0..6, 0..6);
    ServeModel::new(m, vec![cluster], vec![0.0], 0.0).unwrap()
}

fn quick_limits() -> Limits {
    Limits {
        idle_timeout: Duration::from_millis(400),
        read_timeout: Duration::from_millis(400),
        ..Limits::default()
    }
}

const VALID: &[u8] =
    b"POST /v1/predict HTTP/1.1\r\ncontent-length: 17\r\n\r\n{\"row\":1,\"col\":2}";

/// Truncating a valid request at every byte offset never panics and maps
/// to exactly Closed (cut before byte 1) or Malformed (cut mid-request).
#[test]
fn truncation_at_every_offset_is_typed() {
    for cut in 0..VALID.len() as u64 {
        let faulty = FaultyReader::new(VALID).truncate_at(cut);
        let mut reader = HttpReader::new(faulty, quick_limits());
        match reader.next_request(None) {
            Err(RecvError::Closed) => assert_eq!(cut, 0, "only cut=0 may look like a clean close"),
            Err(RecvError::Malformed(_)) => {}
            Ok(_) => panic!("truncated at {cut} but parsed a full request"),
            Err(other) => panic!("truncated at {cut}: unexpected {other:?}"),
        }
    }
    // The full request still parses through a fault wrapper with no fault.
    let mut reader = HttpReader::new(FaultyReader::new(VALID), quick_limits());
    assert_eq!(reader.next_request(None).unwrap().body.len(), 17);
}

/// One-byte-at-a-time delivery (pathological fragmentation) still parses.
#[test]
fn short_reads_reassemble_requests() {
    let two = [VALID, b"GET /healthz HTTP/1.1\r\n\r\n"].concat();
    let faulty = FaultyReader::new(&two[..]).short_reads(1);
    let mut reader = HttpReader::new(faulty, quick_limits());
    let first = reader.next_request(None).unwrap();
    assert_eq!(first.body, b"{\"row\":1,\"col\":2}");
    let second = reader.next_request(None).unwrap();
    assert_eq!(second.path, "/healthz");
}

/// Transport errors mid-request surface as Io (silent close), not panics.
#[test]
fn injected_io_errors_are_typed() {
    for at in [0u64, 5, 20, 40] {
        let faulty = FaultyReader::new(VALID).error_at(at);
        let mut reader = HttpReader::new(faulty, quick_limits());
        match reader.next_request(None) {
            Err(RecvError::Io(_)) => {}
            other => panic!("error_at {at}: expected Io, got {other:?}"),
        }
    }
}

/// Bit flips anywhere in the head are at worst a 400/501 — never a panic.
#[test]
fn bit_flips_in_the_head_stay_typed() {
    let head_len = VALID.len() - 17; // body bytes are opaque to the parser
    for offset in 0..head_len as u64 {
        for bit in [0u8, 3, 7] {
            let faulty = FaultyReader::new(VALID).flip_bit(offset, bit);
            let mut reader = HttpReader::new(faulty, quick_limits());
            match reader.next_request(None) {
                // Some flips leave a parseable request (e.g. inside the
                // body-length digits still yielding digits, or a header
                // value). Both outcomes are acceptable; panicking is not.
                Ok(_) => {}
                Err(e) => {
                    // Every error must map to a response or a silent close.
                    let _ = e.response();
                }
            }
        }
    }
}

fn start_server(limits: Limits) -> dc_net::ServerHandle {
    let state = Arc::new(AppState::new(tiny_model(), None, 2, Obs::null()));
    let stop = Arc::new(AtomicBool::new(false));
    serve(
        ServerConfig {
            threads: 2,
            queue_depth: 8,
            limits,
            shutdown_grace: Duration::from_secs(5),
            ..ServerConfig::default()
        },
        state,
        stop,
    )
    .expect("bind loopback")
}

/// Malformed probes against a live server get 400s and the server keeps
/// answering well-formed requests afterwards.
#[test]
fn live_server_survives_malformed_probes() {
    let handle = start_server(quick_limits());
    let addr = handle.addr();

    for garbage in [
        &b"\x00\x01\x02\x03\r\n\r\n"[..],
        b"GET\r\n\r\n",
        b"FLARGLE / HTTP/9.9\r\n\r\n",
        b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
        b"POST /v1/predict HTTP/1.1\r\ncontent-length: oops\r\n\r\n",
    ] {
        let mut client = HttpClient::connect(addr).unwrap();
        client.send_raw(garbage).unwrap();
        let resp = client.read_response().unwrap();
        assert!(
            resp.status == 400 || resp.status == 501,
            "{garbage:?} -> {}",
            resp.status
        );
    }

    // Truncated request (half a head, then FIN): server closes without a
    // response — and without wedging a worker.
    {
        let mut client = HttpClient::connect(addr).unwrap();
        client.send_raw(b"GET / HT").unwrap();
        client.shutdown_write().unwrap();
        // Either a 400 or a clean close is acceptable for a truncated head.
        let _ = client.read_response();
    }

    // The server still works.
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);

    let state = handle.state();
    assert!(handle.shutdown(), "drain must finish in grace period");
    // Every opened connection was closed: no leaks.
    let snap = state.metrics.snapshot();
    assert_eq!(snap.connections_opened, snap.connections_closed);
    assert_eq!(snap.active_connections, 0);
}

/// A peer that stalls mid-request is cut off with 408, and an idle
/// keep-alive peer is closed silently — both within their deadlines.
#[test]
fn stalled_and_idle_peers_are_reaped() {
    let handle = start_server(Limits {
        idle_timeout: Duration::from_millis(200),
        read_timeout: Duration::from_millis(200),
        ..Limits::default()
    });
    let addr = handle.addr();

    // Stall mid-request: bytes sent, then nothing.
    let mut staller = HttpClient::connect(addr).unwrap();
    staller
        .send_raw(b"POST /v1/predict HTTP/1.1\r\ncontent-length: 100\r\n\r\n{")
        .unwrap();
    let resp = staller
        .read_response()
        .expect("408 before the read timeout of the client");
    assert_eq!(resp.status, 408);

    // Idle: connect, send nothing. The server must close (EOF) rather
    // than hold the worker forever.
    let mut idler = HttpClient::connect(addr).unwrap();
    let err = idler.read_response().unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
        ),
        "idle close should surface as EOF-ish, got {err:?}"
    );

    let state = handle.state();
    assert!(handle.shutdown());
    let snap = state.metrics.snapshot();
    assert_eq!(snap.connections_opened, snap.connections_closed);
}

/// Oversized heads and bodies against the live server are 431/413.
#[test]
fn oversized_requests_are_rejected_politely() {
    let handle = start_server(Limits {
        max_head_bytes: 512,
        max_body_bytes: 256,
        ..quick_limits()
    });
    let addr = handle.addr();

    let mut client = HttpClient::connect(addr).unwrap();
    let mut big_head = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..64 {
        big_head.extend_from_slice(format!("x-pad-{i}: {}\r\n", "y".repeat(32)).as_bytes());
    }
    big_head.extend_from_slice(b"\r\n");
    client.send_raw(&big_head).unwrap();
    assert_eq!(client.read_response().unwrap().status, 431);

    let mut client = HttpClient::connect(addr).unwrap();
    let body = "z".repeat(1024);
    let resp = client.post_json("/v1/predict", &body).unwrap();
    assert_eq!(resp.status, 413);

    assert!(handle.shutdown());
}
