//! End-to-end integration tests over real loopback sockets: the JSON API,
//! keep-alive and pipelining, queue backpressure (503), graceful shutdown
//! draining in-flight work, and the no-connection-leak invariant.

use dc_net::{serve, AppState, HttpClient, Limits, ServerConfig, ServerHandle};
use dc_obs::{MemorySink, Obs};
use dc_serve::ServeModel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn model_8x8() -> ServeModel {
    let mut m = dc_matrix::DataMatrix::builder(8, 8).build();
    for r in 0..6 {
        for c in 0..6 {
            m.set(r, c, (3 * r + c) as f64);
        }
    }
    let cluster = dc_floc::DeltaCluster::from_indices(8, 8, 0..6, 0..6);
    ServeModel::new(m, vec![cluster], vec![0.0], 0.0).unwrap()
}

struct Fixture {
    handle: Option<ServerHandle>,
    state: Arc<AppState>,
}

impl Fixture {
    fn start(config: ServerConfig, obs: Obs) -> Fixture {
        let state = Arc::new(AppState::new(model_8x8(), Some("it.dcm"), 2, obs));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = serve(config, state.clone(), stop).expect("bind loopback");
        Fixture {
            handle: Some(handle),
            state,
        }
    }

    fn quick() -> Fixture {
        Fixture::start(
            ServerConfig {
                limits: Limits {
                    idle_timeout: Duration::from_millis(500),
                    ..Limits::default()
                },
                ..ServerConfig::default()
            },
            Obs::null(),
        )
    }

    fn addr(&self) -> std::net::SocketAddr {
        self.handle.as_ref().unwrap().addr()
    }

    /// Shuts down and asserts the leak-freedom invariant.
    fn finish(mut self) {
        let handle = self.handle.take().unwrap();
        assert!(handle.shutdown(), "drain must complete within grace");
        let snap = self.state.metrics.snapshot();
        assert_eq!(
            snap.connections_opened, snap.connections_closed,
            "connection leak: {snap:?}"
        );
        assert_eq!(snap.active_connections, 0);
    }
}

#[test]
fn end_to_end_api_surface() {
    let fx = Fixture::quick();
    let mut c = HttpClient::connect(fx.addr()).unwrap();

    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body_str().contains("\"status\": \"ok\""));

    let ready = c.get("/readyz").unwrap();
    assert_eq!(ready.status, 200);

    let meta = c.get("/v1/model").unwrap();
    assert_eq!(meta.status, 200);
    let parsed = serde_json::parse_value(&meta.body_str()).unwrap();
    let fields = parsed.as_object().unwrap();
    assert!(fields.iter().any(|(k, _)| k == "fingerprint"));

    let hit = c
        .post_json("/v1/predict", "{\"row\": 2, \"col\": 3}")
        .unwrap();
    assert_eq!(hit.status, 200);
    assert!(hit.body_str().contains("\"outcome\": \"hit\""));

    let miss = c
        .post_json("/v1/predict", "{\"row\": 7, \"col\": 7}")
        .unwrap();
    assert!(miss.body_str().contains("\"outcome\": \"miss\""));

    let batch = c
        .post_json("/v1/predict", "{\"queries\": [[0,0],[7,7],[1,1]]}")
        .unwrap();
    assert_eq!(batch.status, 200);
    assert_eq!(batch.body_str().matches("\"outcome\"").count(), 3);

    let bad = c.post_json("/v1/predict", "this is not json").unwrap();
    assert_eq!(bad.status, 400);

    let missing = c.get("/no/such/route").unwrap();
    assert_eq!(missing.status, 404);

    // All of the above rode one keep-alive connection.
    assert_eq!(fx.state.metrics.snapshot().connections_opened, 1);

    let metrics = c.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let parsed = serde_json::parse_value(&metrics.body_str()).unwrap();
    assert!(parsed.as_object().is_some());

    let prom = c.get("/metrics?format=prometheus").unwrap();
    assert!(prom.body_str().contains("dc_net_requests_total"));

    fx.finish();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let fx = Fixture::quick();
    let mut c = HttpClient::connect(fx.addr()).unwrap();
    c.send("GET", "/healthz", None).unwrap();
    c.send("POST", "/v1/predict", Some(b"{\"row\":1,\"col\":1}"))
        .unwrap();
    c.send("GET", "/v1/model", None).unwrap();
    let first = c.read_response().unwrap();
    let second = c.read_response().unwrap();
    let third = c.read_response().unwrap();
    assert!(first.body_str().contains("uptime_secs"));
    assert!(second.body_str().contains("outcome"));
    assert!(third.body_str().contains("fingerprint"));
    fx.finish();
}

#[test]
fn head_requests_omit_the_body() {
    let fx = Fixture::quick();
    let mut c = HttpClient::connect(fx.addr()).unwrap();
    c.send_raw(b"HEAD /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    // Read to EOF: the head must arrive, the body must not.
    let mut raw = Vec::new();
    let mut stream = c.into_stream();
    std::io::Read::read_to_end(&mut stream, &mut raw).ok();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(text.ends_with("\r\n\r\n"), "body must be omitted: {text:?}");
    let len: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(len > 0, "content-length still reflects the would-be body");
    fx.finish();
}

/// One worker, queue depth 1: a busy worker plus a queued connection makes
/// the *third* connection bounce with 503 + Retry-After at accept time.
#[test]
fn queue_backpressure_answers_503() {
    let fx = Fixture::start(
        ServerConfig {
            threads: 1,
            queue_depth: 1,
            limits: Limits {
                read_timeout: Duration::from_secs(3),
                idle_timeout: Duration::from_secs(3),
                ..Limits::default()
            },
            ..ServerConfig::default()
        },
        Obs::null(),
    );
    let addr = fx.addr();

    // c1 occupies the only worker: partial request, then stall.
    let mut c1 = HttpClient::connect(addr).unwrap();
    c1.send_raw(b"POST /v1/predict HTTP/1.1\r\ncontent-length: 17\r\n\r\n{\"row\"")
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // c2 fills the one queue slot.
    let _c2 = HttpClient::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // c3 must be rejected with backpressure.
    let mut c3 = HttpClient::connect(addr).unwrap();
    let resp = c3
        .read_response()
        .expect("503 must be written before close");
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(resp.body_str().contains("capacity"));

    // Unblock c1: complete the request; it is answered normally.
    c1.send_raw(b":1,\"col\":1}").unwrap();
    let resp = c1.read_response().unwrap();
    assert_eq!(resp.status, 200);
    drop(c1); // frees the worker for c2's (empty) connection

    assert!(fx.state.metrics.snapshot().rejected >= 1);
    fx.finish();
}

/// Raising the stop flag drains in-flight requests: everything already
/// sent gets a response, idle keep-alives close, and shutdown() reports a
/// clean drain.
#[test]
fn graceful_shutdown_drains_in_flight() {
    let sink = MemorySink::new();
    let fx = Fixture::start(
        ServerConfig {
            threads: 2,
            limits: Limits {
                idle_timeout: Duration::from_secs(5),
                ..Limits::default()
            },
            ..ServerConfig::default()
        },
        Obs::new(sink.clone()),
    );
    let addr = fx.addr();

    // An idle keep-alive connection that would otherwise pin a worker for
    // the full idle timeout.
    let mut idle = HttpClient::connect(addr).unwrap();
    assert_eq!(idle.get("/healthz").unwrap().status, 200);

    // A request sent right as shutdown begins.
    let mut inflight = HttpClient::connect(addr).unwrap();
    inflight
        .send("POST", "/v1/predict", Some(b"{\"row\":1,\"col\":1}"))
        .unwrap();
    // Let the request bytes reach the worker so it is genuinely in flight
    // (a request that hasn't started arriving may be dropped by design).
    std::thread::sleep(Duration::from_millis(200));

    let handle = fx.handle.as_ref().unwrap();
    handle.stop_flag().store(true, Ordering::Release);

    // The in-flight request is still answered (connection: close).
    let resp = inflight.read_response().unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body_str().contains("outcome"));

    // The idle connection is closed without waiting out the 5s idle
    // timeout; the next read sees EOF quickly.
    let start = std::time::Instant::now();
    let err = idle.read_response().unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "idle close was slow"
    );
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
        ),
        "{err:?}"
    );

    fx.finish();
    let shutdown_events = sink.named("net.shutdown");
    assert_eq!(shutdown_events.len(), 1);
    assert_eq!(
        shutdown_events[0].field("drained"),
        Some(&dc_obs::OwnedValue::Bool(true))
    );
}

/// Model hot-swap under live traffic: /readyz flips, old snapshots finish,
/// new queries see the new model.
#[test]
fn model_swap_is_visible_over_http() {
    let fx = Fixture::quick();
    let mut c = HttpClient::connect(fx.addr()).unwrap();
    let before = c.get("/v1/model").unwrap().body_str();

    fx.state.set_ready(false);
    assert_eq!(c.get("/readyz").unwrap().status, 503);
    // Predicts keep answering mid-swap (the installed snapshot is always a
    // complete model); only /readyz turns traffic away.
    let answered = c.post_json("/v1/predict", "{\"row\":0,\"col\":0}").unwrap();
    assert_eq!(answered.status, 200);
    fx.state.set_ready(true);

    fx.state.swap_model(model_8x8(), Some("swapped.dcm"));
    let after = c.get("/v1/model").unwrap().body_str();
    assert_ne!(before, after, "path should have changed");
    assert!(after.contains("swapped.dcm"));
    assert_eq!(c.get("/readyz").unwrap().status, 200);
    fx.finish();
}

/// net.request events flow for every answered request.
#[test]
fn requests_emit_structured_events() {
    let sink = MemorySink::new();
    let fx = Fixture::start(ServerConfig::default(), Obs::new(sink.clone()));
    let mut c = HttpClient::connect(fx.addr()).unwrap();
    c.get("/healthz").unwrap();
    c.post_json("/v1/predict", "{\"row\":1,\"col\":1}").unwrap();
    c.get("/nope").unwrap();
    fx.finish();

    let events = sink.named("net.request");
    assert_eq!(events.len(), 3);
    assert_eq!(events[0].str_field("path"), Some("/healthz"));
    assert_eq!(events[1].u64_field("status"), Some(200));
    assert_eq!(events[2].u64_field("status"), Some(404));
    assert!(events
        .iter()
        .all(|e| e.u64_field("latency_bucket").is_some()));
    assert_eq!(sink.named("net.listen").len(), 1);
}
