//! # dc-fault — IO fault injection for robustness testing
//!
//! Thin `Read`/`Write` wrappers that inject the failure modes a mining or
//! serving process actually meets in the field: short reads, injected
//! `io::Error`s at byte offsets, silent bit flips, and mid-write truncation
//! (the torn write a crash or full disk leaves behind).
//!
//! The crate deliberately has **no dependencies**; the interesting assertions
//! live in `tests/chaos.rs`, which drives the rest of the workspace
//! (`dc-matrix` ingestion, `dc-serve` artifacts and checkpoints, the atomic
//! write protocol) through these wrappers and proves the contract the
//! robustness PR promises: *typed errors, never a panic, never a silently
//! corrupted visible artifact*.
//!
//! ```
//! use dc_fault::FaultyReader;
//! use std::io::Read;
//!
//! // A reader that flips bit 0 of byte 2 and fails at offset 5.
//! let data = b"hello world".to_vec();
//! let mut r = FaultyReader::new(&data[..]).flip_bit(2, 0).error_at(5);
//! let mut buf = Vec::new();
//! let err = r.read_to_end(&mut buf).unwrap_err();
//! assert_eq!(err.to_string(), "injected read fault at offset 5");
//! assert_eq!(&buf, b"hemlo"); // 'l' ^ 0x01 == 'm', stopped at 5
//! ```

pub mod chaos;

use std::io::{self, Read, Write};

/// Applies any configured bit flips to `chunk`, whose first byte sits at
/// stream offset `base`.
fn apply_flips(flips: &[(u64, u8)], base: u64, chunk: &mut [u8]) {
    for &(offset, bit) in flips {
        if offset >= base && offset < base + chunk.len() as u64 {
            chunk[(offset - base) as usize] ^= 1 << (bit & 7);
        }
    }
}

/// A `Read` wrapper that injects faults at configured byte offsets.
///
/// Faults compose: a reader can serve short reads *and* flip bits *and*
/// fail at an offset. Offsets count bytes of the logical stream (what the
/// consumer sees), starting at 0.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    pos: u64,
    /// Serve at most this many bytes per `read` call (short reads).
    max_chunk: Option<usize>,
    /// Return an injected `io::Error` once the cursor reaches this offset.
    /// Sticky: every call at or past the offset fails.
    error_at: Option<u64>,
    /// Report clean EOF at this offset (truncated input).
    eof_at: Option<u64>,
    /// `(offset, bit)` pairs to flip in the data passing through.
    flips: Vec<(u64, u8)>,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with no faults configured; builder methods add them.
    pub fn new(inner: R) -> Self {
        FaultyReader {
            inner,
            pos: 0,
            max_chunk: None,
            error_at: None,
            eof_at: None,
            flips: Vec::new(),
        }
    }

    /// Serve at most `n` bytes per `read` call. `n` is clamped to ≥ 1 so
    /// the reader still makes progress.
    pub fn short_reads(mut self, n: usize) -> Self {
        self.max_chunk = Some(n.max(1));
        self
    }

    /// Fail with an injected [`io::ErrorKind::Other`] error once `offset`
    /// bytes have been served.
    pub fn error_at(mut self, offset: u64) -> Self {
        self.error_at = Some(offset);
        self
    }

    /// Report EOF after `offset` bytes, regardless of how much data the
    /// inner reader holds.
    pub fn truncate_at(mut self, offset: u64) -> Self {
        self.eof_at = Some(offset);
        self
    }

    /// Flip `bit` (0–7) of the byte at stream `offset` as it passes through.
    pub fn flip_bit(mut self, offset: u64, bit: u8) -> Self {
        self.flips.push((offset, bit));
        self
    }

    /// Bytes served so far.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(at) = self.error_at {
            if self.pos >= at {
                return Err(io::Error::other(format!(
                    "injected read fault at offset {at}"
                )));
            }
        }
        if let Some(at) = self.eof_at {
            if self.pos >= at {
                return Ok(0);
            }
        }
        let mut allowed = buf.len();
        if let Some(n) = self.max_chunk {
            allowed = allowed.min(n);
        }
        if let Some(at) = self.error_at {
            allowed = allowed.min((at - self.pos) as usize);
        }
        if let Some(at) = self.eof_at {
            allowed = allowed.min((at - self.pos) as usize);
        }
        if allowed == 0 && !buf.is_empty() {
            // Both limits sit exactly at the cursor; the guards above
            // already handled that, so this is unreachable in practice —
            // but returning Ok(0) is the safe contract either way.
            return Ok(0);
        }
        let n = self.inner.read(&mut buf[..allowed])?;
        apply_flips(&self.flips, self.pos, &mut buf[..n]);
        self.pos += n as u64;
        Ok(n)
    }
}

/// A `Write` wrapper that injects faults at configured byte offsets.
///
/// Offsets count bytes the caller has written (the logical stream). Two
/// distinct failure modes matter for crash-safety testing:
///
/// * [`error_at`](FaultyWriter::error_at) — the write *reports* failure,
///   as a full disk or revoked handle would. Callers see the error and can
///   abort cleanly.
/// * [`truncate_at`](FaultyWriter::truncate_at) — the write *claims*
///   success but bytes past the offset never reach the inner writer: the
///   torn tail a power cut leaves. Callers cannot detect this at write
///   time, which is exactly why artifacts carry checksums.
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    pos: u64,
    max_chunk: Option<usize>,
    error_at: Option<u64>,
    truncate_at: Option<u64>,
    flips: Vec<(u64, u8)>,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner` with no faults configured; builder methods add them.
    pub fn new(inner: W) -> Self {
        FaultyWriter {
            inner,
            pos: 0,
            max_chunk: None,
            error_at: None,
            truncate_at: None,
            flips: Vec::new(),
        }
    }

    /// Accept at most `n` bytes per `write` call (short writes; callers
    /// using `write_all` will loop). Clamped to ≥ 1.
    pub fn short_writes(mut self, n: usize) -> Self {
        self.max_chunk = Some(n.max(1));
        self
    }

    /// Fail with an injected [`io::ErrorKind::Other`] error once `offset`
    /// bytes have been accepted. Bytes before the offset are written
    /// normally; the failing call itself writes nothing. Sticky.
    pub fn error_at(mut self, offset: u64) -> Self {
        self.error_at = Some(offset);
        self
    }

    /// Silently drop every byte past `offset` while still reporting
    /// success — a torn write. `flush` keeps succeeding too.
    pub fn truncate_at(mut self, offset: u64) -> Self {
        self.truncate_at = Some(offset);
        self
    }

    /// Flip `bit` (0–7) of the byte at stream `offset` on its way to the
    /// inner writer.
    pub fn flip_bit(mut self, offset: u64, bit: u8) -> Self {
        self.flips.push((offset, bit));
        self
    }

    /// Bytes accepted so far (including silently dropped ones).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Unwraps the inner writer, e.g. to inspect what actually landed.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(at) = self.error_at {
            if self.pos >= at {
                return Err(io::Error::other(format!(
                    "injected write fault at offset {at}"
                )));
            }
        }
        let mut allowed = buf.len();
        if let Some(n) = self.max_chunk {
            allowed = allowed.min(n);
        }
        if let Some(at) = self.error_at {
            // Accept only up to the fault line; the next call errors.
            allowed = allowed.min((at - self.pos) as usize);
        }
        if allowed == 0 && !buf.is_empty() {
            return Ok(0);
        }
        // Bytes past a truncation point are acknowledged but never land.
        let persist = match self.truncate_at {
            Some(at) if self.pos >= at => 0,
            Some(at) => allowed.min((at - self.pos) as usize),
            None => allowed,
        };
        if persist > 0 {
            let mut chunk = buf[..persist].to_vec();
            apply_flips(&self.flips, self.pos, &mut chunk);
            self.inner.write_all(&chunk)?;
        }
        self.pos += allowed as u64;
        Ok(allowed)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_wrappers_are_transparent() {
        let data = b"transparent".to_vec();
        let mut out = Vec::new();
        let mut r = FaultyReader::new(&data[..]);
        let mut w = FaultyWriter::new(&mut out);
        io::copy(&mut r, &mut w).unwrap();
        assert_eq!(w.into_inner(), &data);
    }

    #[test]
    fn short_reads_still_deliver_everything() {
        let data: Vec<u8> = (0..=255).collect();
        let mut r = FaultyReader::new(&data[..]).short_reads(3);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(r.position(), 256);
    }

    #[test]
    fn reader_error_fires_exactly_at_the_offset() {
        let data = [7u8; 32];
        let mut r = FaultyReader::new(&data[..]).error_at(10);
        let mut buf = Vec::new();
        let err = r.read_to_end(&mut buf).unwrap_err();
        assert_eq!(buf.len(), 10);
        assert!(err.to_string().contains("offset 10"));
        // Sticky: retrying fails again rather than resuming.
        assert!(r.read(&mut [0u8; 4]).is_err());
    }

    #[test]
    fn reader_truncation_is_a_clean_eof() {
        let data = [1u8; 100];
        let mut r = FaultyReader::new(&data[..]).truncate_at(42);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf.len(), 42);
    }

    #[test]
    fn reader_bit_flips_corrupt_exactly_one_bit() {
        let data = [0u8; 8];
        let mut r = FaultyReader::new(&data[..]).flip_bit(3, 5).short_reads(2);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        let expected: Vec<u8> = (0..8).map(|i| if i == 3 { 1 << 5 } else { 0 }).collect();
        assert_eq!(buf, expected);
    }

    #[test]
    fn writer_error_preserves_the_prefix() {
        let mut out = Vec::new();
        let mut w = FaultyWriter::new(&mut out).error_at(5);
        let err = w.write_all(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("offset 5"));
        assert_eq!(out, b"01234");
    }

    #[test]
    fn writer_truncation_claims_success_but_drops_the_tail() {
        let mut out = Vec::new();
        let mut w = FaultyWriter::new(&mut out).truncate_at(4).short_writes(3);
        w.write_all(b"0123456789").unwrap();
        w.flush().unwrap();
        assert_eq!(w.position(), 10);
        assert_eq!(out, b"0123");
    }

    #[test]
    fn writer_bit_flips_land_in_the_output() {
        let mut out = Vec::new();
        let mut w = FaultyWriter::new(&mut out).flip_bit(1, 0);
        w.write_all(&[0u8, 0u8, 0u8]).unwrap();
        assert_eq!(out, vec![0u8, 1u8, 0u8]);
    }

    #[test]
    fn error_at_zero_rejects_the_first_byte() {
        let mut out = Vec::new();
        let mut w = FaultyWriter::new(&mut out).error_at(0);
        assert!(w.write_all(b"x").is_err());
        assert!(out.is_empty());
        let data = b"x".to_vec();
        let mut r = FaultyReader::new(&data[..]).error_at(0);
        assert!(r.read(&mut [0u8; 1]).is_err());
    }
}
