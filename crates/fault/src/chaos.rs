//! Named chaos safe-points: thread-level fault injection for crash-safety
//! testing.
//!
//! Production code sprinkles [`safepoint("name")`](safepoint) calls at the
//! moments a crash would be most interesting (mid-promotion, between the
//! staged rename and the in-memory swap, at the start of a drain). With no
//! plan installed a safepoint is one relaxed atomic load — cheap enough to
//! leave in release builds. Tests install a plan, either programmatically
//! with [`install`] or through the `DC_CHAOS` environment variable, and the
//! named points start misbehaving on demand:
//!
//! * `delay:MS` — sleep that many milliseconds (hold a window open so a
//!   test can observe the in-between state, e.g. `/readyz` mid-swap);
//! * `panic` — panic with a recognizable message (exercises the
//!   `catch_unwind` boundary around worker threads);
//! * `abort` — `std::process::abort()`, the deterministic stand-in for
//!   SIGKILL at *exactly* this point (exercises crash recovery).
//!
//! `DC_CHAOS` grammar: comma-separated `point=action[@hit]` rules, e.g.
//!
//! ```text
//! DC_CHAOS="online.promote.staged=abort@2,cli.drain.begin=delay:300"
//! ```
//!
//! `@hit` (1-based) fires the action only on that visit to the point;
//! without it the action fires on every visit. Unknown points are fine —
//! rules match by name at runtime, so a test can target points that only
//! exist in some binaries.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What a matched safepoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Sleep for the duration, then continue normally.
    Delay(Duration),
    /// Panic with a `chaos panic at <point>` message.
    Panic,
    /// `std::process::abort()` — the in-process SIGKILL.
    Abort,
}

/// One installed rule: fire `action` when the named point is visited
/// (optionally only on the `only_hit`-th visit, 1-based).
#[derive(Debug, Clone)]
pub struct ChaosRule {
    pub point: String,
    pub action: ChaosAction,
    /// 1-based visit number the rule fires on; `None` = every visit.
    pub only_hit: Option<u64>,
}

#[derive(Debug, Default)]
struct Plan {
    rules: Vec<(ChaosRule, AtomicU64)>,
}

/// Whether any plan is installed; safepoints bail on one relaxed load
/// when it is false.
static ARMED: AtomicBool = AtomicBool::new(false);

fn plan() -> &'static Mutex<Plan> {
    static PLAN: OnceLock<Mutex<Plan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        // First touch: adopt any DC_CHAOS plan from the environment so
        // child processes under test need no code changes.
        let plan = match std::env::var("DC_CHAOS") {
            Ok(spec) if !spec.trim().is_empty() => match parse_spec(&spec) {
                Ok(rules) => {
                    ARMED.store(true, Ordering::Release);
                    Plan {
                        rules: rules.into_iter().map(|r| (r, AtomicU64::new(0))).collect(),
                    }
                }
                Err(e) => {
                    eprintln!("warning: ignoring malformed DC_CHAOS: {e}");
                    Plan::default()
                }
            },
            _ => Plan::default(),
        };
        Mutex::new(plan)
    })
}

/// Parses a `DC_CHAOS` spec into rules. Errors name the offending clause.
pub fn parse_spec(spec: &str) -> Result<Vec<ChaosRule>, String> {
    let mut rules = Vec::new();
    for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        let (point, rest) = clause
            .split_once('=')
            .ok_or_else(|| format!("missing '=' in {clause:?}"))?;
        let (action_text, only_hit) = match rest.split_once('@') {
            Some((a, hit)) => {
                let hit: u64 = hit
                    .parse()
                    .map_err(|_| format!("bad hit number in {clause:?}"))?;
                if hit == 0 {
                    return Err(format!("hit numbers are 1-based in {clause:?}"));
                }
                (a, Some(hit))
            }
            None => (rest, None),
        };
        let action = if let Some(ms) = action_text.strip_prefix("delay:") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad delay millis in {clause:?}"))?;
            ChaosAction::Delay(Duration::from_millis(ms))
        } else {
            match action_text {
                "panic" => ChaosAction::Panic,
                "abort" => ChaosAction::Abort,
                other => return Err(format!("unknown action {other:?} in {clause:?}")),
            }
        };
        rules.push(ChaosRule {
            point: point.trim().to_string(),
            action,
            only_hit,
        });
    }
    Ok(rules)
}

/// Installs `rules`, replacing any previous plan (including one adopted
/// from `DC_CHAOS`). Intended for in-process tests.
pub fn install(rules: Vec<ChaosRule>) {
    let mut plan = plan().lock().unwrap_or_else(|e| e.into_inner());
    plan.rules = rules.into_iter().map(|r| (r, AtomicU64::new(0))).collect();
    ARMED.store(!plan.rules.is_empty(), Ordering::Release);
}

/// Removes every rule; safepoints go back to the one-atomic-load fast path.
pub fn clear() {
    install(Vec::new());
}

/// How many times the named point has been visited since the plan was
/// installed (0 when no rule mentions it — only ruled points are counted).
pub fn hits(point: &str) -> u64 {
    let plan = plan().lock().unwrap_or_else(|e| e.into_inner());
    plan.rules
        .iter()
        .filter(|(r, _)| r.point == point)
        .map(|(_, n)| n.load(Ordering::Relaxed))
        .max()
        .unwrap_or(0)
}

/// A named chaos safe-point. Free when no plan is installed; with a plan,
/// fires every matching rule for this visit.
pub fn safepoint(name: &str) {
    // First visit adopts any DC_CHAOS plan from the environment (which
    // arms the flag); afterwards this is a completed-Once load plus one
    // relaxed atomic load on the unarmed fast path.
    static ENV_INIT: std::sync::Once = std::sync::Once::new();
    ENV_INIT.call_once(|| {
        let _ = plan();
    });
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    // Collect actions under the lock, fire them after releasing it so a
    // delayed/panicking point never wedges other threads' safepoints.
    let mut actions = Vec::new();
    {
        let plan = plan().lock().unwrap_or_else(|e| e.into_inner());
        for (rule, visits) in &plan.rules {
            if rule.point != name {
                continue;
            }
            let visit = visits.fetch_add(1, Ordering::Relaxed) + 1;
            if rule.only_hit.is_none_or(|h| h == visit) {
                actions.push(rule.action);
            }
        }
    }
    for action in actions {
        match action {
            ChaosAction::Delay(d) => std::thread::sleep(d),
            ChaosAction::Panic => panic!("chaos panic at {name}"),
            ChaosAction::Abort => {
                // Flush nothing, warn nobody: this is the SIGKILL stand-in.
                eprintln!("chaos abort at {name}");
                std::process::abort();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Chaos state is process-global; tests share one plan, so they run
    // under a lock to avoid interleaving installs.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let rules =
            parse_spec("online.promote.staged=abort@2, cli.drain.begin=delay:300,x=panic").unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].point, "online.promote.staged");
        assert_eq!(rules[0].action, ChaosAction::Abort);
        assert_eq!(rules[0].only_hit, Some(2));
        assert_eq!(
            rules[1].action,
            ChaosAction::Delay(Duration::from_millis(300))
        );
        assert_eq!(rules[1].only_hit, None);
        assert_eq!(rules[2].action, ChaosAction::Panic);
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        assert!(parse_spec("no-equals").is_err());
        assert!(parse_spec("p=unknown").is_err());
        assert!(parse_spec("p=delay:abc").is_err());
        assert!(parse_spec("p=panic@0").is_err());
        assert!(parse_spec("p=panic@x").is_err());
    }

    #[test]
    fn unruled_safepoints_are_noops() {
        let _guard = exclusive();
        clear();
        safepoint("nothing.installed");
        install(vec![ChaosRule {
            point: "other.point".to_string(),
            action: ChaosAction::Panic,
            only_hit: None,
        }]);
        safepoint("this.point.has.no.rule");
        clear();
    }

    #[test]
    fn delay_fires_and_hits_count() {
        let _guard = exclusive();
        install(vec![ChaosRule {
            point: "t.delay".to_string(),
            action: ChaosAction::Delay(Duration::from_millis(30)),
            only_hit: None,
        }]);
        let started = std::time::Instant::now();
        safepoint("t.delay");
        assert!(started.elapsed() >= Duration::from_millis(25));
        safepoint("t.delay");
        assert_eq!(hits("t.delay"), 2);
        clear();
    }

    #[test]
    fn panic_fires_only_on_the_requested_hit() {
        let _guard = exclusive();
        install(vec![ChaosRule {
            point: "t.panic".to_string(),
            action: ChaosAction::Panic,
            only_hit: Some(2),
        }]);
        safepoint("t.panic"); // visit 1: clean
        let caught =
            std::panic::catch_unwind(|| safepoint("t.panic")).expect_err("visit 2 must panic");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("chaos panic at t.panic"), "{msg}");
        safepoint("t.panic"); // visit 3: clean again
        assert_eq!(hits("t.panic"), 3);
        clear();
    }
}
