//! Chaos tests: drive the workspace's ingestion and persistence layers
//! through fault-injecting readers/writers and assert the robustness
//! contract — every failure surfaces as a typed error, nothing panics, and
//! no previously valid artifact on disk is ever corrupted by a failed or
//! torn write.

use dc_fault::{FaultyReader, FaultyWriter};
use dc_floc::{floc_observed, DeltaCluster, FlocCheckpoint, FlocConfig};
use dc_matrix::io::{read_dense, read_triples, DenseFormat, ParseError};
use dc_matrix::DataMatrix;
use dc_serve::{
    artifact, atomic_write_with, checkpoint_from_bytes, checkpoint_to_bytes, temp_sibling,
    ArtifactError, ServeModel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dc-fault-chaos-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_model() -> ServeModel {
    let mut rng = StdRng::seed_from_u64(11);
    let mut m = DataMatrix::builder(8, 6).build();
    for r in 0..8 {
        for c in 0..6 {
            if rng.gen_bool(0.85) {
                m.set(r, c, rng.gen_range(-4.0..4.0));
            }
        }
    }
    let clusters = vec![
        DeltaCluster::from_indices(8, 6, 0..4, 0..3),
        DeltaCluster::from_indices(8, 6, 3..8, 2..6),
    ];
    ServeModel::new(m, clusters, vec![0.5, 0.75], 0.625).unwrap()
}

fn sample_checkpoint() -> FlocCheckpoint {
    let mut rng = StdRng::seed_from_u64(23);
    let mut m = DataMatrix::builder(15, 8).build();
    for r in 0..15 {
        for c in 0..8 {
            if rng.gen_bool(0.9) {
                m.set(r, c, rng.gen_range(0.0..20.0));
            }
        }
    }
    let config = FlocConfig::builder(2).alpha(0.5).seed(23).build();
    let mut snapshots: Vec<FlocCheckpoint> = Vec::new();
    let mut obs = |c: &FlocCheckpoint| snapshots.push(c.clone());
    floc_observed(&m, &config, Some(&mut obs)).unwrap();
    snapshots.pop().expect("mining emits at least one snapshot")
}

// ---------------------------------------------------------------------------
// Ingestion: corrupt text never panics, always yields Ok or a typed error.
// ---------------------------------------------------------------------------

#[test]
fn dense_ingest_survives_bit_flips_without_panicking() {
    let text = b"1.5\t2.5\tNA\n-3.0\t4.25\t5.0\n0.5\t1.0\t2.0\n";
    // Flip every bit of every byte, one at a time, through a short-read
    // wrapper: the reader must always return Ok or ParseError, never panic.
    let mut ok = 0usize;
    let mut typed_err = 0usize;
    for offset in 0..text.len() as u64 {
        for bit in 0..8u8 {
            let r = FaultyReader::new(&text[..])
                .flip_bit(offset, bit)
                .short_reads(7);
            match read_dense(r, &DenseFormat::default()) {
                Ok(_) => ok += 1,
                Err(
                    ParseError::BadNumber { .. }
                    | ParseError::RaggedRow { .. }
                    | ParseError::NonFinite { .. }
                    | ParseError::Io(_)
                    | ParseError::Empty
                    | ParseError::ShortTripleLine { .. },
                ) => typed_err += 1,
            }
        }
    }
    // Some flips still parse (digit→digit), some don't; both paths exist.
    assert!(ok > 0, "some corruptions still parse");
    assert!(typed_err > 0, "some corruptions are rejected");
}

#[test]
fn dense_ingest_reports_injected_io_errors_as_typed_errors() {
    let text = b"1\t2\n3\t4\n";
    for offset in 0..text.len() as u64 {
        let r = FaultyReader::new(&text[..]).error_at(offset);
        match read_dense(r, &DenseFormat::default()) {
            Err(ParseError::Io(e)) => {
                assert!(e.to_string().contains("injected read fault"));
            }
            // A fault at a line boundary can truncate to a valid prefix
            // (offset beyond the last flushed line never happens here
            // because error_at fires before EOF is reached).
            other => panic!("expected ParseError::Io, got {other:?}"),
        }
    }
}

#[test]
fn triples_ingest_survives_truncation_at_every_offset() {
    let text = b"196\t242\t3\t881250949\n186\t302\t3\t891717742\n22\t377\t1\t878887116\n";
    for offset in 0..=text.len() as u64 {
        let r = FaultyReader::new(&text[..]).truncate_at(offset);
        match read_triples(r) {
            Ok(t) => {
                assert!(t.matrix.rows() >= 1);
            }
            Err(
                ParseError::Empty
                | ParseError::ShortTripleLine { .. }
                | ParseError::BadNumber { .. },
            ) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Artifacts: every single-bit corruption and truncation is detected.
// ---------------------------------------------------------------------------

#[test]
fn model_artifact_detects_any_single_bit_flip() {
    let bytes = artifact::to_bytes(&sample_model());
    for offset in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[offset] ^= 0x10;
        match artifact::from_bytes(&bad) {
            Err(
                ArtifactError::BadMagic
                | ArtifactError::UnsupportedVersion(_)
                | ArtifactError::ChecksumMismatch { .. }
                | ArtifactError::Truncated
                | ArtifactError::Malformed(_),
            ) => {}
            Err(other) => panic!("unexpected error at offset {offset}: {other:?}"),
            Ok(_) => panic!("flip at offset {offset} went undetected"),
        }
    }
}

#[test]
fn checkpoint_artifact_detects_truncation_at_every_length() {
    let bytes = checkpoint_to_bytes(&sample_checkpoint());
    for len in 0..bytes.len() {
        assert!(
            checkpoint_from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} bytes went undetected"
        );
    }
    assert!(checkpoint_from_bytes(&bytes).is_ok());
}

// ---------------------------------------------------------------------------
// Atomic write protocol: a failed or torn staging write never damages the
// artifact visible at the destination path.
// ---------------------------------------------------------------------------

#[test]
fn failed_staging_write_at_every_offset_preserves_the_old_model() {
    let dir = scratch_dir("atomic-error");
    let target = dir.join("model.dcm");
    let model = sample_model();
    artifact::save(&model, &target).unwrap();
    let baseline = std::fs::read(&target).unwrap();

    let bytes = artifact::to_bytes(&model);
    for offset in 0..=bytes.len() as u64 {
        let result = atomic_write_with(&target, |w| {
            let mut fw = FaultyWriter::new(w).error_at(offset);
            fw.write_all(&bytes)
        });
        if offset < bytes.len() as u64 {
            assert!(result.is_err(), "fault at {offset} should surface");
        } else {
            // error_at == len never fires; the write completes.
            assert!(result.is_ok());
        }
        // The visible artifact is byte-identical to the last good save and
        // still loads; no staging junk is left behind.
        assert_eq!(std::fs::read(&target).unwrap(), baseline);
        artifact::load(&target).unwrap();
        assert!(!temp_sibling(&target).exists());
    }
}

#[test]
fn torn_staging_write_is_caught_by_the_checksum_not_shipped() {
    let dir = scratch_dir("atomic-torn");
    let target = dir.join("ckpt.dck");
    let bytes = checkpoint_to_bytes(&sample_checkpoint());

    // A torn write reports success, so the rename goes through — but the
    // artifact's CRC catches the damage on load. Prove that every torn
    // length is either the full file (loads fine) or detected as corrupt.
    for offset in (0..bytes.len() as u64).step_by(7) {
        let res = atomic_write_with(&target, |w| {
            let mut fw = FaultyWriter::new(w).truncate_at(offset);
            fw.write_all(&bytes)
        });
        assert!(res.is_ok(), "torn writes are silent by construction");
        let on_disk = std::fs::read(&target).unwrap();
        assert_eq!(on_disk.len() as u64, offset);
        assert!(
            checkpoint_from_bytes(&on_disk).is_err(),
            "torn file of {offset} bytes must not parse"
        );
    }
}

#[test]
fn short_writes_through_the_atomic_path_produce_an_intact_artifact() {
    let dir = scratch_dir("atomic-short");
    let target = dir.join("model.dcm");
    let model = sample_model();
    let bytes = artifact::to_bytes(&model);
    atomic_write_with(&target, |w| {
        let mut fw = FaultyWriter::new(w).short_writes(5);
        fw.write_all(&bytes)
    })
    .unwrap();
    let loaded = artifact::load(&target).unwrap();
    assert_eq!(loaded.k(), model.k());
    assert_eq!(loaded.avg_residue(), model.avg_residue());
}

// ---- Paged matrix block files --------------------------------------------
//
// The out-of-core backend's robustness contract mirrors the artifacts':
// every way a block directory can rot on disk — flipped bits, truncated
// frames, missing or unreadable files — surfaces as a typed
// [`dc_matrix::PagedError`] at open time. Never a panic, and never a
// silently wrong value: the CRC framing means a corrupt block cannot
// decode to plausible-but-different numbers.

use dc_matrix::{DataMatrix as PagedMatrix, PagedError, PagedOptions};

/// A small paged matrix spread over several blocks, with a hole pattern.
fn sample_paged(dir: &std::path::Path) -> PagedMatrix {
    let mut rng = StdRng::seed_from_u64(47);
    let data: Vec<Option<f64>> = (0..14 * 5)
        .map(|_| rng.gen_bool(0.85).then(|| rng.gen_range(-9.0..9.0)))
        .collect();
    DataMatrix::builder(14, 5)
        .paged(dir)
        .chunk_rows(4)
        .from_options(data)
        .unwrap()
}

#[test]
fn paged_blocks_detect_any_single_bit_flip() {
    let dir = scratch_dir("paged-flip");
    let pages = dir.join("m");
    let clean_fp = sample_paged(&pages).fingerprint();

    let block = pages.join("chunk-000001.dcb");
    let clean = std::fs::read(&block).unwrap();
    for offset in 0..clean.len() {
        let mut corrupt = clean.clone();
        corrupt[offset] ^= 1 << (offset % 8);
        std::fs::write(&block, &corrupt).unwrap();
        match DataMatrix::open_paged(&pages) {
            Err(PagedError::Frame { .. } | PagedError::Corrupt { .. }) => {}
            Err(other) => panic!("flip at byte {offset}: unexpected error {other}"),
            Ok(_) => panic!("flip at byte {offset} went undetected"),
        }
    }
    // The directory itself was never harmed: restoring the block restores
    // the matrix bit for bit.
    std::fs::write(&block, &clean).unwrap();
    assert_eq!(
        DataMatrix::open_paged(&pages).unwrap().fingerprint(),
        clean_fp
    );
}

#[test]
fn paged_meta_detects_any_single_bit_flip() {
    let dir = scratch_dir("paged-meta-flip");
    let pages = dir.join("m");
    sample_paged(&pages);

    let meta = pages.join("matrix.dcpm");
    let clean = std::fs::read(&meta).unwrap();
    for offset in 0..clean.len() {
        let mut corrupt = clean.clone();
        corrupt[offset] ^= 0x10;
        std::fs::write(&meta, &corrupt).unwrap();
        match DataMatrix::open_paged(&pages) {
            Err(_) => {}
            Ok(_) => panic!("meta flip at byte {offset} went undetected"),
        }
    }
}

#[test]
fn paged_blocks_detect_truncation_at_every_frame_offset() {
    let dir = scratch_dir("paged-trunc");
    let pages = dir.join("m");
    sample_paged(&pages);

    let block = pages.join("chunk-000000.dcb");
    let clean = std::fs::read(&block).unwrap();
    for keep in 0..clean.len() {
        std::fs::write(&block, &clean[..keep]).unwrap();
        match DataMatrix::open_paged(&pages) {
            Err(PagedError::Frame { .. } | PagedError::Corrupt { .. } | PagedError::Io { .. }) => {}
            Ok(_) => panic!("truncation to {keep} bytes went undetected"),
        }
    }
    // Truncating the metadata is equally fatal, equally typed.
    std::fs::write(&block, &clean).unwrap();
    let meta = pages.join("matrix.dcpm");
    let meta_clean = std::fs::read(&meta).unwrap();
    for keep in [0, 3, 8, 17, meta_clean.len() - 5, meta_clean.len() - 1] {
        std::fs::write(&meta, &meta_clean[..keep]).unwrap();
        assert!(
            DataMatrix::open_paged(&pages).is_err(),
            "meta truncated to {keep} bytes went undetected"
        );
    }
}

#[test]
fn missing_or_unreadable_paged_files_are_typed_io_errors() {
    let dir = scratch_dir("paged-io");
    let pages = dir.join("m");
    sample_paged(&pages);

    // A deleted block: Io at open (the meta says it must exist).
    let block = pages.join("chunk-000002.dcb");
    let saved = std::fs::read(&block).unwrap();
    std::fs::remove_file(&block).unwrap();
    assert!(matches!(
        DataMatrix::open_paged(&pages),
        Err(PagedError::Io { .. })
    ));

    // A block replaced by a directory: reads fail with Io, not a panic.
    std::fs::create_dir(&block).unwrap();
    assert!(DataMatrix::open_paged(&pages).is_err());
    std::fs::remove_dir(&block).unwrap();
    std::fs::write(&block, &saved).unwrap();

    // A missing directory and a missing meta are Io too.
    assert!(matches!(
        DataMatrix::open_paged(dir.join("nonexistent")),
        Err(PagedError::Io { .. })
    ));

    // Deferred verification trades the open-time scan for lazy loading;
    // the *open* itself must still type out cleanly on a missing meta.
    let opts = PagedOptions {
        verify_on_open: false,
        ..PagedOptions::default()
    };
    assert!(PagedMatrix::open_paged_with(dir.join("nonexistent"), opts).is_err());
}

#[test]
fn extra_or_swapped_blocks_are_rejected_not_misread() {
    let dir = scratch_dir("paged-swap");
    let pages = dir.join("m");
    sample_paged(&pages);

    // Swap two block files: each frame's self-declared index disagrees
    // with its filename/offset, so the open must refuse rather than serve
    // the wrong rows.
    let a = pages.join("chunk-000000.dcb");
    let b = pages.join("chunk-000001.dcb");
    let bytes_a = std::fs::read(&a).unwrap();
    let bytes_b = std::fs::read(&b).unwrap();
    std::fs::write(&a, &bytes_b).unwrap();
    std::fs::write(&b, &bytes_a).unwrap();
    match DataMatrix::open_paged(&pages) {
        Err(PagedError::Corrupt { .. } | PagedError::Frame { .. }) => {}
        Err(other) => panic!("swapped blocks: unexpected error {other}"),
        Ok(_) => panic!("swapped blocks went undetected"),
    }
}
