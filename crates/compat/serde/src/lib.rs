//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serialization framework under serde's names. Instead of
//! upstream's visitor-based zero-copy design, types convert to and from a
//! JSON-shaped [`Value`] tree:
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` proc-macro and mirrors serde's data model: structs become
//! objects, unit enum variants become strings, and data-carrying variants
//! become externally-tagged single-key objects. `serde_json` renders a
//! [`Value`] to JSON text and parses it back.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

/// A JSON-shaped value tree — the interchange format between `Serialize`,
/// `Deserialize`, and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative integers).
    I64(i64),
    /// Unsigned integer (used for non-negative integers).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric payload as `u64` if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric payload as `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Short human-readable name of the value's JSON type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            message: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Looks up a field of a derived struct in an object body.
///
/// Used by generated `Deserialize` impls; missing fields surface as a
/// descriptive error rather than a panic.
pub fn get_field<'v>(fields: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the interchange tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, found {}",
                        value.type_name()
                    ))
                })?;
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", value.type_name()))
                })?;
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // `null` maps to NaN: JSON has no NaN/Infinity literal, and the
        // writer emits null for non-finite floats (as serde_json does).
        match value {
            Value::Null => Ok(f64::NAN),
            other => other.as_f64().ok_or_else(|| {
                Error::custom(format!("expected number, found {}", other.type_name()))
            }),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, found {s:?}"))),
        }
    }
}

// ---- containers ----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.type_name())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, found {}", value.type_name()))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.type_name())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across hasher seeds.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.type_name())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        // Matches serde's {"secs": u64, "nanos": u32} encoding.
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| Error::custom("expected duration object"))?;
        let secs = u64::from_value(get_field(fields, "secs")?)?;
        let nanos = u32::from_value(get_field(fields, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let t = (1usize, -2i32, 0.5f64);
        assert_eq!(<(usize, i32, f64)>::from_value(&t.to_value()).unwrap(), t);
        let d = Duration::new(3, 456);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn out_of_range_and_type_errors() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Str("x".into())).is_err());
        assert!(get_field(&[], "absent").is_err());
    }

    #[test]
    fn nan_travels_as_null() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
