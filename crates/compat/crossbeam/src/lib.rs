//! Workspace-local stand-in for `crossbeam`.
//!
//! Only [`thread::scope`] is provided — implemented on top of
//! `std::thread::scope` (stable since 1.63), with crossbeam's signature:
//! the closure receives a [`thread::Scope`] handle, spawned closures take
//! the scope as an argument (enabling nested spawns), and the call returns
//! `Err` with the panic payload if any spawned thread panicked instead of
//! propagating the panic.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`] block.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle so
        /// it can spawn further threads, mirroring crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope in which borrowing from the enclosing stack
    /// frame is allowed; joins all spawned threads before returning.
    ///
    /// Returns `Err(payload)` if any spawned (and not explicitly joined)
    /// thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope resumes child panics in the parent at the end
        // of the scope; catching that panic reproduces crossbeam's
        // Result-returning contract.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_from_stack() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        thread::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_child_yields_err() {
        let r = thread::scope(|scope| {
            scope.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }
}
