//! Workspace-local stand-in for `serde_derive`.
//!
//! Derives the vendored value-tree `Serialize`/`Deserialize` traits (see
//! the sibling `serde` crate) for the item shapes this workspace uses:
//! structs with named fields, tuple structs, unit structs, and enums whose
//! variants are unit, named, or tuple. Parsing is done directly on
//! `proc_macro::TokenStream` — no `syn`/`quote`, since the build
//! environment is offline. Generics and `#[serde(...)]` attributes are not
//! supported and produce a compile error rather than wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    /// No payload (`Unit` variant / unit struct).
    Unit,
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Tuple payload with this many fields.
    Tuple(usize),
}

/// The parsed item a derive applies to.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips leading attributes (`#[...]`) starting at `i`; returns the next
/// index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token list on top-level commas, tracking `<`/`>` depth so
/// commas inside generic arguments don't split.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts the field names of a named-fields body (`{ a: T, b: U }`).
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level_commas(body) {
        let i = skip_vis(&chunk, skip_attrs(&chunk, 0));
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

/// Parses the struct/enum the derive was applied to.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored derive"
            ));
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                None => Fields::Unit, // `struct S;` — the `;` may be absent in the stream
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&body)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(split_top_level_commas(&body).len())
                }
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<TokenTree>>()
                }
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            let mut variants = Vec::new();
            for chunk in split_top_level_commas(&body) {
                let j = skip_attrs(&chunk, 0);
                let vname = match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected variant name, found {other:?}")),
                };
                let fields = match chunk.get(j + 1) {
                    None => Fields::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let b: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Named(parse_named_fields(&b)?)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let b: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Tuple(split_top_level_commas(&b).len())
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        return Err(format!(
                            "explicit discriminant on `{name}::{vname}` is not supported"
                        ))
                    }
                    other => return Err(format!("unexpected variant body: {other:?}")),
                };
                variants.push((vname, fields));
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// `#[derive(Serialize)]` — structs become objects, unit variants strings,
/// data variants externally-tagged single-key objects (serde's default
/// representation).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(n) => {
                    if n == 1 {
                        "::serde::Serialize::to_value(&self.0)".to_string()
                    } else {
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                            .collect();
                        format!("::serde::Value::Array(vec![{}])", items.join(", "))
                    }
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                    ),
                    Fields::Named(fnames) => {
                        let binds = fnames.join(", ");
                        let entries: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {payload})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    src.parse().unwrap()
}

/// `#[derive(Deserialize)]` — inverse of the derived `Serialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = value; Ok({name})"),
                Fields::Named(names) => {
                    let fields_src: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::get_field(__fields, {f:?})?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "let __fields = value.as_object().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected object for {name}, found {{}}\", value.type_name())))?;\n\
                         Ok({name} {{ {} }})",
                        fields_src.join(" ")
                    )
                }
                Fields::Tuple(n) => {
                    if n == 1 {
                        format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
                    } else {
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        format!(
                            "let __items = value.as_array().ok_or_else(|| ::serde::Error::custom(\
                                 format!(\"expected array for {name}, found {{}}\", value.type_name())))?;\n\
                             if __items.len() != {n} {{\n\
                                 return Err(::serde::Error::custom(format!(\
                                     \"expected {n} elements for {name}, found {{}}\", __items.len())));\n\
                             }}\n\
                             Ok({name}({}))",
                            items.join(", ")
                        )
                    }
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| format!("{vname:?} => Ok({name}::{vname}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fnames) => {
                        let fields_src: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::get_field(__vf, {f:?})?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{vname:?} => {{\n\
                                 let __vf = __body.as_object().ok_or_else(|| ::serde::Error::custom(\
                                     format!(\"expected object body for {name}::{vname}\")))?;\n\
                                 Ok({name}::{vname} {{ {} }})\n\
                             }}",
                            fields_src.join(" ")
                        ))
                    }
                    Fields::Tuple(n) => {
                        if *n == 1 {
                            Some(format!(
                                "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(__body)?)),"
                            ))
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __items = __body.as_array().ok_or_else(|| ::serde::Error::custom(\
                                         format!(\"expected array body for {name}::{vname}\")))?;\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(::serde::Error::custom(\"wrong tuple arity for {name}::{vname}\"));\n\
                                     }}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => Err(::serde::Error::custom(format!(\
                                     \"unknown {name} variant {{__other:?}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                                 let (__tag, __body) = &__fields[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     __other => Err(::serde::Error::custom(format!(\
                                         \"unknown {name} variant {{__other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::Error::custom(format!(\
                                 \"expected {name} variant, found {{}}\", __other.type_name()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    src.parse().unwrap()
}
