//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`] (a xoshiro256++ generator seeded via SplitMix64),
//! the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, and
//! [`seq::SliceRandom`]. Streams are deterministic for a given seed but do
//! **not** match upstream rand's ChaCha-based `StdRng` byte-for-byte; all
//! in-repo consumers treat seeds as opaque reproducibility handles, never
//! as cross-implementation fixtures.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types with a uniform sampler over an interval. Having a single blanket
/// [`SampleRange`] impl per range shape (rather than one impl per concrete
/// type) is what lets `gen_range(-1.0..1.0)` infer `f64` from the float
/// literal, as upstream rand does.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `lo..hi` (`lo < hi` required).
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `lo..=hi` (`lo <= hi` required).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`] (`lo..hi` and `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = (lo as f64 + (hi as f64 - lo as f64) * unit) as $t;
                // Guard against rounding up to the exclusive bound.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

pub mod distributions {
    //! The `Standard` distribution backing [`Rng::gen`](crate::Rng::gen).

    use crate::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution: floats in `[0, 1)`, full range
    /// for integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draws a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Draws one value from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not a reproduction of upstream rand's ChaCha12-based `StdRng` — only
    /// the API matches. Quality is far beyond what randomized clustering
    /// seeds and test-case generation need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Snapshots the raw xoshiro256++ state, e.g. for checkpointing a
        /// randomized algorithm mid-run.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot. The
        /// restored generator continues the stream exactly where the
        /// snapshot was taken.
        ///
        /// # Panics
        /// Panics on the all-zero state, which is a xoshiro fixed point and
        /// can never be produced by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0, 0, 0, 0], "all-zero xoshiro state is invalid");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice shuffling and sampling, mirroring `rand::seq::SliceRandom`.

    use crate::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles the first `amount` elements into place, returning
        /// `(shuffled_prefix, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            let _: u64 = a.gen();
        }
        let snap = a.state();
        let mut b = StdRng::from_state(snap);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The snapshot itself is untouched by continued generation.
        assert_eq!(StdRng::from_state(snap).state(), snap);
    }

    #[test]
    #[should_panic(expected = "all-zero xoshiro state")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        let a_vals: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let c_vals: Vec<u64> = (0..10).map(|_| c.gen()).collect();
        assert_ne!(a_vals, c_vals);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(0..=4u8);
            assert!(i <= 4);
            let neg = rng.gen_range(-10..-2i32);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn partial_shuffle_prefix_len() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..20).collect();
        let (prefix, rest) = v.partial_shuffle(&mut rng, 5);
        assert_eq!(prefix.len(), 5);
        assert_eq!(rest.len(), 15);
        let (all, none) = v.partial_shuffle(&mut rng, 99);
        assert_eq!(all.len(), 20);
        assert!(none.is_empty());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
