//! Workspace-local stand-in for `criterion`.
//!
//! Provides the slice of the criterion API the workspace's benches use —
//! `Criterion`, `benchmark_group`/`sample_size`/`bench_with_input`/`finish`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness: calibrate iterations per sample, take `sample_size`
//! samples, report min/median/max per-iteration time to stdout.
//!
//! No statistical regression analysis, plots, or saved baselines; benches
//! remain human-comparable run-to-run and machine-parsable via the
//! `bench-result:` lines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall-clock duration of one sample during calibration.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(10);

/// Entry point handed to each `criterion_group!` target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(&name, self.sample_size_default(), routine);
    }

    fn sample_size_default(&self) -> usize {
        DEFAULT_SAMPLE_SIZE
    }
}

/// A named set of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, |b| routine(b));
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, |b| routine(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark as `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion accepted by the `bench_*` methods (a `BenchmarkId` or a
/// plain string label).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// How expensive `iter_batched` setup is relative to the routine. The
/// stand-in times the routine alone regardless, so the variants only
/// preserve source compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: one iteration, to size samples near the target time.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iters = iters_per_sample;
        bencher.elapsed = Duration::ZERO;
        routine(&mut bencher);
        per_iter_nanos.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_nanos.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_nanos[0];
    let median = per_iter_nanos[per_iter_nanos.len() / 2];
    let max = per_iter_nanos[per_iter_nanos.len() - 1];
    println!(
        "bench-result: {label:<50} time: [{} {} {}]",
        format_nanos(min),
        format_nanos(median),
        format_nanos(max),
    );
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.3} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Declares a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                n * 2
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed > Duration::ZERO || b.iters == 4);
    }

    #[test]
    fn format_scales_units() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_500.0).ends_with("µs"));
        assert!(format_nanos(12_500_000.0).ends_with("ms"));
        assert!(format_nanos(2_500_000_000.0).ends_with('s'));
    }
}
