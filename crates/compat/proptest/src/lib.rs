//! Workspace-local stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, `collection::{vec, hash_set}`, `option::weighted`,
//! `bool::ANY`, and the `proptest!`/`prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports
//! the raw failure message. Case generation is deterministic — the RNG is
//! seeded from a hash of the test name — so failures reproduce across runs.

use rand::rngs::StdRng;
use rand::Rng;

/// Number of accepted cases each property runs.
pub const DEFAULT_CASES: usize = 64;

/// A generator of values of type `Self::Value`.
///
/// Mirrors proptest's `Strategy` trait minus shrinking: `generate` draws one
/// value from the deterministic per-test RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Strategy,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        let seed = self.base.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// A strategy that always yields a clone of one value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Size specifications accepted by the collection strategies.
pub trait SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

pub mod collection {
    use super::*;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy producing a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy producing a `HashSet` whose cardinality is drawn from
    /// `size` (best-effort when the element domain is nearly saturated).
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            // Duplicate draws don't grow the set, so allow generous retries
            // before giving up (matches upstream's rejection-with-retry).
            let mut attempts = 0usize;
            while out.len() < target && attempts < 100 + 50 * target {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    use super::*;

    /// Strategy yielding `Some(inner)` with probability `p`, else `None`.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
        Weighted { p, inner }
    }

    pub struct Weighted<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(self.p) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    use super::*;

    /// Strategy yielding either boolean uniformly.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn generate(&self, rng: &mut StdRng) -> core::primitive::bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod test_runner {
    use super::*;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property was violated — the whole test fails.
        Fail(String),
        /// `prop_assume!` filtered this case out — draw another.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn seed_from_name(name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms, so each property has a
        // reproducible case sequence.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drives one property: draws cases until [`DEFAULT_CASES`] are
    /// accepted, panicking on the first failing case.
    pub fn run<F>(name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut rng = StdRng::seed_from_u64(seed_from_name(name));
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        let max_attempts = DEFAULT_CASES * 32;
        for attempt in 0..max_attempts {
            if accepted >= DEFAULT_CASES {
                return;
            }
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed on case {attempt}: {msg}");
                }
            }
        }
        if accepted == 0 {
            panic!(
                "property `{name}` rejected all {rejected} generated cases; \
                 loosen its prop_assume! filter"
            );
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
///
/// Mirrors proptest's macro of the same name for the `pat in strategy`
/// argument form used throughout this workspace.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
}

/// Fails the current case (with an optional formatted message) if the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Discards the current case (drawing a fresh one) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0u8..3, crate::bool::ANY)) {
            prop_assert!(a < 3);
            let _: bool = b;
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0usize..100, 2..8),
            s in crate::collection::hash_set(0usize..64, 1..=64usize),
        ) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(!s.is_empty());
            prop_assert_eq!(s.iter().filter(|&&x| x >= 64).count(), 0);
        }

        #[test]
        fn flat_map_threads_dependent_values(
            (n, v) in (1usize..6).prop_flat_map(|n| {
                crate::collection::vec(0.0..1.0f64, n..n + 1).prop_map(move |v| (n, v))
            }),
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_filters_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn option_weighted_produces_both_arms() {
        use crate::Strategy;
        use rand::SeedableRng;
        let strat = crate::option::weighted(0.5, 0usize..5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let draws: Vec<_> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(|d| d.is_some()));
        assert!(draws.iter().any(|d| d.is_none()));
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics() {
        crate::test_runner::run("always_fails", |_rng| Err(TestCaseError::fail("nope")));
    }
}
