//! Workspace-local stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: the
//! guards are returned directly from `lock()` / `read()` / `write()` with
//! no `Result`, and a poisoned std lock (a panicking holder) is recovered
//! rather than propagated, matching parking_lot's semantics of not
//! poisoning at all.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose accessors never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5usize);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable again.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
