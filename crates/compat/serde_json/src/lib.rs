//! Workspace-local stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses it
//! back, exposing the three entry points the workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`]. Numbers print via
//! Rust's shortest-roundtrip `Display` for `f64`, so a serialize →
//! deserialize cycle reproduces every finite float bit-for-bit; non-finite
//! floats serialize as `null` (as upstream serde_json does).

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// A `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a value of `T` out of JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

// ---- writer --------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // Keep integral floats recognizable as floats on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.error(&format!("unexpected character {:?}", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i32>("-12").unwrap(), -12);
    }

    #[test]
    fn float_bits_roundtrip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-10, 0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\n\"quoted\"\tµ ∆ \\backslash\\".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![Some(1.0f64), None, Some(-2.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1.0,null,-2.5]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = vec![vec![1u8], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  "), "expected indentation: {s}");
        assert_eq!(from_str::<Vec<Vec<u8>>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<bool>("trup").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<Vec<u8>>("[1,]2").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<f64>("1.0 garbage").is_err());
        assert!(from_str::<f64>("").is_err());
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&vec![f64::INFINITY]).unwrap(), "[null]");
    }
}
