//! The event model: what instrumented code emits and sinks consume.
//!
//! [`Event`] is borrow-only — names, fields, and the optional attachment
//! all point into the emitting stack frame, so building one costs no
//! allocation. Sinks that need to retain events past the `emit` call (the
//! in-memory test sink) convert to the owned mirror [`OwnedEvent`].

use std::any::Any;

/// The shape of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instantaneous observation (a loop iteration, a query, an error).
    Point,
    /// A completed timed region; carries a `duration_nanos` field.
    Span,
}

impl EventKind {
    /// Stable lower-case name used by the text and JSON sinks.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Point => "point",
            EventKind::Span => "span",
        }
    }
}

/// A typed field value borrowed from the emitting frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'a str),
}

impl From<bool> for FieldValue<'_> {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue<'_> {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue<'_> {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue<'_> {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue<'_> {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue<'_> {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> Self {
        FieldValue::Str(v)
    }
}

/// One key/value pair on an [`Event`].
#[derive(Debug, Clone, Copy)]
pub struct Field<'a> {
    pub key: &'a str,
    pub value: FieldValue<'a>,
}

impl<'a> Field<'a> {
    pub fn new(key: &'a str, value: impl Into<FieldValue<'a>>) -> Field<'a> {
        Field {
            key,
            value: value.into(),
        }
    }
}

/// A structured observation flowing from instrumented code to a [`Sink`].
///
/// Timestamps come in two flavours so consumers can both order events
/// across processes (`unix_nanos`, wall clock) and measure intervals
/// robustly (`elapsed_nanos`, monotonic since the [`Obs`] handle was
/// created).
///
/// `attachment` carries an arbitrary in-process payload — e.g. the FLOC
/// loop attaches its `FlocCheckpoint` so a checkpoint-writing sink can
/// downcast and persist it, while text/JSON sinks ignore it. This keeps
/// dc-obs free of knowledge about (and dependencies on) the domain types
/// it transports.
///
/// [`Sink`]: crate::Sink
/// [`Obs`]: crate::Obs
pub struct Event<'a> {
    /// Dotted event name, e.g. `floc.iteration` or `serve.query`.
    pub name: &'a str,
    pub kind: EventKind,
    /// Wall-clock time in nanoseconds since the unix epoch.
    pub unix_nanos: u128,
    /// Monotonic nanoseconds since the emitting [`Obs`] was created.
    ///
    /// [`Obs`]: crate::Obs
    pub elapsed_nanos: u64,
    pub fields: &'a [Field<'a>],
    /// Optional in-process payload for downcasting sinks.
    pub attachment: Option<&'a dyn Any>,
}

impl<'a> Event<'a> {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<FieldValue<'a>> {
        self.fields.iter().find(|f| f.key == key).map(|f| f.value)
    }
}

/// Owned mirror of [`FieldValue`], for sinks that retain events.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl OwnedValue {
    fn of(v: FieldValue<'_>) -> OwnedValue {
        match v {
            FieldValue::Bool(b) => OwnedValue::Bool(b),
            FieldValue::U64(n) => OwnedValue::U64(n),
            FieldValue::I64(n) => OwnedValue::I64(n),
            FieldValue::F64(x) => OwnedValue::F64(x),
            FieldValue::Str(s) => OwnedValue::Str(s.to_string()),
        }
    }
}

/// Owned mirror of [`Event`] stored by [`MemorySink`]. Attachments are
/// borrow-only and cannot be cloned generically, so only their presence is
/// recorded.
///
/// [`MemorySink`]: crate::MemorySink
#[derive(Debug, Clone)]
pub struct OwnedEvent {
    pub name: String,
    pub kind: EventKind,
    pub unix_nanos: u128,
    pub elapsed_nanos: u64,
    pub fields: Vec<(String, OwnedValue)>,
    pub had_attachment: bool,
}

impl OwnedEvent {
    pub fn of(event: &Event<'_>) -> OwnedEvent {
        OwnedEvent {
            name: event.name.to_string(),
            kind: event.kind,
            unix_nanos: event.unix_nanos,
            elapsed_nanos: event.elapsed_nanos,
            fields: event
                .fields
                .iter()
                .map(|f| (f.key.to_string(), OwnedValue::of(f.value)))
                .collect(),
            had_attachment: event.attachment.is_some(),
        }
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&OwnedValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Convenience accessor for numeric fields stored as `U64`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(OwnedValue::U64(n)) => Some(*n),
            _ => None,
        }
    }

    /// Convenience accessor for `F64` fields.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        match self.field(key) {
            Some(OwnedValue::F64(x)) => Some(*x),
            _ => None,
        }
    }

    /// Convenience accessor for string fields.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(OwnedValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_finds_typed_values() {
        let fields = [
            Field::new("iter", 3usize),
            Field::new("residue", 0.25f64),
            Field::new("engine", "incremental"),
            Field::new("improved", true),
        ];
        let e = Event {
            name: "floc.iteration",
            kind: EventKind::Point,
            unix_nanos: 0,
            elapsed_nanos: 0,
            fields: &fields,
            attachment: None,
        };
        assert_eq!(e.field("iter"), Some(FieldValue::U64(3)));
        assert_eq!(e.field("residue"), Some(FieldValue::F64(0.25)));
        assert_eq!(e.field("engine"), Some(FieldValue::Str("incremental")));
        assert_eq!(e.field("improved"), Some(FieldValue::Bool(true)));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn owned_event_mirrors_fields_and_attachment_presence() {
        let payload = 42u32;
        let fields = [Field::new("n", 7u64)];
        let e = Event {
            name: "x",
            kind: EventKind::Span,
            unix_nanos: 10,
            elapsed_nanos: 5,
            fields: &fields,
            attachment: Some(&payload),
        };
        let o = OwnedEvent::of(&e);
        assert_eq!(o.name, "x");
        assert_eq!(o.kind, EventKind::Span);
        assert_eq!(o.u64_field("n"), Some(7));
        assert!(o.had_attachment);
        assert_eq!(o.str_field("n"), None);
    }
}
