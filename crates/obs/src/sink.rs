//! Sinks: where events go.
//!
//! A sink receives every event emitted through an [`Obs`] handle, possibly
//! from several threads at once, so implementations use interior mutability
//! (`Mutex`) and the trait takes `&self`. Sinks must never panic on odd
//! input — observability failing must not take the computation down.
//!
//! [`Obs`]: crate::Obs

use crate::event::{Event, FieldValue, OwnedEvent};
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

/// Recover from a poisoned lock: a sink panicking on one thread must not
/// silence observability on every other thread.
pub(crate) fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Consumer of structured [`Event`]s.
///
/// `emit` is called synchronously on the emitting thread; keep it cheap
/// (format + buffered write, or push to a queue). `flush` is called at
/// orderly shutdown points.
pub trait Sink: Send + Sync {
    fn emit(&self, event: &Event<'_>);
    fn flush(&self) {}
}

/// Discards everything. [`Obs::null()`] short-circuits before reaching any
/// sink, so `NullSink` mostly exists to make "no observation" expressible
/// where a concrete sink is required (tests, fanout slots).
///
/// [`Obs::null()`]: crate::Obs::null
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event<'_>) {}
}

/// Human-readable lines, one per event:
///
/// ```text
/// [   0.134s] floc.iteration iteration=3 avg_residue=1.2345 ...
/// ```
pub struct TextSink<W: Write + Send> {
    out: Mutex<W>,
}

impl TextSink<std::io::Stderr> {
    /// The conventional destination for human logs: stderr, leaving stdout
    /// to machine-readable output.
    pub fn stderr() -> Self {
        TextSink::new(std::io::stderr())
    }
}

impl<W: Write + Send> TextSink<W> {
    pub fn new(out: W) -> Self {
        TextSink {
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> Sink for TextSink<W> {
    fn emit(&self, event: &Event<'_>) {
        let mut out = relock(&self.out);
        let secs = event.elapsed_nanos as f64 / 1e9;
        let _ = write!(out, "[{secs:>9.3}s] {}", event.name);
        for f in event.fields {
            let _ = match f.value {
                FieldValue::Bool(b) => write!(out, " {}={b}", f.key),
                FieldValue::U64(n) => write!(out, " {}={n}", f.key),
                FieldValue::I64(n) => write!(out, " {}={n}", f.key),
                FieldValue::F64(x) => write!(out, " {}={x:.6}", f.key),
                FieldValue::Str(s) => write!(out, " {}={s}", f.key),
            };
        }
        let _ = writeln!(out);
    }

    fn flush(&self) {
        let _ = relock(&self.out).flush();
    }
}

/// JSON-lines output (`mine --log json | jq`), one object per event.
///
/// Envelope keys — reserved, never used as field names by instrumented
/// code — are `event`, `kind`, `unix_ms`, `elapsed_us`; every emitted
/// field is flattened into the same object. Each line is flushed as it is
/// written so a downstream pipe (`jq`, `tail -f`) sees events live.
pub struct JsonSink<W: Write + Send> {
    out: Mutex<W>,
}

impl JsonSink<std::io::Stdout> {
    pub fn stdout() -> Self {
        JsonSink::new(std::io::stdout())
    }
}

impl<W: Write + Send> JsonSink<W> {
    pub fn new(out: W) -> Self {
        JsonSink {
            out: Mutex::new(out),
        }
    }
}

fn write_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn write_json_value(buf: &mut String, v: FieldValue<'_>) {
    match v {
        FieldValue::Bool(b) => buf.push_str(if b { "true" } else { "false" }),
        FieldValue::U64(n) => buf.push_str(&n.to_string()),
        FieldValue::I64(n) => buf.push_str(&n.to_string()),
        // Non-finite floats have no JSON representation; null keeps the
        // line parseable rather than corrupting the whole stream.
        FieldValue::F64(x) if x.is_finite() => buf.push_str(&format!("{x}")),
        FieldValue::F64(_) => buf.push_str("null"),
        FieldValue::Str(s) => write_json_str(buf, s),
    }
}

/// Renders one event as a single JSON object (no trailing newline).
pub fn event_to_json(event: &Event<'_>) -> String {
    let mut buf = String::with_capacity(128);
    buf.push_str("{\"event\":");
    write_json_str(&mut buf, event.name);
    buf.push_str(",\"kind\":\"");
    buf.push_str(event.kind.as_str());
    // Milliseconds / microseconds keep every envelope number well inside
    // the 2^53 range that JSON consumers can represent exactly.
    buf.push_str("\",\"unix_ms\":");
    buf.push_str(&((event.unix_nanos / 1_000_000) as u64).to_string());
    buf.push_str(",\"elapsed_us\":");
    buf.push_str(&(event.elapsed_nanos / 1_000).to_string());
    for f in event.fields {
        buf.push(',');
        write_json_str(&mut buf, f.key);
        buf.push(':');
        write_json_value(&mut buf, f.value);
    }
    buf.push('}');
    buf
}

impl<W: Write + Send> Sink for JsonSink<W> {
    fn emit(&self, event: &Event<'_>) {
        let line = event_to_json(event);
        let mut out = relock(&self.out);
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    fn flush(&self) {
        let _ = relock(&self.out).flush();
    }
}

/// Retains every event in memory (as [`OwnedEvent`]); clones share the
/// same buffer, so tests can hand one clone to [`Obs::new`] and inspect
/// the other afterwards.
///
/// [`Obs::new`]: crate::Obs::new
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<OwnedEvent>>>,
}

impl MemorySink {
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<OwnedEvent> {
        relock(&self.events).clone()
    }

    pub fn len(&self) -> usize {
        relock(&self.events).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events with the given name.
    pub fn named(&self, name: &str) -> Vec<OwnedEvent> {
        relock(&self.events)
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event<'_>) {
        relock(&self.events).push(OwnedEvent::of(event));
    }
}

/// Broadcasts each event to every inner sink, in order.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Sink>>,
}

impl Fanout {
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        Fanout { sinks }
    }

    pub fn push(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }

    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Sink for Fanout {
    fn emit(&self, event: &Event<'_>) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Field};

    fn sample<'a>(fields: &'a [Field<'a>]) -> Event<'a> {
        Event {
            name: "test.event",
            kind: EventKind::Point,
            unix_nanos: 1_700_000_000_123_456_789,
            elapsed_nanos: 2_500_000,
            fields,
            attachment: None,
        }
    }

    #[test]
    fn json_rendering_is_flat_and_escaped() {
        let fields = [
            Field::new("n", 3u64),
            Field::new("ratio", 0.5f64),
            Field::new("label", "a\"b\\c\nd"),
            Field::new("neg", -4i64),
            Field::new("ok", true),
        ];
        let line = event_to_json(&sample(&fields));
        assert_eq!(
            line,
            "{\"event\":\"test.event\",\"kind\":\"point\",\
             \"unix_ms\":1700000000123,\"elapsed_us\":2500,\
             \"n\":3,\"ratio\":0.5,\"label\":\"a\\\"b\\\\c\\nd\",\
             \"neg\":-4,\"ok\":true}"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let fields = [Field::new("x", f64::NAN), Field::new("y", f64::INFINITY)];
        let line = event_to_json(&sample(&fields));
        assert!(line.contains("\"x\":null"));
        assert!(line.contains("\"y\":null"));
    }

    #[test]
    fn memory_sink_clones_share_storage() {
        let sink = MemorySink::new();
        let handle = sink.clone();
        sink.emit(&sample(&[]));
        sink.emit(&sample(&[]));
        assert_eq!(handle.len(), 2);
        assert_eq!(handle.named("test.event").len(), 2);
        assert!(handle.named("other").is_empty());
    }

    #[test]
    fn fanout_broadcasts_in_order() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let fan = Fanout::new(vec![Box::new(a.clone()), Box::new(b.clone())]);
        fan.emit(&sample(&[]));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn text_sink_writes_one_line_per_event() {
        let buf: Vec<u8> = Vec::new();
        let sink = TextSink::new(buf);
        let fields = [Field::new("iter", 1u64)];
        sink.emit(&sample(&fields));
        let out = sink.out.into_inner().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("test.event"));
        assert!(text.contains("iter=1"));
    }
}
