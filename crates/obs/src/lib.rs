//! # dc-obs — structured observability with zero dependencies
//!
//! Every long-running piece of this workspace (the FLOC search loop, the
//! concurrent query engine, the benchmark harness) wants the same three
//! things: *what happened*, *when*, and *how long it took* — without
//! perturbing the computation it is watching. This crate provides them as
//! a small, dependency-free event model:
//!
//! - [`Event`] — a named, timestamped record with typed key/value
//!   [`Field`]s and an optional `&dyn Any` attachment for in-process
//!   consumers (e.g. the FLOC checkpoint payload).
//! - [`Sink`] — where events go. Shipped sinks: [`TextSink`] (human
//!   lines), [`JsonSink`] (JSON-lines for `| jq`), [`MemorySink`] (tests),
//!   [`NullSink`], and [`Fanout`] for composition. [`MetricsSink`]
//!   aggregates counts and duration histograms for a final `metrics.json`.
//! - [`Obs`] — the handle instrumented code holds. It is a
//!   `Option<Arc<…>>` internally: [`Obs::null()`] costs one pointer and
//!   every emission site is guarded by [`Obs::enabled()`], so the
//!   uninstrumented path stays bit-identical and essentially free. There
//!   is deliberately no global/static registry; the handle is threaded
//!   through call sites explicitly.
//! - Measurement primitives: [`SpanTimer`] (monotonic + wall-clock spans),
//!   [`Counter`], the log₂-bucket [`Histogram`] generalised from the
//!   serve latency histogram, and [`PhaseTimer`] for coarse benchmark
//!   phases.
//!
//! ## Determinism contract
//!
//! Instrumentation must only *read* the state it reports: no RNG draws, no
//! floating-point arithmetic that feeds back into the computation, no
//! control-flow decisions based on `enabled()` beyond skipping emission.
//! `dc-floc` property-tests this contract (an observed run is bit-identical
//! to an unobserved one, including checkpoints and resume).

mod event;
mod handle;
mod metrics;
mod sink;

pub use event::{Event, EventKind, Field, FieldValue, OwnedEvent, OwnedValue};
pub use handle::{Obs, SpanTimer};
pub use metrics::{
    bucket_of, Counter, Histogram, HistogramSummary, MetricsEntry, MetricsSink, PhaseTimer,
    Stopwatch, HISTOGRAM_BUCKETS,
};
pub use sink::{Fanout, JsonSink, MemorySink, NullSink, Sink, TextSink};
