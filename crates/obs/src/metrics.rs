//! Measurement primitives: counters, log₂ histograms, phase timers, and
//! the aggregating [`MetricsSink`] behind `metrics.json` artifacts.
//!
//! The histogram generalises the latency histogram that grew up inside
//! `dc-serve`: power-of-two buckets, cheap enough to update on every
//! query, with quantile estimates that are upper bounds carrying at most
//! 2× resolution error.

use crate::event::{Event, FieldValue};
use crate::sink::{relock, Sink};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of power-of-two histogram buckets. Bucket `i` holds values in
/// `[2^(i-1), 2^i)` (bucket 0 holds the value 0); the last bucket absorbs
/// everything ≥ 2^(BUCKETS-2) — about 34 s when the unit is nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 36;

/// Bucket index for a sample: `⌈log₂(value)⌉ + 1`, clamped to the last
/// bucket. Public so code persisting raw bucket vectors (the serve stats
/// format) can stay bit-compatible with [`Histogram`].
pub fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// A monotonically increasing tally.
///
/// Deliberately plain (`&mut self`): per-thread counters that get merged,
/// not shared atomics, match how the workspace parallelises work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    pub fn new() -> Counter {
        Counter(0)
    }

    pub fn inc(&mut self) {
        self.0 += 1;
    }

    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    pub fn get(self) -> u64 {
        self.0
    }
}

/// Log₂-bucket histogram over `u64` samples (typically nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            total: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Rebuilds a histogram from persisted parts (the serve stats format
    /// stores raw buckets plus the exact total). Bucket vectors of the
    /// wrong length are padded/truncated to [`HISTOGRAM_BUCKETS`].
    pub fn from_parts(mut buckets: Vec<u64>, total: u64) -> Histogram {
        buckets.resize(HISTOGRAM_BUCKETS, 0);
        let count = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            total,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(value);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Exact mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// Histogram-estimated quantile (`q` in `[0, 1]`): the upper bound of
    /// the bucket containing the q-th ordered sample. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (HISTOGRAM_BUCKETS - 1)
    }
}

/// Compact rendering of a [`Histogram`] for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub total: u64,
    pub mean: u64,
    pub p50: u64,
    pub p99: u64,
}

impl HistogramSummary {
    pub fn of(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            total: h.total(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p99: h.quantile(0.99),
        }
    }
}

/// A started monotonic clock paired with nothing else — the smallest
/// useful timer. `elapsed_nanos` saturates rather than wrapping.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Coarse sequential phase timing for benchmark and experiment binaries:
/// `start("generate")`, `start("mine")`, … — starting a phase closes the
/// previous one. Closed phases are retained (name, seconds) for embedding
/// into `BENCH_*.json`, and each is also emitted as a `bench.phase` span
/// on the supplied [`Obs`](crate::Obs) handle.
#[derive(Debug)]
pub struct PhaseTimer {
    obs: crate::Obs,
    phases: Vec<(String, f64)>,
    current: Option<(String, Instant)>,
}

impl PhaseTimer {
    pub fn new(obs: &crate::Obs) -> PhaseTimer {
        PhaseTimer {
            obs: obs.clone(),
            phases: Vec::new(),
            current: None,
        }
    }

    /// Begins a phase, closing any phase already running.
    pub fn start(&mut self, name: &str) {
        self.finish();
        self.current = Some((name.to_string(), Instant::now()));
    }

    /// Closes the running phase, if any.
    pub fn finish(&mut self) {
        if let Some((name, started)) = self.current.take() {
            let secs = started.elapsed().as_secs_f64();
            if self.obs.enabled() {
                self.obs.emit_full(
                    crate::EventKind::Span,
                    "bench.phase",
                    &[
                        crate::Field::new("phase", name.as_str()),
                        crate::Field::new(
                            "duration_nanos",
                            started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                        ),
                        crate::Field::new("secs", secs),
                    ],
                    None,
                );
            }
            self.phases.push((name, secs));
        }
    }

    /// Completed phases in execution order: `(name, seconds)`.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[derive(Debug, Default, Clone)]
struct EventMetrics {
    count: u64,
    durations: Histogram,
}

/// Aggregated view of one event name, from [`MetricsSink::snapshot`].
#[derive(Debug, Clone)]
pub struct MetricsEntry {
    pub name: String,
    /// How many events were seen under this name.
    pub count: u64,
    /// Distribution of `duration_nanos` fields, when the events carried
    /// one (spans always do).
    pub durations: Option<HistogramSummary>,
}

/// A sink that aggregates instead of streaming: per event name it keeps a
/// count and a histogram of `duration_nanos` fields. Clones share storage,
/// so keep one clone and box another into the fanout, then render
/// [`snapshot`](MetricsSink::snapshot) into a final `metrics.json`.
#[derive(Debug, Default, Clone)]
pub struct MetricsSink {
    by_name: Arc<Mutex<BTreeMap<String, EventMetrics>>>,
}

impl MetricsSink {
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Aggregates seen so far, sorted by event name.
    pub fn snapshot(&self) -> Vec<MetricsEntry> {
        relock(&self.by_name)
            .iter()
            .map(|(name, m)| MetricsEntry {
                name: name.clone(),
                count: m.count,
                durations: (!m.durations.is_empty()).then(|| HistogramSummary::of(&m.durations)),
            })
            .collect()
    }
}

impl Sink for MetricsSink {
    fn emit(&self, event: &Event<'_>) {
        let mut map = relock(&self.by_name);
        let m = map.entry(event.name.to_string()).or_default();
        m.count += 1;
        if let Some(FieldValue::U64(nanos)) = event.field("duration_nanos") {
            m.durations.record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Obs};

    #[test]
    fn histogram_buckets_are_log_scaled() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(100_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.total(), 99 * 100 + 100_000);
        assert!(h.quantile(0.5) <= 128);
        assert!(h.quantile(0.995) >= 100_000);
        assert_eq!(h.mean(), (99 * 100 + 100_000) / 100);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket i (i ≥ 1) holds [2^(i-1), 2^i): each power of two starts
        // a new bucket, and the value just below it closes the previous.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_of(lo), i, "2^{} should open bucket {i}", i - 1);
            assert_eq!(bucket_of(hi), i, "2^{i}-1 should still be in bucket {i}");
        }
        // Everything at or past 2^(BUCKETS-2) clamps into the last bucket.
        let last = HISTOGRAM_BUCKETS - 1;
        assert_eq!(bucket_of(1u64 << (HISTOGRAM_BUCKETS - 2)), last);
        assert_eq!(bucket_of(u64::MAX / 2), last);
        assert_eq!(bucket_of(u64::MAX), last);
    }

    #[test]
    fn extreme_samples_round_trip_through_the_histogram() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        // total saturates instead of wrapping.
        assert_eq!(h.total(), u64::MAX);
        // The top quantile reports the last bucket's upper bound, never 0.
        assert_eq!(h.quantile(1.0), 1u64 << (HISTOGRAM_BUCKETS - 1));
        assert_eq!(h.quantile(0.0), 1); // rank clamps to the 1st sample
    }

    #[test]
    fn merge_preserves_counts_totals_and_quantiles() {
        // Build one histogram two ways: all samples into `whole`, the same
        // samples split across `a` and `b` then merged. The results must be
        // identical — this is the invariant QueryStats::snapshot() relies
        // on when folding per-thread histograms.
        let samples = [0u64, 1, 2, 3, 500, 1024, 65_536, u64::MAX];
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
        // Merging an empty histogram is the identity.
        a.merge(&Histogram::new());
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_saturates_total_rather_than_wrapping() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(u64::MAX);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.total(), u64::MAX);
        assert_eq!(a.mean(), u64::MAX / 2);
    }

    #[test]
    fn histogram_merge_and_round_trip_through_parts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        b.record(40);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total(), 70);
        let back = Histogram::from_parts(a.buckets().to_vec(), a.total());
        assert_eq!(back, a);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.inc();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn phase_timer_records_ordered_phases_and_emits_spans() {
        let sink = crate::MemorySink::new();
        let obs = Obs::new(sink.clone());
        let mut t = PhaseTimer::new(&obs);
        t.start("generate");
        t.start("mine");
        t.finish();
        let names: Vec<&str> = t.phases().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["generate", "mine"]);
        assert!(t.phases().iter().all(|&(_, s)| s >= 0.0));
        let spans = sink.named("bench.phase");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].str_field("phase"), Some("generate"));
        assert!(spans[0].u64_field("duration_nanos").is_some());
    }

    #[test]
    fn metrics_sink_aggregates_counts_and_durations() {
        let metrics = MetricsSink::new();
        let obs = Obs::new(metrics.clone());
        obs.emit("a", &[Field::new("duration_nanos", 100u64)]);
        obs.emit("a", &[Field::new("duration_nanos", 200u64)]);
        obs.emit("b", &[]);
        let snap = metrics.snapshot();
        assert_eq!(snap.len(), 2);
        let a = snap.iter().find(|e| e.name == "a").unwrap();
        assert_eq!(a.count, 2);
        let d = a.durations.unwrap();
        assert_eq!(d.count, 2);
        assert_eq!(d.total, 300);
        let b = snap.iter().find(|e| e.name == "b").unwrap();
        assert_eq!(b.count, 1);
        assert!(b.durations.is_none());
    }
}
