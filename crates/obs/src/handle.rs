//! The [`Obs`] handle: how instrumented code reaches its sink.
//!
//! There is deliberately no global registry or `static` state — the handle
//! is passed through call sites explicitly, which keeps library code
//! honest about what it observes and makes tests hermetic. A disabled
//! handle ([`Obs::null`]) is a `None` and costs one branch per emission
//! site; callers building non-trivial field arrays should guard with
//! [`Obs::enabled`] first.

use crate::event::{Event, EventKind, Field};
use crate::sink::{Fanout, Sink};
use std::any::Any;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct Inner {
    sink: Box<dyn Sink>,
    /// Monotonic epoch: `elapsed_nanos` on every event is measured from
    /// here, so intervals are immune to wall-clock adjustment.
    epoch: Instant,
    /// Wall-clock reading taken at the same moment as `epoch`.
    epoch_unix_nanos: u128,
}

/// A cheap, cloneable observability handle.
///
/// Cloning shares the underlying sink (one `Arc` bump), so the same handle
/// can be held by the CLI, the FLOC loop, and worker threads at once.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl Obs {
    /// The disabled handle: every emission is a no-op after one branch.
    pub fn null() -> Obs {
        Obs { inner: None }
    }

    /// A handle delivering events to `sink`.
    pub fn new(sink: impl Sink + 'static) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                sink: Box::new(sink),
                epoch: Instant::now(),
                epoch_unix_nanos: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_nanos())
                    .unwrap_or(0),
            })),
        }
    }

    /// A handle broadcasting to several sinks; empty input yields
    /// [`Obs::null`] so callers can build the list unconditionally.
    pub fn fanout(sinks: Vec<Box<dyn Sink>>) -> Obs {
        match sinks.len() {
            0 => Obs::null(),
            1 => {
                let mut sinks = sinks;
                Obs::new(SoleSink(sinks.pop().expect("len checked")))
            }
            _ => Obs::new(Fanout::new(sinks)),
        }
    }

    /// Whether events will actually be delivered. Guard field construction
    /// with this on hot paths.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits a point event.
    pub fn emit(&self, name: &str, fields: &[Field<'_>]) {
        self.emit_full(EventKind::Point, name, fields, None);
    }

    /// Emits an event with explicit kind and optional attachment.
    pub fn emit_full(
        &self,
        kind: EventKind,
        name: &str,
        fields: &[Field<'_>],
        attachment: Option<&dyn Any>,
    ) {
        let Some(inner) = &self.inner else { return };
        let elapsed = inner.epoch.elapsed().as_nanos();
        inner.sink.emit(&Event {
            name,
            kind,
            unix_nanos: inner.epoch_unix_nanos + elapsed,
            elapsed_nanos: elapsed.min(u64::MAX as u128) as u64,
            fields,
            attachment,
        });
    }

    /// Starts a timed span; finish it with [`SpanTimer::finish`] or let it
    /// drop. Calling on a disabled handle still returns a timer (the time
    /// measurement itself is a few nanoseconds) but nothing is emitted.
    pub fn span(&self, name: &'static str) -> SpanTimer {
        SpanTimer {
            obs: self.clone(),
            name,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Flushes the underlying sink(s).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Adapter so `Obs::fanout` with one sink avoids the broadcast loop.
struct SoleSink(Box<dyn Sink>);

impl Sink for SoleSink {
    fn emit(&self, event: &Event<'_>) {
        self.0.emit(event);
    }
    fn flush(&self) {
        self.0.flush();
    }
}

/// A running span. On [`finish`](SpanTimer::finish) (or drop) it emits a
/// [`EventKind::Span`] event named at creation, with `duration_nanos`
/// prepended to any caller-supplied fields.
pub struct SpanTimer {
    obs: Obs,
    name: &'static str,
    start: Instant,
    armed: bool,
}

impl SpanTimer {
    /// Elapsed time so far, without ending the span.
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Ends the span, attaching extra fields to the emitted event.
    pub fn finish(mut self, fields: &[Field<'_>]) {
        self.emit_end(fields);
    }

    /// Ends the span without emitting anything (e.g. the operation failed
    /// and an error event supersedes it).
    pub fn cancel(mut self) {
        self.armed = false;
    }

    fn emit_end(&mut self, fields: &[Field<'_>]) {
        if !self.armed {
            return;
        }
        self.armed = false;
        if !self.obs.enabled() {
            return;
        }
        let mut all = Vec::with_capacity(fields.len() + 1);
        all.push(Field::new("duration_nanos", self.elapsed_nanos()));
        all.extend_from_slice(fields);
        self.obs.emit_full(EventKind::Span, self.name, &all, None);
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.emit_end(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OwnedValue;
    use crate::sink::MemorySink;

    #[test]
    fn null_handle_is_disabled_and_emits_nothing() {
        let obs = Obs::null();
        assert!(!obs.enabled());
        obs.emit("x", &[Field::new("n", 1u64)]);
        obs.flush(); // no-op, must not panic
    }

    #[test]
    fn events_carry_monotonic_and_wall_clock_time() {
        let sink = MemorySink::new();
        let obs = Obs::new(sink.clone());
        obs.emit("a", &[]);
        std::thread::sleep(std::time::Duration::from_millis(2));
        obs.emit("b", &[]);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(events[1].elapsed_nanos > events[0].elapsed_nanos);
        assert!(events[1].unix_nanos > events[0].unix_nanos);
        // Wall-clock and monotonic readings advance together.
        let wall = (events[1].unix_nanos - events[0].unix_nanos) as i128;
        let mono = (events[1].elapsed_nanos - events[0].elapsed_nanos) as i128;
        assert!((wall - mono).abs() < 1_000_000_000, "{wall} vs {mono}");
    }

    #[test]
    fn span_emits_duration_on_finish_and_on_drop() {
        let sink = MemorySink::new();
        let obs = Obs::new(sink.clone());
        obs.span("op.finished").finish(&[Field::new("n", 2u64)]);
        {
            let _span = obs.span("op.dropped");
        }
        let finished = sink.named("op.finished");
        assert_eq!(finished.len(), 1);
        assert!(finished[0].u64_field("duration_nanos").is_some());
        assert_eq!(finished[0].u64_field("n"), Some(2));
        assert_eq!(sink.named("op.dropped").len(), 1);
    }

    #[test]
    fn cancelled_span_emits_nothing() {
        let sink = MemorySink::new();
        let obs = Obs::new(sink.clone());
        obs.span("op").cancel();
        assert!(sink.is_empty());
    }

    #[test]
    fn fanout_constructor_handles_empty_and_single() {
        assert!(!Obs::fanout(vec![]).enabled());
        let sink = MemorySink::new();
        let obs = Obs::fanout(vec![Box::new(sink.clone())]);
        obs.emit("x", &[]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = MemorySink::new();
        let obs = Obs::new(sink.clone());
        let obs2 = obs.clone();
        obs.emit("a", &[]);
        obs2.emit("b", &[]);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn attachment_round_trips_through_emit_full() {
        struct Probe;
        impl Sink for Probe {
            fn emit(&self, event: &Event<'_>) {
                let n = event
                    .attachment
                    .and_then(|a| a.downcast_ref::<u32>())
                    .copied();
                assert_eq!(n, Some(99));
            }
        }
        let obs = Obs::new(Probe);
        let payload = 99u32;
        obs.emit_full(EventKind::Point, "x", &[], Some(&payload));
    }

    #[test]
    fn field_lookup_on_owned_events() {
        let sink = MemorySink::new();
        let obs = Obs::new(sink.clone());
        obs.emit("x", &[Field::new("s", "hi"), Field::new("f", 1.5f64)]);
        let e = &sink.events()[0];
        assert_eq!(e.str_field("s"), Some("hi"));
        assert_eq!(e.f64_field("f"), Some(1.5));
        assert_eq!(e.field("nope"), None);
        assert_eq!(e.field("s"), Some(&OwnedValue::Str("hi".into())));
    }
}
