//! Erlang-distributed sampling.
//!
//! The paper's Figure 9 / Table 5 experiments draw embedded-cluster volumes
//! from an Erlang distribution of fixed mean and varying variance
//! (referencing Kleinrock's *Queueing Systems*). An Erlang(k, λ) variable is
//! the sum of `k` independent exponentials of rate `λ`, with mean `k/λ` and
//! variance `k/λ²`. Given a target `(mean, variance)` we pick
//! `k = round(mean²/variance)` (at least 1) and `λ = k/mean`; variance 0
//! degenerates to the constant `mean`.

use rand::Rng;

/// An Erlang distribution parameterized by target mean and variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    /// Shape (number of exponential stages); 0 encodes the degenerate
    /// constant distribution.
    shape: usize,
    /// Rate of each stage.
    rate: f64,
    /// The requested mean (returned exactly in the degenerate case).
    mean: f64,
}

impl Erlang {
    /// Builds the distribution from a target mean and variance.
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `variance >= 0`.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Erlang {
        assert!(mean > 0.0, "mean must be positive, got {mean}");
        assert!(
            variance >= 0.0,
            "variance must be non-negative, got {variance}"
        );
        if variance == 0.0 {
            return Erlang {
                shape: 0,
                rate: 0.0,
                mean,
            };
        }
        let shape = ((mean * mean / variance).round() as usize).max(1);
        Erlang {
            shape,
            rate: shape as f64 / mean,
            mean,
        }
    }

    /// The shape `k` (0 for the degenerate constant distribution).
    pub fn shape(&self) -> usize {
        self.shape
    }

    /// The exact mean of the distribution as constructed.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The actual variance of the distribution as constructed (the target
    /// is matched only approximately because the shape is an integer).
    pub fn variance(&self) -> f64 {
        if self.shape == 0 {
            0.0
        } else {
            self.shape as f64 / (self.rate * self.rate)
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.shape == 0 {
            return self.mean;
        }
        // Sum of k exponentials = −ln(∏ Uᵢ)/λ; the product form does one
        // logarithm instead of k.
        let mut product = 1.0f64;
        for _ in 0..self.shape {
            // gen samples in [0, 1); flip to (0, 1] to keep ln finite.
            product *= 1.0 - rng.gen::<f64>();
        }
        -product.ln() / self.rate
    }

    /// Draws a sample clamped to `[lo, hi]` and rounded to the nearest
    /// integer — the form used for cluster volumes.
    pub fn sample_clamped_int<R: Rng>(&self, rng: &mut R, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "invalid clamp range");
        (self.sample(rng).round() as i64).clamp(lo as i64, hi as i64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn zero_variance_is_constant() {
        let e = Erlang::from_mean_variance(300.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(e.sample(&mut rng), 300.0);
        }
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.shape(), 0);
    }

    #[test]
    fn empirical_mean_matches() {
        let e = Erlang::from_mean_variance(50.0, 200.0);
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| e.sample(&mut rng)).collect();
        let (mean, var) = stats(&samples);
        assert!((mean - 50.0).abs() < 1.5, "empirical mean {mean}");
        assert!(
            (var - e.variance()).abs() < 0.15 * e.variance(),
            "empirical var {var} vs constructed {}",
            e.variance()
        );
    }

    #[test]
    fn constructed_variance_approximates_target() {
        for target_var in [10.0, 100.0, 900.0] {
            let e = Erlang::from_mean_variance(300.0, target_var);
            // Integer shape rounding keeps the achieved variance within a
            // factor of ~2 of the target for reasonable parameters.
            assert!(
                e.variance() > 0.3 * target_var && e.variance() < 3.0 * target_var,
                "target {target_var}, constructed {}",
                e.variance()
            );
        }
    }

    #[test]
    fn samples_are_positive() {
        let e = Erlang::from_mean_variance(10.0, 50.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(e.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn clamped_int_respects_bounds() {
        let e = Erlang::from_mean_variance(20.0, 400.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = e.sample_clamped_int(&mut rng, 5, 40);
            assert!((5..=40).contains(&v));
        }
    }

    #[test]
    fn higher_variance_means_lower_shape() {
        let tight = Erlang::from_mean_variance(100.0, 10.0);
        let loose = Erlang::from_mean_variance(100.0, 5000.0);
        assert!(tight.shape() > loose.shape());
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn non_positive_mean_panics() {
        let _ = Erlang::from_mean_variance(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_variance_panics() {
        let _ = Erlang::from_mean_variance(1.0, -1.0);
    }
}
