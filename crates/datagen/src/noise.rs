//! Noise models for synthetic matrices.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A one-dimensional noise distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Noise {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive, unless equal to `lo`).
        hi: f64,
    },
    /// Gaussian with the given mean and standard deviation (Box–Muller).
    Gaussian {
        /// Mean.
        mean: f64,
        /// Standard deviation (must be ≥ 0).
        std_dev: f64,
    },
    /// Always exactly this value (useful for perfect planted clusters).
    None,
}

impl Noise {
    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            Noise::Uniform { lo, hi } => {
                if hi > lo {
                    rng.gen_range(lo..hi)
                } else {
                    lo
                }
            }
            Noise::Gaussian { mean, std_dev } => {
                assert!(std_dev >= 0.0, "standard deviation must be non-negative");
                if std_dev == 0.0 {
                    return mean;
                }
                // Box–Muller transform.
                let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                mean + std_dev * z
            }
            Noise::None => 0.0,
        }
    }

    /// Uniform noise whose mean absolute value is `target` — i.e.
    /// `Uniform(-2·target, 2·target)`. Used to plant clusters whose measured
    /// arithmetic residue lands near `target`.
    pub fn for_target_residue(target: f64) -> Noise {
        assert!(target >= 0.0, "target residue must be non-negative");
        if target == 0.0 {
            Noise::None
        } else {
            Noise::Uniform {
                lo: -2.0 * target,
                hi: 2.0 * target,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_range() {
        let n = Noise::Uniform { lo: -3.0, hi: 5.0 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = n.sample(&mut rng);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments() {
        let n = Noise::Gaussian {
            mean: 10.0,
            std_dev: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..40_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn none_is_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(Noise::None.sample(&mut rng), 0.0);
    }

    #[test]
    fn degenerate_distributions_are_constant() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(Noise::Uniform { lo: 2.0, hi: 2.0 }.sample(&mut rng), 2.0);
        assert_eq!(
            Noise::Gaussian {
                mean: 7.0,
                std_dev: 0.0
            }
            .sample(&mut rng),
            7.0
        );
    }

    #[test]
    fn target_residue_noise_has_matching_mean_abs() {
        let n = Noise::for_target_residue(5.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mean_abs: f64 = (0..40_000).map(|_| n.sample(&mut rng).abs()).sum::<f64>() / 40_000.0;
        assert!((mean_abs - 5.0).abs() < 0.1, "mean |noise| = {mean_abs}");
        assert_eq!(Noise::for_target_residue(0.0), Noise::None);
    }
}
