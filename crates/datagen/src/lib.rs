//! # dc-datagen
//!
//! Synthetic workload generators for the δ-cluster reproduction — every
//! data set §6 of the paper evaluates on:
//!
//! * [`embed`] — matrices with planted shifting-coherent δ-clusters and
//!   ground truth, for the recall/precision experiments (Tables 4, 5).
//! * [`erlang`] — the Erlang volume distribution used by Figure 9/Table 5.
//! * [`synth`] — builders translating each experiment's parameters
//!   (Tables 2/3, Figures 8/9) into generator configs.
//! * [`movielens`] — a MovieLens-100k-shaped rating matrix (943 × 1682,
//!   100k ratings, ≥ 20 per user) with planted taste groups; stands in for
//!   the real data set (see DESIGN.md, substitutions).
//! * [`microarray`] — a yeast-expression-shaped matrix (2884 × 17) with
//!   co-regulated gene modules; stands in for the Tavazoie data set.
//! * [`noise`] — uniform/Gaussian noise primitives.
//! * [`stream`] — a deterministic MovieLens-like *event stream* (rating
//!   appends/updates/deletes) feeding the online miner, with a framed
//!   binary codec.
//!
//! All generators are deterministic given their seed.

pub mod embed;
pub mod erlang;
pub mod microarray;
pub mod movielens;
pub mod noise;
pub mod stream;
pub mod synth;

pub use embed::{
    generate as generate_embedded, generate_paged as generate_embedded_paged, EmbedConfig,
    EmbeddedData,
};
pub use erlang::Erlang;
pub use microarray::{generate as generate_microarray, MicroarrayConfig, MicroarrayData};
pub use movielens::{generate as generate_movielens, MovieLensConfig, MovieLensData};
pub use noise::Noise;
pub use stream::{
    encode_events, generate_events, EventDecoder, RatingEvent, RatingOp, StreamConfig,
};
