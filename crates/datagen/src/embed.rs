//! Embedding δ-clusters into synthetic matrices (§6.2 workloads).
//!
//! The paper's synthetic experiments embed a set of shifting-coherent
//! clusters into a noise matrix: inside an embedded cluster every entry is
//! `row_bias + col_effect (+ bounded noise)` — a perfect (or `r`-residue)
//! δ-cluster — and everything else is background noise. The generator
//! records the embedded clusters as ground truth for recall/precision
//! evaluation (Tables 4 and 5).

use crate::noise::Noise;
use dc_floc::DeltaCluster;
use dc_matrix::{DataMatrix, PagedError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of an embedded-cluster matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbedConfig {
    /// Matrix rows (objects).
    pub rows: usize,
    /// Matrix columns (attributes).
    pub cols: usize,
    /// `(rows, cols)` of each embedded cluster.
    pub cluster_sizes: Vec<(usize, usize)>,
    /// Target arithmetic residue of the embedded clusters (0 = perfect).
    pub residue: f64,
    /// Background noise for non-cluster cells.
    pub background: Noise,
    /// Range of per-row biases inside clusters.
    pub bias_range: (f64, f64),
    /// Range of per-column effects inside clusters.
    pub effect_range: (f64, f64),
    /// Fraction of all cells turned missing after generation (`0..1`).
    pub missing_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl EmbedConfig {
    /// A reasonable default: background `[0, 600)` (microarray-like scale),
    /// biases/effects `[0, 300)`, fully specified.
    pub fn new(rows: usize, cols: usize, cluster_sizes: Vec<(usize, usize)>) -> Self {
        EmbedConfig {
            rows,
            cols,
            cluster_sizes,
            residue: 0.0,
            background: Noise::Uniform { lo: 0.0, hi: 600.0 },
            bias_range: (0.0, 300.0),
            effect_range: (0.0, 300.0),
            missing_rate: 0.0,
            seed: 0,
        }
    }
}

/// A generated matrix together with its ground-truth clusters.
#[derive(Debug, Clone)]
pub struct EmbeddedData {
    /// The data matrix.
    pub matrix: DataMatrix,
    /// The embedded clusters, index-aligned with
    /// [`EmbedConfig::cluster_sizes`].
    pub truth: Vec<DeltaCluster>,
}

/// Generates the matrix and ground truth for `config`.
///
/// Cluster row/column subsets are sampled uniformly; clusters may overlap
/// (later clusters overwrite earlier cells), mirroring the paper's
/// unconstrained generation.
///
/// # Panics
/// Panics if a cluster size exceeds the matrix dimensions or rates are out
/// of range.
pub fn generate(config: &EmbedConfig) -> EmbeddedData {
    assert!(
        (0.0..1.0).contains(&config.missing_rate),
        "missing_rate must be in [0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut matrix = DataMatrix::builder(config.rows, config.cols).build();

    // Background noise everywhere.
    for r in 0..config.rows {
        for c in 0..config.cols {
            matrix.set(r, c, config.background.sample(&mut rng));
        }
    }

    // Embed each cluster.
    let cluster_noise = Noise::for_target_residue(config.residue);
    let mut truth = Vec::with_capacity(config.cluster_sizes.len());
    let all_rows: Vec<usize> = (0..config.rows).collect();
    let all_cols: Vec<usize> = (0..config.cols).collect();
    for &(n_rows, n_cols) in &config.cluster_sizes {
        assert!(
            n_rows <= config.rows && n_cols <= config.cols,
            "cluster {n_rows}x{n_cols} exceeds matrix {}x{}",
            config.rows,
            config.cols
        );
        // partial_shuffle randomizes the slice *tail* and returns it first.
        let mut rows = all_rows.clone();
        let rows: Vec<usize> = rows.partial_shuffle(&mut rng, n_rows).0.to_vec();
        let mut cols = all_cols.clone();
        let cols: Vec<usize> = cols.partial_shuffle(&mut rng, n_cols).0.to_vec();

        let effects: Vec<f64> = (0..n_cols)
            .map(|_| rng.gen_range(config.effect_range.0..config.effect_range.1))
            .collect();
        for &r in &rows {
            let bias = rng.gen_range(config.bias_range.0..config.bias_range.1);
            for (ci, &c) in cols.iter().enumerate() {
                matrix.set(r, c, bias + effects[ci] + cluster_noise.sample(&mut rng));
            }
        }
        truth.push(DeltaCluster::from_indices(
            config.rows,
            config.cols,
            rows.iter().copied(),
            cols.iter().copied(),
        ));
    }

    // Punch missing values.
    if config.missing_rate > 0.0 {
        for r in 0..config.rows {
            for c in 0..config.cols {
                if rng.gen_bool(config.missing_rate) {
                    matrix.unset(r, c);
                }
            }
        }
    }

    EmbeddedData { matrix, truth }
}

/// Generates the matrix for `config` straight into a paged directory,
/// streaming one row at a time through a [`dc_matrix::PagedAppender`] so
/// resident memory stays O(`chunk_rows` × `cols` + cluster structure)
/// instead of O(`rows` × `cols`). This is how data sets larger than RAM
/// are emitted.
///
/// The output is deterministic in `config.seed` and independent of
/// `chunk_rows`, but it is a *different* (equally distributed) sample than
/// [`generate`]'s for the same seed: streaming draws each row's noise from
/// a per-row RNG instead of one long matrix-order stream.
///
/// # Errors / Panics
/// [`PagedError`] if the directory cannot be created or written. Panics on
/// the same invalid configs as [`generate`].
pub fn generate_paged(
    config: &EmbedConfig,
    dir: impl Into<std::path::PathBuf>,
    chunk_rows: usize,
) -> Result<EmbeddedData, PagedError> {
    assert!(
        (0.0..1.0).contains(&config.missing_rate),
        "missing_rate must be in [0, 1)"
    );

    // Phase 1: cluster structure (memberships, effects, per-row biases)
    // from the seed-derived structure RNG. O(clusters × size), not O(data).
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut truth = Vec::with_capacity(config.cluster_sizes.len());
    // Per matrix row: the clusters covering it, in embed order, with the
    // row's bias for each — later clusters overwrite earlier cells, like
    // `generate`.
    let mut row_clusters: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
    let mut effects_by_cluster: Vec<Vec<f64>> = Vec::with_capacity(config.cluster_sizes.len());
    let mut cols_by_cluster: Vec<Vec<usize>> = Vec::with_capacity(config.cluster_sizes.len());
    let all_rows: Vec<usize> = (0..config.rows).collect();
    let all_cols: Vec<usize> = (0..config.cols).collect();
    for (k, &(n_rows, n_cols)) in config.cluster_sizes.iter().enumerate() {
        assert!(
            n_rows <= config.rows && n_cols <= config.cols,
            "cluster {n_rows}x{n_cols} exceeds matrix {}x{}",
            config.rows,
            config.cols
        );
        let mut rows = all_rows.clone();
        let rows: Vec<usize> = rows.partial_shuffle(&mut rng, n_rows).0.to_vec();
        let mut cols = all_cols.clone();
        let cols: Vec<usize> = cols.partial_shuffle(&mut rng, n_cols).0.to_vec();
        let effects: Vec<f64> = (0..n_cols)
            .map(|_| rng.gen_range(config.effect_range.0..config.effect_range.1))
            .collect();
        for &r in &rows {
            let bias = rng.gen_range(config.bias_range.0..config.bias_range.1);
            row_clusters.entry(r).or_default().push((k, bias));
        }
        truth.push(DeltaCluster::from_indices(
            config.rows,
            config.cols,
            rows.iter().copied(),
            cols.iter().copied(),
        ));
        effects_by_cluster.push(effects);
        cols_by_cluster.push(cols);
    }

    // Phase 2: stream the rows. Each row's noise comes from its own RNG
    // (seed ⊕ splitmix-spread row index), so generation order and chunking
    // never change the output.
    let cluster_noise = Noise::for_target_residue(config.residue);
    let mut appender = DataMatrix::builder(config.rows, config.cols)
        .paged(dir)
        .chunk_rows(chunk_rows)
        .appender()?;
    let mut row = vec![None; config.cols];
    for r in 0..config.rows {
        let spread = (r as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut row_rng = StdRng::seed_from_u64(config.seed ^ spread);
        for slot in row.iter_mut() {
            *slot = Some(config.background.sample(&mut row_rng));
        }
        if let Some(memberships) = row_clusters.get(&r) {
            for &(k, bias) in memberships {
                for (ci, &c) in cols_by_cluster[k].iter().enumerate() {
                    row[c] =
                        Some(bias + effects_by_cluster[k][ci] + cluster_noise.sample(&mut row_rng));
                }
            }
        }
        if config.missing_rate > 0.0 {
            for slot in row.iter_mut() {
                if row_rng.gen_bool(config.missing_rate) {
                    *slot = None;
                }
            }
        }
        appender.append_row(&row)?;
    }
    let matrix = appender.finish()?;
    Ok(EmbeddedData { matrix, truth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_floc::{cluster_residue, ResidueMean};

    #[test]
    fn embedded_clusters_are_perfect_at_zero_residue() {
        let config = EmbedConfig::new(60, 20, vec![(10, 5), (8, 6)]);
        let data = generate(&config);
        assert_eq!(data.truth.len(), 2);
        for (i, t) in data.truth.iter().enumerate() {
            // Later clusters may overwrite earlier ones where they overlap;
            // the *last* cluster is always exactly coherent.
            if i == data.truth.len() - 1 {
                let r = cluster_residue(&data.matrix, t, ResidueMean::Arithmetic);
                assert!(r < 1e-9, "cluster {i} residue {r}");
            }
            assert_eq!(t.row_count(), config.cluster_sizes[i].0);
            assert_eq!(t.col_count(), config.cluster_sizes[i].1);
        }
    }

    #[test]
    fn target_residue_is_approximated() {
        let mut config = EmbedConfig::new(100, 40, vec![(30, 20)]);
        config.residue = 5.0;
        config.seed = 3;
        let data = generate(&config);
        let r = cluster_residue(&data.matrix, &data.truth[0], ResidueMean::Arithmetic);
        assert!(
            (2.5..10.0).contains(&r),
            "measured residue {r} too far from target 5"
        );
    }

    #[test]
    fn background_is_incoherent() {
        let config = EmbedConfig::new(50, 20, vec![]);
        let data = generate(&config);
        let all = DeltaCluster::from_indices(50, 20, 0..50, 0..20);
        let r = cluster_residue(&data.matrix, &all, ResidueMean::Arithmetic);
        assert!(r > 50.0, "background residue {r} suspiciously low");
    }

    #[test]
    fn missing_rate_is_respected() {
        let mut config = EmbedConfig::new(100, 50, vec![(20, 10)]);
        config.missing_rate = 0.3;
        config.seed = 1;
        let data = generate(&config);
        let density = data.matrix.density();
        assert!((density - 0.7).abs() < 0.03, "density {density}");
    }

    #[test]
    fn generation_is_deterministic() {
        let config = EmbedConfig::new(30, 10, vec![(5, 4)]);
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.truth, b.truth);
        let mut other = config.clone();
        other.seed = 99;
        assert_ne!(generate(&other).matrix, a.matrix);
    }

    #[test]
    fn fully_specified_without_missing() {
        let config = EmbedConfig::new(20, 10, vec![(4, 3)]);
        let data = generate(&config);
        assert_eq!(data.matrix.specified_count(), 200);
    }

    #[test]
    #[should_panic(expected = "exceeds matrix")]
    fn oversized_cluster_panics() {
        let config = EmbedConfig::new(10, 10, vec![(11, 2)]);
        let _ = generate(&config);
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dc-datagen-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn paged_generation_is_deterministic_and_chunk_invariant() {
        let mut config = EmbedConfig::new(64, 12, vec![(10, 5), (8, 6)]);
        config.missing_rate = 0.1;
        config.seed = 7;
        let a = generate_paged(&config, temp_dir("embed-a"), 4).unwrap();
        let b = generate_paged(&config, temp_dir("embed-b"), 17).unwrap();
        assert_eq!(a.matrix.fingerprint(), b.matrix.fingerprint());
        assert_eq!(a.truth, b.truth);
        assert!(a.matrix == b.matrix);
        let mut other = config.clone();
        other.seed = 8;
        let c = generate_paged(&other, temp_dir("embed-c"), 4).unwrap();
        assert_ne!(c.matrix.fingerprint(), a.matrix.fingerprint());
    }

    #[test]
    fn paged_generation_embeds_coherent_clusters() {
        let config = EmbedConfig::new(80, 20, vec![(12, 6), (9, 5)]);
        let data = generate_paged(&config, temp_dir("embed-coherent"), 16).unwrap();
        assert_eq!(data.truth.len(), 2);
        // Streaming embeds clusters in order within each row, so the last
        // cluster is exactly coherent wherever it isn't overwritten — same
        // guarantee as the in-memory generator.
        let last = data.truth.last().unwrap();
        let r = cluster_residue(&data.matrix, last, ResidueMean::Arithmetic);
        assert!(r < 1e-9, "last cluster residue {r}");
        // And the matrix really is paged.
        assert_eq!(data.matrix.backend(), dc_matrix::BackendKind::Paged);
        assert!(data.matrix.to_memory() == data.matrix);
    }

    #[test]
    fn paged_generation_respects_missing_rate() {
        let mut config = EmbedConfig::new(100, 50, vec![(20, 10)]);
        config.missing_rate = 0.3;
        config.seed = 1;
        let data = generate_paged(&config, temp_dir("embed-missing"), 32).unwrap();
        let density = data.matrix.density();
        assert!((density - 0.7).abs() < 0.03, "density {density}");
    }
}
