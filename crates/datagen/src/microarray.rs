//! A yeast-microarray-shaped gene-expression generator.
//!
//! §6.1.2 of the paper runs FLOC and Cheng & Church on the Tavazoie et al.
//! yeast data set: 2884 genes × 17 conditions, entries being (scaled)
//! logarithms of expression ratios — integers roughly in 0..600 after the
//! ×100 scaling Cheng & Church applied. We generate a matrix with that
//! shape: a heavy-tailed background plus a configurable number of coherent
//! gene modules, each a group of co-regulated genes whose expression rises
//! and falls together (with per-gene additive bias) across a subset of
//! conditions. A small fraction of entries is missing, as in the real data.

use dc_floc::DeltaCluster;
use dc_matrix::DataMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the microarray generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroarrayConfig {
    /// Number of genes (rows).
    pub genes: usize,
    /// Number of experimental conditions (columns).
    pub conditions: usize,
    /// Number of co-regulated gene modules to embed.
    pub modules: usize,
    /// Genes per module (min, max).
    pub module_genes: (usize, usize),
    /// Conditions per module (min, max).
    pub module_conditions: (usize, usize),
    /// Within-module noise amplitude (uniform half-width, expression
    /// units).
    pub module_noise: f64,
    /// Fraction of missing entries.
    pub missing_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicroarrayConfig {
    /// The Tavazoie yeast shape: 2884 × 17 with 30 modules.
    fn default() -> Self {
        MicroarrayConfig {
            genes: 2884,
            conditions: 17,
            modules: 30,
            module_genes: (20, 120),
            module_conditions: (5, 12),
            module_noise: 6.0,
            missing_rate: 0.02,
            seed: 0,
        }
    }
}

/// The generated expression matrix with module ground truth.
#[derive(Debug, Clone)]
pub struct MicroarrayData {
    /// The expression matrix (values ~0..600, like the ×100-scaled log
    /// ratios Cheng & Church used).
    pub matrix: DataMatrix,
    /// The embedded co-regulation modules.
    pub modules: Vec<DeltaCluster>,
}

/// Generates the expression matrix.
pub fn generate(config: &MicroarrayConfig) -> MicroarrayData {
    assert!(config.genes > 0 && config.conditions > 0, "empty matrix");
    assert!(
        config.module_genes.0 <= config.module_genes.1
            && config.module_conditions.0 <= config.module_conditions.1,
        "invalid module size ranges"
    );
    assert!(
        config.module_conditions.1 <= config.conditions,
        "modules cannot span more conditions than exist"
    );
    assert!(
        (0.0..1.0).contains(&config.missing_rate),
        "missing_rate in [0,1)"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut matrix = DataMatrix::builder(config.genes, config.conditions).build();

    // Background: per-gene baseline plus wide per-entry jitter, clamped to
    // the 0..600 scale. The jitter dominates the baseline so that the
    // background contains no large flat (trivially low-residue) submatrix —
    // the embedded modules are the only strongly coherent structure, as in
    // real expression data where co-regulation is the signal.
    for g in 0..config.genes {
        let baseline: f64 = {
            let u: f64 = rng.gen();
            100.0 + 400.0 * u * u
        };
        for c in 0..config.conditions {
            let jitter = rng.gen_range(-160.0..160.0);
            matrix.set(g, c, (baseline + jitter).clamp(0.0, 600.0));
        }
    }

    // Embed coherent modules: expression = gene bias + condition effect.
    let mut modules = Vec::with_capacity(config.modules);
    let all_genes: Vec<usize> = (0..config.genes).collect();
    let all_conditions: Vec<usize> = (0..config.conditions).collect();
    for _ in 0..config.modules {
        let n_genes = rng.gen_range(config.module_genes.0..=config.module_genes.1);
        let n_conds = rng.gen_range(config.module_conditions.0..=config.module_conditions.1);
        // partial_shuffle randomizes the slice *tail* and returns it first.
        let mut genes = all_genes.clone();
        let genes: Vec<usize> = genes.partial_shuffle(&mut rng, n_genes).0.to_vec();
        let mut conds = all_conditions.clone();
        let conds: Vec<usize> = conds.partial_shuffle(&mut rng, n_conds).0.to_vec();

        let effects: Vec<f64> = (0..n_conds).map(|_| rng.gen_range(0.0..350.0)).collect();
        for &g in &genes {
            let bias = rng.gen_range(0.0..250.0);
            for (ci, &c) in conds.iter().enumerate() {
                let noise = rng.gen_range(-config.module_noise..=config.module_noise);
                matrix.set(g, c, (bias + effects[ci] + noise).clamp(0.0, 600.0));
            }
        }
        modules.push(DeltaCluster::from_indices(
            config.genes,
            config.conditions,
            genes.iter().copied(),
            conds.iter().copied(),
        ));
    }

    // Missing entries.
    if config.missing_rate > 0.0 {
        for g in 0..config.genes {
            for c in 0..config.conditions {
                if rng.gen_bool(config.missing_rate) {
                    matrix.unset(g, c);
                }
            }
        }
    }

    MicroarrayData { matrix, modules }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_floc::{cluster_residue, ResidueMean};

    fn small() -> MicroarrayConfig {
        MicroarrayConfig {
            genes: 200,
            conditions: 17,
            modules: 5,
            module_genes: (10, 25),
            module_conditions: (4, 8),
            module_noise: 5.0,
            missing_rate: 0.02,
            seed: 1,
        }
    }

    #[test]
    fn shape_and_range() {
        let data = generate(&small());
        assert_eq!(data.matrix.rows(), 200);
        assert_eq!(data.matrix.cols(), 17);
        for (_, _, v) in data.matrix.entries() {
            assert!((0.0..=600.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn modules_are_coherent() {
        let data = generate(&small());
        // Modules may partially overwrite each other; the last one is
        // untouched and must be strongly coherent.
        let last = data.modules.last().unwrap();
        let r = cluster_residue(&data.matrix, last, ResidueMean::Arithmetic);
        // Uniform(−5, 5) noise → expected |residue| ≈ 2.5; clamping and
        // missing entries nudge it a little.
        assert!(r < 10.0, "module residue {r} too high");
    }

    #[test]
    fn background_is_incoherent() {
        let mut config = small();
        config.modules = 0;
        let data = generate(&config);
        let all = DeltaCluster::from_indices(200, 17, 0..200, 0..17);
        let r = cluster_residue(&data.matrix, &all, ResidueMean::Arithmetic);
        assert!(r > 20.0, "background residue {r} too low");
        assert!(data.modules.is_empty());
    }

    #[test]
    fn missing_rate_applied() {
        let data = generate(&small());
        let density = data.matrix.density();
        assert!((density - 0.98).abs() < 0.01, "density {density}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.matrix, b.matrix);
    }

    #[test]
    fn default_matches_yeast_shape() {
        let c = MicroarrayConfig::default();
        assert_eq!(c.genes, 2884);
        assert_eq!(c.conditions, 17);
    }

    #[test]
    #[should_panic(expected = "more conditions than exist")]
    fn oversized_module_conditions_panic() {
        let mut c = small();
        c.module_conditions = (5, 30);
        let _ = generate(&c);
    }
}
