//! Paper-specific synthetic workload builders (§6.2).
//!
//! These helpers translate the experiment descriptions in the paper's
//! evaluation section into [`EmbedConfig`]s:
//!
//! * Tables 2/3 embed **50 clusters** of average volume
//!   `(0.04·N) × (0.1·M)` in matrices from `100×20` to `3000×100`.
//! * Figure 8 embeds **100 clusters of volume 100** in `3000×100` and
//!   sweeps the seed volume.
//! * Figure 9 / Table 5 embed **100 clusters** whose volumes follow an
//!   **Erlang distribution** of mean 300 and varying variance.

use crate::embed::EmbedConfig;
use crate::erlang::Erlang;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Splits a target volume `v` into `(rows, cols)` with the given
/// rows-per-column aspect ratio, respecting minimum dimensions.
///
/// `aspect` is the desired `rows / cols`; e.g. the paper's Figure 8
/// clusters of volume 100 in a 3000×100 matrix are tall (many objects, few
/// attributes).
pub fn split_volume(
    volume: usize,
    aspect: f64,
    min_rows: usize,
    min_cols: usize,
) -> (usize, usize) {
    assert!(aspect > 0.0, "aspect must be positive");
    let v = volume.max(min_rows * min_cols) as f64;
    let rows = ((v * aspect).sqrt().round() as usize).max(min_rows);
    let cols = ((v / rows as f64).round() as usize).max(min_cols);
    (rows, cols)
}

/// Cluster sizes whose volumes follow `Erlang(mean_volume, variance)`.
///
/// Volumes are clamped to `[min_volume, max_volume]` before splitting. The
/// `variance` is in *units of the squared mean divided by shape*; to sweep
/// "variance 0..5" like Table 5 (which varies spread while keeping the mean
/// at 300), pass `variance_scale × mean_volume` — see
/// [`table5_cluster_sizes`].
pub fn erlang_cluster_sizes(
    count: usize,
    mean_volume: f64,
    variance: f64,
    aspect: f64,
    min_rows: usize,
    min_cols: usize,
    seed: u64,
) -> Vec<(usize, usize)> {
    let erlang = Erlang::from_mean_variance(mean_volume, variance);
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = (min_rows * min_cols).max(4);
    let hi = (mean_volume * 8.0) as usize;
    (0..count)
        .map(|_| {
            let v = erlang.sample_clamped_int(&mut rng, lo, hi);
            split_volume(v, aspect, min_rows, min_cols)
        })
        .collect()
}

/// The Tables 2/3 workload: 50 embedded clusters of average volume
/// `(0.04·rows) × (0.1·cols)` in a `rows × cols` matrix.
pub fn table2_config(rows: usize, cols: usize, seed: u64) -> EmbedConfig {
    let cluster_rows = ((rows as f64) * 0.04).round().max(2.0) as usize;
    let cluster_cols = ((cols as f64) * 0.1).round().max(2.0) as usize;
    EmbedConfig::new(rows, cols, vec![(cluster_rows, cluster_cols); 50]).with_seed(seed)
}

/// The Figure 8 workload: 100 clusters of volume 100 in `3000 × 100`.
pub fn fig8_config(seed: u64) -> EmbedConfig {
    // Volume 100 split with the matrix's 30:1 row:col ratio → ~18×6 is too
    // wide; the paper seeds with (q·3000)×(q·100), i.e. 30:1 tall clusters.
    let size = split_volume(100, 30.0, 2, 2);
    EmbedConfig::new(3000, 100, vec![size; 100]).with_seed(seed)
}

/// The Figure 9 / Table 5 workload: 100 clusters in `3000 × 100` whose
/// volumes are Erlang with mean 300 and the given variance *level* (the
/// paper sweeps levels 0–5; we map level `v` to an Erlang variance of
/// `v · mean²/5` so level 5 is maximally spread, level 0 constant).
pub fn table5_config(variance_level: f64, residue: f64, seed: u64) -> EmbedConfig {
    let sizes = table5_cluster_sizes(variance_level, seed);
    let mut config = EmbedConfig::new(3000, 100, sizes).with_seed(seed.wrapping_add(1));
    config.residue = residue;
    config
}

/// The cluster sizes backing [`table5_config`] (exposed so seeding can use
/// matching Erlang sizes).
pub fn table5_cluster_sizes(variance_level: f64, seed: u64) -> Vec<(usize, usize)> {
    assert!(variance_level >= 0.0, "variance level must be non-negative");
    let mean = 300.0;
    let variance = variance_level * mean * mean / 5.0;
    erlang_cluster_sizes(100, mean, variance, 30.0, 2, 2, seed)
}

impl EmbedConfig {
    /// Sets the RNG seed (builder-style convenience).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_volume_hits_the_target() {
        let (r, c) = split_volume(100, 30.0, 2, 2);
        assert!((80..=130).contains(&(r * c)), "split {r}x{c}");
        assert!(r > c, "aspect 30 means tall clusters");
        let (r2, c2) = split_volume(100, 1.0, 2, 2);
        assert_eq!(r2, 10);
        assert_eq!(c2, 10);
    }

    #[test]
    fn split_volume_respects_minimums() {
        let (r, c) = split_volume(4, 100.0, 2, 2);
        assert!(r >= 2 && c >= 2);
    }

    #[test]
    fn erlang_sizes_have_target_mean_volume() {
        let sizes = erlang_cluster_sizes(500, 300.0, 5000.0, 30.0, 2, 2, 1);
        let mean_vol: f64 =
            sizes.iter().map(|&(r, c)| (r * c) as f64).sum::<f64>() / sizes.len() as f64;
        assert!(
            (200.0..400.0).contains(&mean_vol),
            "mean embedded volume {mean_vol}"
        );
    }

    #[test]
    fn zero_variance_sizes_are_identical() {
        let sizes = erlang_cluster_sizes(10, 300.0, 0.0, 30.0, 2, 2, 2);
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn higher_variance_spreads_volumes() {
        let spread = |sizes: &[(usize, usize)]| {
            let vols: Vec<f64> = sizes.iter().map(|&(r, c)| (r * c) as f64).collect();
            let mean = vols.iter().sum::<f64>() / vols.len() as f64;
            vols.iter().map(|v| (v - mean).abs()).sum::<f64>() / vols.len() as f64
        };
        let tight = erlang_cluster_sizes(300, 300.0, 100.0, 30.0, 2, 2, 3);
        let loose = erlang_cluster_sizes(300, 300.0, 30000.0, 30.0, 2, 2, 3);
        assert!(spread(&loose) > 2.0 * spread(&tight));
    }

    #[test]
    fn table2_config_matches_paper_shape() {
        let c = table2_config(3000, 100, 7);
        assert_eq!(c.rows, 3000);
        assert_eq!(c.cols, 100);
        assert_eq!(c.cluster_sizes.len(), 50);
        assert_eq!(c.cluster_sizes[0], (120, 10)); // 0.04·3000 × 0.1·100
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn fig8_config_embeds_100_small_clusters() {
        let c = fig8_config(1);
        assert_eq!(c.cluster_sizes.len(), 100);
        let (r, cc) = c.cluster_sizes[0];
        assert!((80..=130).contains(&(r * cc)));
    }

    #[test]
    fn table5_levels_zero_and_five_differ() {
        let zero = table5_cluster_sizes(0.0, 4);
        assert!(zero.windows(2).all(|w| w[0] == w[1]));
        let five = table5_cluster_sizes(5.0, 4);
        assert!(five.iter().any(|&s| s != five[0]));
        assert_eq!(five.len(), 100);
    }
}
