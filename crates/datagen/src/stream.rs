//! A deterministic MovieLens-like **event stream**: the bounded sequence of
//! rating appends/updates/deletes the online miner (`dc-online`) ingests.
//!
//! The stream reuses the latent structure of [`crate::movielens`] — user
//! taste groups, genre affinities, per-user bias, popularity-skewed movie
//! picks — but emits *events over time* instead of a finished matrix:
//! a first rating for an unrated `(user, movie)` cell is an append, a
//! rating for an already-rated cell is an update, and a small fraction of
//! events revoke an existing rating (delete). Replaying events `0..n` onto
//! an empty matrix is a pure function of the config, which is what makes
//! the miner's crash recovery bit-identical: a checkpoint only needs the
//! cursor `n`.
//!
//! Everything is deterministic given the seed — same config, same bytes,
//! no dependence on thread count or global state (pinned by tests).
//!
//! The module also ships a tiny framed binary codec
//! ([`encode_events`] / [`EventDecoder`]) so streams can be written to
//! disk, piped through `dc-fault`'s `FaultyReader` in chaos tests, and
//! decoded incrementally with typed errors.

use dc_matrix::DataMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::Read;

/// Magic prefix of the binary stream format (version baked into the tag).
pub const STREAM_MAGIC: [u8; 4] = *b"DCS1";

/// What one event does to its `(user, movie)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RatingOp {
    /// Rate (or re-rate) the cell; values are 1.0–5.0 integers.
    Set(f64),
    /// Revoke the rating (cell becomes unspecified).
    Delete,
}

/// One stream event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingEvent {
    pub user: u32,
    pub movie: u32,
    pub op: RatingOp,
}

impl RatingEvent {
    /// Applies the event to `matrix`. A user index at or beyond the current
    /// row count grows the matrix with blank rows first — on the paged
    /// backend those appends land in the tail block, so a stream can keep
    /// feeding an out-of-core matrix without rewriting earlier pages. The
    /// movie index must fit the fixed column count.
    pub fn apply(&self, matrix: &mut DataMatrix) {
        let (user, movie) = (self.user as usize, self.movie as usize);
        if user >= matrix.rows() {
            let blank = vec![None; matrix.cols()];
            for _ in matrix.rows()..=user {
                matrix
                    .append_row(&blank)
                    .expect("appending a blank row cannot fail");
            }
        }
        match self.op {
            RatingOp::Set(v) => matrix.set(user, movie, v),
            RatingOp::Delete => {
                matrix.unset(user, movie);
            }
        }
    }
}

/// Configuration of the event-stream generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of users (rows of the serving matrix).
    pub users: usize,
    /// Number of movies (columns).
    pub movies: usize,
    /// Total events to emit.
    pub events: usize,
    /// Out of 100: chance an event deletes an existing rating instead of
    /// setting one (skipped while nothing is rated yet).
    pub delete_percent: u32,
    /// Latent user taste groups (see [`crate::movielens`]).
    pub user_groups: usize,
    /// Movie genres.
    pub genres: usize,
    /// Rating noise before rounding.
    pub noise_std: f64,
    /// RNG seed; the stream is a pure function of this config.
    pub seed: u64,
}

impl Default for StreamConfig {
    /// A small MovieLens-flavoured default sized for smoke tests: the CLI
    /// overrides users/movies/events per run.
    fn default() -> Self {
        StreamConfig {
            users: 120,
            movies: 80,
            events: 2_000,
            delete_percent: 5,
            user_groups: 4,
            genres: 6,
            noise_std: 0.3,
            seed: 0,
        }
    }
}

/// Generates the full event stream for `config`. Deterministic.
pub fn generate_events(config: &StreamConfig) -> Vec<RatingEvent> {
    assert!(config.users > 0 && config.movies > 0, "empty universe");
    assert!(
        config.user_groups > 0 && config.genres > 0,
        "need groups and genres"
    );
    assert!(config.delete_percent <= 100, "delete_percent is out of 100");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0005_eed5_7ee4);

    // The same latent structure movielens::generate plants, so refinement
    // has real δ-clusters to find as the stream fills in.
    let user_group: Vec<usize> = (0..config.users)
        .map(|_| rng.gen_range(0..config.user_groups))
        .collect();
    let movie_genre: Vec<usize> = (0..config.movies)
        .map(|_| rng.gen_range(0..config.genres))
        .collect();
    let affinity: Vec<Vec<f64>> = (0..config.user_groups)
        .map(|_| {
            (0..config.genres)
                .map(|_| rng.gen_range(1.0..5.0))
                .collect()
        })
        .collect();
    let user_bias: Vec<f64> = (0..config.users)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let movie_quality: Vec<f64> = (0..config.movies)
        .map(|_| rng.gen_range(-0.6..0.6))
        .collect();

    // Rated cells so far, so deletes always target a real rating and the
    // append/update mix evolves the way a live system's would.
    let mut rated: Vec<(u32, u32)> = Vec::new();
    let mut events = Vec::with_capacity(config.events);
    while events.len() < config.events {
        if !rated.is_empty() && rng.gen_range(0..100u32) < config.delete_percent {
            let idx = rng.gen_range(0..rated.len());
            let (user, movie) = rated.swap_remove(idx);
            events.push(RatingEvent {
                user,
                movie,
                op: RatingOp::Delete,
            });
            continue;
        }
        let u = rng.gen_range(0..config.users);
        // Popularity skew without a weight table: quadratic bias toward
        // low-numbered movies, like the Zipfian pick in movielens.
        let m = {
            let a = rng.gen_range(0..config.movies);
            let b = rng.gen_range(0..config.movies);
            a.min(b)
        };
        let raw = affinity[user_group[u]][movie_genre[m]]
            + user_bias[u]
            + movie_quality[m]
            + crate::noise::Noise::Gaussian {
                mean: 0.0,
                std_dev: 1.0,
            }
            .sample(&mut rng)
                * config.noise_std;
        let rating = raw.round().clamp(1.0, 5.0);
        let pair = (u as u32, m as u32);
        if !rated.contains(&pair) {
            rated.push(pair);
        }
        events.push(RatingEvent {
            user: pair.0,
            movie: pair.1,
            op: RatingOp::Set(rating),
        });
    }
    events
}

/// Replays events `0..cursor` onto an empty `users × movies` matrix — the
/// miner's crash-recovery primitive.
pub fn replay(config: &StreamConfig, cursor: usize) -> DataMatrix {
    let events = generate_events(config);
    assert!(
        cursor <= events.len(),
        "cursor {cursor} past stream end {}",
        events.len()
    );
    let mut matrix = DataMatrix::builder(config.users, config.movies).build();
    for event in &events[..cursor] {
        event.apply(&mut matrix);
    }
    matrix
}

/// Errors the stream codec can report. Decoding never panics on hostile
/// bytes — every failure mode is a typed variant.
#[derive(Debug)]
pub enum StreamCodecError {
    Io(std::io::Error),
    /// The input does not start with [`STREAM_MAGIC`].
    BadMagic([u8; 4]),
    /// An unknown op tag byte.
    BadTag(u8),
    /// The input ended inside an event frame.
    Truncated,
    /// A decoded rating was not finite.
    BadRating(f64),
}

impl std::fmt::Display for StreamCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamCodecError::Io(e) => write!(f, "stream read failed: {e}"),
            StreamCodecError::BadMagic(m) => write!(f, "not a DCS1 event stream: magic {m:02x?}"),
            StreamCodecError::BadTag(t) => write!(f, "unknown event tag {t:#04x}"),
            StreamCodecError::Truncated => write!(f, "event stream ends mid-frame"),
            StreamCodecError::BadRating(v) => write!(f, "non-finite rating {v} in stream"),
        }
    }
}

impl std::error::Error for StreamCodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamCodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StreamCodecError {
    fn from(e: std::io::Error) -> Self {
        StreamCodecError::Io(e)
    }
}

const TAG_SET: u8 = 1;
const TAG_DELETE: u8 = 2;

/// Encodes events in the framed binary format: magic, then one frame per
/// event (`tag, user u32-LE, movie u32-LE[, rating f64-LE]`).
pub fn encode_events(events: &[RatingEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + events.len() * 17);
    out.extend_from_slice(&STREAM_MAGIC);
    for event in events {
        match event.op {
            RatingOp::Set(v) => {
                out.push(TAG_SET);
                out.extend_from_slice(&event.user.to_le_bytes());
                out.extend_from_slice(&event.movie.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            RatingOp::Delete => {
                out.push(TAG_DELETE);
                out.extend_from_slice(&event.user.to_le_bytes());
                out.extend_from_slice(&event.movie.to_le_bytes());
            }
        }
    }
    out
}

/// Incremental decoder over any `Read` — pairs with `dc-fault`'s
/// `FaultyReader` so chaos tests can inject faults mid-stream.
#[derive(Debug)]
pub struct EventDecoder<R> {
    inner: R,
    checked_magic: bool,
}

impl<R: Read> EventDecoder<R> {
    pub fn new(inner: R) -> Self {
        EventDecoder {
            inner,
            checked_magic: false,
        }
    }

    fn read_exact_or(&mut self, buf: &mut [u8], eof_ok: bool) -> Result<bool, StreamCodecError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    return if filled == 0 && eof_ok {
                        Ok(false)
                    } else {
                        Err(StreamCodecError::Truncated)
                    };
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(StreamCodecError::Io(e)),
            }
        }
        Ok(true)
    }

    /// Decodes the next event; `Ok(None)` is clean end-of-stream.
    pub fn next_event(&mut self) -> Result<Option<RatingEvent>, StreamCodecError> {
        if !self.checked_magic {
            let mut magic = [0u8; 4];
            if !self.read_exact_or(&mut magic, true)? {
                // A zero-byte stream decodes as empty rather than torn.
                self.checked_magic = true;
                return Ok(None);
            }
            if magic != STREAM_MAGIC {
                return Err(StreamCodecError::BadMagic(magic));
            }
            self.checked_magic = true;
        }
        let mut tag = [0u8; 1];
        if !self.read_exact_or(&mut tag, true)? {
            return Ok(None);
        }
        let mut ids = [0u8; 8];
        self.read_exact_or(&mut ids, false)?;
        let user = u32::from_le_bytes(ids[..4].try_into().unwrap());
        let movie = u32::from_le_bytes(ids[4..].try_into().unwrap());
        let op = match tag[0] {
            TAG_SET => {
                let mut v = [0u8; 8];
                self.read_exact_or(&mut v, false)?;
                let rating = f64::from_le_bytes(v);
                if !rating.is_finite() {
                    return Err(StreamCodecError::BadRating(rating));
                }
                RatingOp::Set(rating)
            }
            TAG_DELETE => RatingOp::Delete,
            other => return Err(StreamCodecError::BadTag(other)),
        };
        Ok(Some(RatingEvent { user, movie, op }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StreamConfig {
        StreamConfig {
            users: 40,
            movies: 30,
            events: 500,
            delete_percent: 8,
            user_groups: 3,
            genres: 5,
            noise_std: 0.25,
            seed: 42,
        }
    }

    #[test]
    fn stream_is_byte_identical_across_runs() {
        let a = encode_events(&generate_events(&small()));
        let b = encode_events(&generate_events(&small()));
        assert_eq!(a, b, "same seed must give the same bytes");
        let mut other = small();
        other.seed = 43;
        assert_ne!(a, encode_events(&generate_events(&other)));
    }

    #[test]
    fn stream_does_not_depend_on_thread_context() {
        // Generate concurrently from many threads: identical bytes prove
        // there is no hidden global state (the `--threads`-independence
        // contract the CLI inherits).
        let baseline = encode_events(&generate_events(&small()));
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| encode_events(&generate_events(&small()))))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), baseline);
        }
    }

    #[test]
    fn events_round_trip_through_the_codec() {
        let events = generate_events(&small());
        let bytes = encode_events(&events);
        let mut decoder = EventDecoder::new(&bytes[..]);
        let mut decoded = Vec::new();
        while let Some(e) = decoder.next_event().unwrap() {
            decoded.push(e);
        }
        assert_eq!(decoded, events);
    }

    #[test]
    fn deletes_target_existing_ratings_and_stay_bounded() {
        let events = generate_events(&small());
        let mut live = std::collections::HashSet::new();
        let mut deletes = 0usize;
        for e in &events {
            match e.op {
                RatingOp::Set(v) => {
                    assert!((1.0..=5.0).contains(&v) && v == v.round(), "rating {v}");
                    live.insert((e.user, e.movie));
                }
                RatingOp::Delete => {
                    deletes += 1;
                    assert!(
                        live.remove(&(e.user, e.movie)),
                        "delete of an unrated cell: {e:?}"
                    );
                }
            }
        }
        assert!(deletes > 0, "expected some deletes at 8%");
        assert!(deletes < events.len() / 4, "deletes dominate: {deletes}");
    }

    #[test]
    fn out_of_range_users_grow_the_matrix_on_both_backends() {
        let dir = std::env::temp_dir().join("dc-datagen-stream-grow");
        let _ = std::fs::remove_dir_all(&dir);
        let events = [
            RatingEvent {
                user: 1,
                movie: 0,
                op: RatingOp::Set(4.0),
            },
            // Three rows beyond the starting shape: rows 2..=5 get created.
            RatingEvent {
                user: 5,
                movie: 2,
                op: RatingOp::Set(2.0),
            },
            RatingEvent {
                user: 3,
                movie: 1,
                op: RatingOp::Set(5.0),
            },
            RatingEvent {
                user: 5,
                movie: 2,
                op: RatingOp::Delete,
            },
        ];
        let mut mem = DataMatrix::builder(2, 3).build();
        let mut paged = DataMatrix::builder(2, 3)
            .paged(&dir)
            .chunk_rows(2)
            .create()
            .unwrap();
        for e in &events {
            e.apply(&mut mem);
            e.apply(&mut paged);
        }
        assert_eq!(mem.rows(), 6);
        assert_eq!(paged.rows(), 6);
        assert_eq!(mem.get(3, 1), Some(5.0));
        assert_eq!(paged.get(3, 1), Some(5.0));
        assert_eq!(paged.get(5, 2), None, "delete after growth");
        // The grown paged matrix is bit-identical to the memory twin and
        // survives a flush + reopen.
        assert_eq!(paged.fingerprint(), mem.fingerprint());
        paged.flush().unwrap();
        let reopened = DataMatrix::open_paged(&dir).unwrap();
        assert_eq!(reopened.fingerprint(), mem.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_matches_manual_application() {
        let config = small();
        let events = generate_events(&config);
        let mut manual = DataMatrix::builder(config.users, config.movies).build();
        for e in &events[..300] {
            e.apply(&mut manual);
        }
        let replayed = replay(&config, 300);
        assert_eq!(manual, replayed);
        assert_eq!(manual.fingerprint(), replayed.fingerprint());
    }

    #[test]
    fn decoder_reports_typed_errors_on_torn_input() {
        let events = generate_events(&small());
        let bytes = encode_events(&events);

        // Bad magic.
        let mut broken = bytes.clone();
        broken[0] ^= 0xff;
        let err = EventDecoder::new(&broken[..]).next_event().unwrap_err();
        assert!(matches!(err, StreamCodecError::BadMagic(_)), "{err}");

        // Truncation mid-frame.
        let torn = &bytes[..bytes.len() - 3];
        let mut decoder = EventDecoder::new(torn);
        let err = loop {
            match decoder.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("torn stream decoded cleanly"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, StreamCodecError::Truncated), "{err}");

        // Unknown tag.
        let mut bad_tag = bytes[..4].to_vec();
        bad_tag.push(0x7f);
        bad_tag.extend_from_slice(&[0u8; 8]);
        let err = EventDecoder::new(&bad_tag[..]).next_event().unwrap_err();
        assert!(matches!(err, StreamCodecError::BadTag(0x7f)), "{err}");

        // Injected IO faults surface as Io, not panics.
        let mut faulty = EventDecoder::new(dc_fault::FaultyReader::new(&bytes[..]).error_at(10));
        let err = loop {
            match faulty.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("faulty stream decoded cleanly"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, StreamCodecError::Io(_)), "{err}");
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut decoder = EventDecoder::new(&[][..]);
        assert!(decoder.next_event().unwrap().is_none());
        let empty = encode_events(&[]);
        let mut decoder = EventDecoder::new(&empty[..]);
        assert!(decoder.next_event().unwrap().is_none());
    }
}
