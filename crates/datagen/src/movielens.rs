//! A MovieLens-100k-shaped collaborative-filtering generator.
//!
//! The paper's §6.1.1 experiment runs FLOC on the GroupLens MovieLens data
//! set: 943 users × 1682 movies, 100 000 ratings in 1–5, every user rating
//! at least 20 movies, ~6 % density. We cannot ship that data set, so this
//! module generates a matrix with the same shape and the same *kind* of
//! structure the paper's discovered clusters exhibit: latent user groups
//! with per-genre taste, per-user additive bias (the "action movies rated 2
//! points above family movies" phenomenon), popularity-skewed rating
//! counts, and integer ratings clamped to 1–5.
//!
//! If you have the real `u.data` file, load it instead via
//! `dc_matrix::io::read_triples_file` — the downstream experiments only
//! need a sparse rating matrix.

use dc_matrix::DataMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the MovieLens-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovieLensConfig {
    /// Number of users (objects / rows).
    pub users: usize,
    /// Number of movies (attributes / columns).
    pub movies: usize,
    /// Total ratings to generate (approximate; each user still gets at
    /// least `min_ratings_per_user`).
    pub ratings: usize,
    /// Minimum ratings per user (MovieLens guarantees 20).
    pub min_ratings_per_user: usize,
    /// Number of latent user taste groups.
    pub user_groups: usize,
    /// Number of movie genres.
    pub genres: usize,
    /// Standard deviation of rating noise before rounding.
    pub noise_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MovieLensConfig {
    /// The MovieLens-100k shape: 943 users, 1682 movies, 100 000 ratings,
    /// ≥20 per user.
    fn default() -> Self {
        MovieLensConfig {
            users: 943,
            movies: 1682,
            ratings: 100_000,
            min_ratings_per_user: 20,
            user_groups: 12,
            genres: 18,
            noise_std: 0.35,
            seed: 0,
        }
    }
}

/// The generated data set.
#[derive(Debug, Clone)]
pub struct MovieLensData {
    /// The sparse rating matrix (missing = not rated), values 1.0–5.0.
    pub matrix: DataMatrix,
    /// Latent group of each user.
    pub user_group: Vec<usize>,
    /// Genre of each movie.
    pub movie_genre: Vec<usize>,
}

/// Generates a MovieLens-shaped rating matrix.
pub fn generate(config: &MovieLensConfig) -> MovieLensData {
    assert!(config.users > 0 && config.movies > 0, "empty universe");
    assert!(
        config.user_groups > 0 && config.genres > 0,
        "need groups and genres"
    );
    assert!(
        config.min_ratings_per_user <= config.movies,
        "cannot rate more movies than exist"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Latent structure.
    let user_group: Vec<usize> = (0..config.users)
        .map(|_| rng.gen_range(0..config.user_groups))
        .collect();
    let movie_genre: Vec<usize> = (0..config.movies)
        .map(|_| rng.gen_range(0..config.genres))
        .collect();
    // Group × genre affinity: the "shape" every user in a group shares.
    let affinity: Vec<Vec<f64>> = (0..config.user_groups)
        .map(|_| {
            (0..config.genres)
                .map(|_| rng.gen_range(1.0..5.0))
                .collect()
        })
        .collect();
    // Per-user additive bias (some viewers rate everything higher).
    let user_bias: Vec<f64> = (0..config.users)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    // Per-movie quality offset within its genre.
    let movie_quality: Vec<f64> = (0..config.movies)
        .map(|_| rng.gen_range(-0.6..0.6))
        .collect();
    // Popularity weights: roughly Zipfian so a few movies collect many
    // ratings, like the real data set.
    let popularity: Vec<f64> = (0..config.movies)
        .map(|m| 1.0 / (1.0 + m as f64).sqrt())
        .collect();

    let mut matrix = DataMatrix::builder(config.users, config.movies).build();

    let rate = |matrix: &mut DataMatrix, rng: &mut StdRng, u: usize, m: usize| {
        if matrix.is_specified(u, m) {
            return false;
        }
        let raw = affinity[user_group[u]][movie_genre[m]]
            + user_bias[u]
            + movie_quality[m]
            + crate::noise::Noise::Gaussian {
                mean: 0.0,
                std_dev: 1.0,
            }
            .sample(rng)
                * config.noise_std;
        let rating = raw.round().clamp(1.0, 5.0);
        matrix.set(u, m, rating);
        true
    };

    // Guarantee the per-user minimum with popularity-weighted sampling.
    for u in 0..config.users {
        let mut rated = 0;
        while rated < config.min_ratings_per_user {
            let m = weighted_pick(&popularity, &mut rng);
            if rate(&mut matrix, &mut rng, u, m) {
                rated += 1;
            } else if matrix.row_specified_count(u) >= config.movies {
                break;
            }
        }
    }

    // Fill to the target total.
    let mut guard = 0usize;
    while matrix.specified_count() < config.ratings && guard < config.ratings * 20 {
        guard += 1;
        let u = rng.gen_range(0..config.users);
        let m = weighted_pick(&popularity, &mut rng);
        rate(&mut matrix, &mut rng, u, m);
    }

    MovieLensData {
        matrix,
        user_group,
        movie_genre,
    }
}

/// Samples an index proportionally to `weights` (linear scan; fine for the
/// generator's scale).
fn weighted_pick(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Loads the real MovieLens `u.data` file when present, falling back to the
/// generator otherwise. The experiments in `dc-bench` use this so that
/// dropping the genuine data set into `data/u.data` upgrades the
/// reproduction automatically.
pub fn load_or_generate(path: &str, config: &MovieLensConfig) -> DataMatrix {
    match dc_matrix::io::read_triples_file(path) {
        Ok(t) => t.matrix,
        Err(_) => generate(config).matrix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MovieLensConfig {
        MovieLensConfig {
            users: 60,
            movies: 120,
            ratings: 2_000,
            min_ratings_per_user: 10,
            user_groups: 4,
            genres: 6,
            noise_std: 0.3,
            seed: 1,
        }
    }

    #[test]
    fn shape_and_density_match_config() {
        let data = generate(&small());
        assert_eq!(data.matrix.rows(), 60);
        assert_eq!(data.matrix.cols(), 120);
        let n = data.matrix.specified_count();
        assert!(n >= 2_000, "only {n} ratings generated");
        assert!(n < 2_300, "overshoot: {n}");
    }

    #[test]
    fn every_user_meets_the_minimum() {
        let data = generate(&small());
        for u in 0..60 {
            assert!(
                data.matrix.row_specified_count(u) >= 10,
                "user {u} has too few ratings"
            );
        }
    }

    #[test]
    fn ratings_are_integers_one_to_five() {
        let data = generate(&small());
        for (_, _, v) in data.matrix.entries() {
            assert!((1.0..=5.0).contains(&v), "rating {v}");
            assert_eq!(v, v.round(), "rating {v} not integral");
        }
    }

    #[test]
    fn same_group_users_are_coherent_on_a_genre() {
        let mut config = small();
        config.noise_std = 0.0;
        let data = generate(&config);
        // Two users of the same group, one genre with movies both rated:
        // ratings should differ by (approximately) a constant — the user
        // bias difference, rounded.
        let mut found = false;
        'outer: for u1 in 0..60 {
            for u2 in (u1 + 1)..60 {
                if data.user_group[u1] != data.user_group[u2] {
                    continue;
                }
                // Common rated movies of one genre.
                let mut diffs = Vec::new();
                for m in 0..120 {
                    if let (Some(a), Some(b)) = (data.matrix.get(u1, m), data.matrix.get(u2, m)) {
                        diffs.push(a - b);
                    }
                }
                if diffs.len() >= 4 {
                    let spread = diffs.iter().cloned().fold(f64::MIN, f64::max)
                        - diffs.iter().cloned().fold(f64::MAX, f64::min);
                    // Rounding and clamping allow ±1 wiggle.
                    assert!(spread <= 2.0, "same-group users not coherent: {diffs:?}");
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no same-group user pair with common ratings found");
    }

    #[test]
    fn popularity_is_skewed() {
        let data = generate(&small());
        let first_quartile: usize = (0..30).map(|m| data.matrix.col_specified_count(m)).sum();
        let last_quartile: usize = (90..120).map(|m| data.matrix.col_specified_count(m)).sum();
        assert!(
            first_quartile > last_quartile,
            "early (popular) movies should collect more ratings: {first_quartile} vs {last_quartile}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.matrix, b.matrix);
    }

    #[test]
    fn load_or_generate_falls_back() {
        let m = load_or_generate("/nonexistent/u.data", &small());
        assert_eq!(m.rows(), 60);
    }

    #[test]
    fn default_matches_movielens_100k_shape() {
        let c = MovieLensConfig::default();
        assert_eq!(c.users, 943);
        assert_eq!(c.movies, 1682);
        assert_eq!(c.ratings, 100_000);
        assert_eq!(c.min_ratings_per_user, 20);
    }
}
