//! # delta-clusters
//!
//! A full Rust reproduction of *δ-Clusters: Capturing Subspace Correlation
//! in a Large Data Set* (Yang, Wang, Wang & Yu, ICDE 2002) — the δ-cluster
//! model, the FLOC algorithm, the baselines the paper compares against, the
//! synthetic workloads it evaluates on, and the harness that regenerates
//! every table and figure of its evaluation section.
//!
//! This crate is an umbrella facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`matrix`] | `dc-matrix` | data matrices with missing values, bitsets, IO, Pearson R |
//! | [`floc`] | `dc-floc` | the δ-cluster model, residue, and the FLOC algorithm |
//! | [`bicluster`] | `dc-bicluster` | the Cheng & Church baseline (ISMB 2000) |
//! | [`subspace`] | `dc-subspace` | CLIQUE and the §4.4 "alternative algorithm" |
//! | [`baselines`] | `dc-baselines` | PROCLUS, SUBCLU, and every baseline behind one `SubspaceAlgorithm` trait |
//! | [`datagen`] | `dc-datagen` | synthetic workloads: embedded clusters, MovieLens-like, microarray-like |
//! | [`eval`] | `dc-eval` | recall/precision, diameter, matching, reports |
//! | [`serve`] | `dc-serve` | model snapshots (binary + JSON), indexed prediction, concurrent query engine |
//!
//! ## Quickstart
//!
//! ```
//! use delta_clusters::prelude::*;
//!
//! // Figure 1 of the paper: three mutually shifted vectors form a perfect
//! // δ-cluster even though they are far apart in Euclidean space.
//! let m = DataMatrix::builder(3, 5).from_rows(vec![
//!     1.0,   5.0,   23.0,  12.0,  20.0,
//!     11.0,  15.0,  33.0,  22.0,  30.0,
//!     111.0, 115.0, 133.0, 122.0, 130.0,
//! ]);
//! let cluster = DeltaCluster::from_indices(3, 5, 0..3, 0..5);
//! assert!(cluster_residue(&m, &cluster, ResidueMean::Arithmetic) < 1e-9);
//!
//! // FLOC discovers such clusters from data.
//! let config = FlocConfig::builder(1)
//!     .seeding(Seeding::TargetSize { rows: 2, cols: 3 })
//!     .seed(42)
//!     .build();
//! let result = floc(&m, &config).unwrap();
//! assert!(result.avg_residue < 1e-6);
//! ```
//!
//! See `examples/` for runnable scenarios (collaborative filtering, gene
//! expression, constraint handling) and `crates/bench` for the experiment
//! harness.

pub use dc_baselines as baselines;
pub use dc_bicluster as bicluster;
pub use dc_cli as cli;
pub use dc_datagen as datagen;
pub use dc_eval as eval;
pub use dc_floc as floc;
pub use dc_matrix as matrix;
pub use dc_net as net;
pub use dc_obs as obs;
pub use dc_online as online;
pub use dc_router as router;
pub use dc_serve as serve;
pub use dc_subspace as subspace;

pub mod error;

pub use error::{Error, Result};

/// The names most programs need, importable with one `use`.
pub mod prelude {
    pub use crate::error::{Error, Result};
    pub use dc_baselines::{
        FitContext, FitStop, Proclus, ProclusConfig, Subclu, SubcluConfig, SubspaceAlgorithm,
        SubspaceClustering,
    };
    pub use dc_bicluster::{cheng_church, Bicluster, ChengChurchConfig};
    pub use dc_datagen::{EmbedConfig, MicroarrayConfig, MovieLensConfig};
    pub use dc_eval::{diameter, match_clusters, quality};
    #[allow(deprecated)]
    pub use dc_floc::{
        cluster_residue, floc, floc_observed, floc_parallel, floc_resume, floc_resume_with,
        floc_with, Constraint, DeltaCluster, FlocCheckpoint, FlocConfig, FlocResult, InterruptFlag,
        Ordering, Parallelism, ResidueMean, Seeding, StopReason,
    };
    pub use dc_matrix::{
        validate, BackendKind, BitSet, DataMatrix, MatrixBuilder, PagedError, PagedOptions,
        Storage, ValidationReport,
    };
    pub use dc_net::{serve as serve_http, AppState, HttpClient, ServerConfig, ServerHandle};
    pub use dc_obs::{JsonSink, MemorySink, MetricsSink, NullSink, Obs, Sink, TextSink};
    pub use dc_online::{spawn_miner, Miner, MinerConfig, OnlineError, SourceSpec};
    pub use dc_router::{HashRing, Router, RouterConfig};
    pub use dc_serve::{load_checkpoint, save_checkpoint, PredictError, QueryEngine, ServeModel};
    pub use dc_subspace::{alternative, clique, AlternativeConfig, CliqueConfig};
}
