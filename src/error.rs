//! A unified error type for the `delta-clusters` facade.
//!
//! Each workspace crate defines small, domain-specific error enums —
//! mining ([`FlocError`]), resuming ([`ResumeError`]), prediction
//! ([`PredictError`]), file formats ([`ParseError`], [`ArtifactError`]),
//! and so on. Code that composes several layers (load a matrix, mine it,
//! snapshot the model, serve predictions) previously had to map each of
//! them by hand. [`Error`] wraps each of them with `From` impls, so such
//! code can use the [`Result`] alias and `?` throughout:
//!
//! ```no_run
//! use delta_clusters::error::Result;
//! use delta_clusters::prelude::*;
//!
//! fn mine_file(path: &str) -> Result<FlocResult> {
//!     let format = delta_clusters::matrix::io::DenseFormat::default();
//!     let matrix = delta_clusters::matrix::io::read_dense_file(path, &format)?;
//!     let config = FlocConfig::builder(4).build();
//!     Ok(floc(&matrix, &config)?)
//! }
//! ```
//!
//! The variants preserve the source error (via [`std::error::Error::source`])
//! so callers can still match on the underlying domain enum.

use dc_cli::args::ArgError;
use dc_cli::commands::CmdError;
use dc_floc::{AmplificationError, FlocError, PredictError, ResumeError, SeedError};
use dc_matrix::categorical::EncodeError;
use dc_matrix::transform::TransformError;
use dc_matrix::{PagedError, ParseError};
use dc_online::OnlineError;
use dc_serve::{ArtifactError, ModelError};

/// Any error the workspace can produce, by domain.
///
/// | Variant | Source crate | Raised by |
/// |---|---|---|
/// | [`Error::Floc`] | `dc-floc` | [`dc_floc::floc`] and friends |
/// | [`Error::Resume`] | `dc-floc` | checkpoint validation/resume |
/// | [`Error::Seed`] | `dc-floc` | phase-1 seeding |
/// | [`Error::Predict`] | `dc-floc` | missing-value prediction |
/// | [`Error::Amplification`] | `dc-floc` | the §4.4 amplification baseline |
/// | [`Error::Parse`] | `dc-matrix` | delimited/triple matrix parsing |
/// | [`Error::Transform`] | `dc-matrix` | matrix normalisation transforms |
/// | [`Error::Encode`] | `dc-matrix` | categorical encoding |
/// | [`Error::Paged`] | `dc-matrix` | paged storage backend I/O |
/// | [`Error::Artifact`] | `dc-serve` | `.dcm`/`.dck` (de)serialisation |
/// | [`Error::Model`] | `dc-serve` | serve-model construction |
/// | [`Error::Arg`] | `dc-cli` | command-line flag parsing |
/// | [`Error::Cmd`] | `dc-cli` | command dispatch |
/// | [`Error::Online`] | `dc-online` | online mining, checkpointing, promotion |
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Mining failed (seeding, empty matrix, or resume rejection).
    Floc(FlocError),
    /// A checkpoint cannot continue on the given matrix/config.
    Resume(ResumeError),
    /// Phase-1 seed construction failed.
    Seed(SeedError),
    /// A point query could not be answered.
    Predict(PredictError),
    /// The amplification baseline rejected its input.
    Amplification(AmplificationError),
    /// A matrix file failed to parse.
    Parse(ParseError),
    /// A matrix transform was inapplicable.
    Transform(TransformError),
    /// Categorical encoding failed.
    Encode(EncodeError),
    /// The paged storage backend hit an I/O, framing, or validation error.
    Paged(PagedError),
    /// A model/checkpoint artifact was malformed or corrupt.
    Artifact(ArtifactError),
    /// A serve model could not be built.
    Model(ModelError),
    /// A command-line flag was missing or invalid.
    Arg(ArgError),
    /// A CLI command failed.
    Cmd(CmdError),
    /// The online mining tier failed (stream, checkpoint, or promotion).
    Online(OnlineError),
}

/// `Result` with the facade [`Error`] as its default error type.
///
/// The error parameter stays overridable (`Result<T, SomeOtherError>`), so
/// a glob import of this alias does not conflict with code returning
/// domain-specific errors.
pub type Result<T, E = Error> = std::result::Result<T, E>;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Floc(e) => write!(f, "mining failed: {e}"),
            Error::Resume(e) => write!(f, "resume failed: {e}"),
            Error::Seed(e) => write!(f, "seeding failed: {e}"),
            Error::Predict(e) => write!(f, "prediction failed: {e}"),
            Error::Amplification(e) => write!(f, "amplification failed: {e}"),
            Error::Parse(e) => write!(f, "matrix parse failed: {e}"),
            Error::Transform(e) => write!(f, "transform failed: {e}"),
            Error::Encode(e) => write!(f, "encoding failed: {e}"),
            Error::Paged(e) => write!(f, "paged storage failed: {e}"),
            Error::Artifact(e) => write!(f, "artifact error: {e}"),
            Error::Model(e) => write!(f, "model error: {e}"),
            Error::Arg(e) => write!(f, "argument error: {e}"),
            Error::Cmd(e) => write!(f, "command failed: {e}"),
            Error::Online(e) => write!(f, "online mining failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Floc(e) => Some(e),
            Error::Resume(e) => Some(e),
            Error::Seed(e) => Some(e),
            Error::Predict(e) => Some(e),
            Error::Amplification(e) => Some(e),
            Error::Parse(e) => Some(e),
            Error::Transform(e) => Some(e),
            Error::Encode(e) => Some(e),
            Error::Paged(e) => Some(e),
            Error::Artifact(e) => Some(e),
            Error::Model(e) => Some(e),
            Error::Arg(e) => Some(e),
            Error::Cmd(e) => Some(e),
            Error::Online(e) => Some(e),
        }
    }
}

macro_rules! impl_from {
    ($($source:ty => $variant:ident),* $(,)?) => {
        $(impl From<$source> for Error {
            fn from(e: $source) -> Error {
                Error::$variant(e)
            }
        })*
    };
}

impl_from! {
    FlocError => Floc,
    ResumeError => Resume,
    SeedError => Seed,
    PredictError => Predict,
    AmplificationError => Amplification,
    ParseError => Parse,
    TransformError => Transform,
    EncodeError => Encode,
    PagedError => Paged,
    ArtifactError => Artifact,
    ModelError => Model,
    ArgError => Arg,
    CmdError => Cmd,
    OnlineError => Online,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mining() -> Result<()> {
        Err(FlocError::EmptyMatrix)?
    }

    fn predicting() -> Result<f64> {
        Err(PredictError::NotCovered)?
    }

    #[test]
    fn question_mark_converts_domain_errors() {
        assert!(matches!(mining(), Err(Error::Floc(_))));
        assert!(matches!(predicting(), Err(Error::Predict(_))));
    }

    #[test]
    fn every_variant_displays_and_exposes_its_source() {
        use std::error::Error as _;
        let errors: Vec<Error> = vec![
            FlocError::EmptyMatrix.into(),
            ResumeError::BadRngState.into(),
            SeedError::BadProbability("p = 0".into()).into(),
            PredictError::NotCovered.into(),
            AmplificationError::Floc(FlocError::EmptyMatrix).into(),
            ParseError::RaggedRow {
                line: 2,
                expected: 4,
                found: 3,
            }
            .into(),
            TransformError::NonPositiveEntry {
                row: 0,
                col: 0,
                value: -1.0,
            }
            .into(),
            EncodeError::LengthMismatch {
                expected: 2,
                found: 1,
            }
            .into(),
            ArtifactError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            }
            .into(),
            ModelError::LengthMismatch {
                clusters: 1,
                residues: 2,
            }
            .into(),
            ArgError::Missing("k".into()).into(),
            CmdError::Usage("bad".into()).into(),
            OnlineError::Floc(FlocError::EmptyMatrix).into(),
        ];
        assert_eq!(errors.len(), 13, "one facade variant per domain enum");
        for e in &errors {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_some(), "{e} must expose its source");
        }
    }

    #[test]
    fn result_alias_default_parameter_is_overridable() {
        // Compiles: the alias still accepts an explicit error type.
        fn custom() -> Result<(), String> {
            Err("plain".into())
        }
        assert!(custom().is_err());
    }
}
